"""Shared fixtures and scale settings for the benchmark harness.

Every table/figure of the paper has one benchmark module that regenerates it
(see DESIGN.md's per-experiment index).  The suite-wide artefacts share one
campaign, warmed once per session, so the timed portion of each benchmark is
the artefact regeneration itself rather than seven redundant suite
simulations.

Run with::

    pytest benchmarks/ --benchmark-only

Pass ``-s`` to also see the regenerated tables/series printed by each
benchmark (they are the same rows the paper reports; EXPERIMENTS.md records a
reference copy).
"""

from __future__ import annotations

import pytest

from repro.core.registry import PAPER_PREDICTORS
from repro.simulation.campaign import run_campaign

#: Workload scale used by the benchmark harness.  Large enough for every
#: predictor to be deep in steady state, small enough for the whole harness
#: to complete in a couple of minutes of pure-Python simulation.
BENCH_SCALE = 0.5


@pytest.fixture(scope="session")
def bench_campaign():
    """Warm the campaign cache once for all suite-wide benchmarks."""
    return run_campaign(scale=BENCH_SCALE, predictors=PAPER_PREDICTORS)


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark ``func`` with a single timed invocation (macro benchmark)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
