"""Benchmark regenerating Figure 3: overall prediction success per benchmark."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.reporting.experiments import figure3


def test_bench_figure3_overall_accuracy(benchmark, bench_campaign):
    """Figure 3: L, S2, FCM1-3 accuracy for every benchmark.

    The paper's shape must hold: last value < stride < fcm on average, with
    diminishing returns for higher fcm orders.
    """
    artifact = run_once(benchmark, figure3, scale=BENCH_SCALE)
    figure = artifact.data
    means = {name: sum(values) / len(values) for name, values in figure.series.items()}
    assert means["l"] < means["s2"] < means["fcm3"]
    assert means["fcm2"] <= means["fcm3"] + 0.5
    print()
    print(artifact.render())
    print({name: round(value, 1) for name, value in means.items()})
