"""Benchmark regenerating Figure 10: unique-value profiles."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.reporting.experiments import figure10


def test_bench_figure10_value_characteristics(benchmark, bench_campaign):
    """Figure 10: distribution of unique values per static instruction."""
    artifact = run_once(benchmark, figure10, scale=BENCH_SCALE)
    profile = artifact.data["average"]
    assert profile.static_fraction_up_to(64) > 60.0
    assert profile.dynamic_fraction_up_to(4096) > 80.0
    print()
    print(artifact.render())
