"""Benchmark regenerating Figure 9: cumulative FCM-over-stride improvement."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.reporting.experiments import figure9


def test_bench_figure9_cumulative_improvement(benchmark, bench_campaign):
    """Figure 9: a minority of static instructions carries most of the gain."""
    artifact = run_once(benchmark, figure9, scale=BENCH_SCALE)
    curve = artifact.data["All"]
    assert curve.total_improvement > 0
    assert curve.improvement_at(30) > 55.0
    assert curve.improvement_at(100) == 100.0
    print()
    print(artifact.render())
    print(
        "20% of improving static instructions give "
        f"{curve.improvement_at(20):.1f}% of the total improvement"
    )
