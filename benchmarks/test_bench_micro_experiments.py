"""Benchmarks for the paper's micro artefacts: Table 1, Table 3, Figures 1-2.

These exercise the predictors directly on the sequence classes of Section 1.1
and the worked examples of Section 2, with no workload substrate involved.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.reporting.experiments import figure1, figure2, table1, table3
from repro.sequences.generators import SequenceClass


def test_bench_table1_learning_profiles(benchmark):
    """Table 1: LT/LD of last value, two-delta stride and fcm3 per sequence class."""
    artifact = run_once(benchmark, table1, length=256, period=6)
    data = artifact.data
    assert data[SequenceClass.STRIDE]["s2"].learning_degree == 100.0
    assert data[SequenceClass.REPEATED_NON_STRIDE]["fcm3"].learning_degree == 100.0
    print()
    print(artifact.render())


def test_bench_table3_instruction_categories(benchmark):
    """Table 3: the instruction-category definitions."""
    artifact = run_once(benchmark, table3)
    assert "AddSub" in artifact.text
    print()
    print(artifact.render())


def test_bench_figure1_fcm_orders(benchmark):
    """Figure 1: finite context models of orders 0-3 on the worked example."""
    artifact = run_once(benchmark, figure1)
    assert artifact.data[3]["prediction"] == "b"
    print()
    print(artifact.render())


def test_bench_figure2_stride_vs_fcm(benchmark):
    """Figure 2: stride vs order-2 fcm on a repeated stride sequence."""
    artifact = run_once(benchmark, figure2, period=4, repetitions=3)
    assert artifact.data["fcm2"]["profile"].learning_degree == 100.0
    print()
    print(artifact.render())
