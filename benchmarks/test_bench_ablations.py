"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not artefacts of the paper's evaluation, but they quantify the
design alternatives the paper discusses in Section 2: stride update policies,
blending vs a single fixed order, exact vs small saturating counters, and the
hybrid predictor the paper motivates as future work.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.simulation.simulator import simulate_trace
from repro.workloads.suite import get_workload

#: Scale for ablation traces; one benchmark's trace is enough per ablation.
ABLATION_SCALE = 0.3


def _trace(name):
    return get_workload(name).trace(scale=ABLATION_SCALE)


def test_bench_ablation_stride_update_policies(benchmark):
    """Always-update vs counter-hysteresis vs two-delta stride (Section 2.1)."""
    trace = _trace("ijpeg")
    result = run_once(benchmark, simulate_trace, trace, ("s", "stride-counter", "s2"))
    accuracies = {name: result.results[name].accuracy for name in result.predictor_names}
    # The hysteresis variants must not lose to the naive policy, and two-delta
    # is the best (or tied best) of the three on stride-heavy code.
    assert accuracies["s2"] >= accuracies["s"] - 1.0
    print()
    print({name: round(value, 1) for name, value in accuracies.items()})


def test_bench_ablation_blending_vs_single_order(benchmark):
    """Blended orders 0..3 with lazy exclusion vs a single order-3 fcm."""
    trace = _trace("perl")
    result = run_once(benchmark, simulate_trace, trace, ("fcm3", "fcm3-single", "fcm3-full"))
    blended = result.results["fcm3"].accuracy
    single = result.results["fcm3-single"].accuracy
    full = result.results["fcm3-full"].accuracy
    # Blending recovers the predictions a fixed order-3 context misses while
    # its table warms up, so it must not be worse.
    assert blended >= single - 1.0
    print()
    print({"blended": round(blended, 1), "single": round(single, 1), "full-update": round(full, 1)})


def test_bench_ablation_exact_vs_small_counters(benchmark):
    """Exact counts (the paper's configuration) vs halve-on-saturation counters."""
    trace = _trace("m88ksim")
    result = run_once(benchmark, simulate_trace, trace, ("fcm3", "fcm3-small"))
    exact = result.results["fcm3"].accuracy
    small = result.results["fcm3-small"].accuracy
    # Small counters weight recent history; on a steady workload the two are
    # close, and neither collapses.
    assert abs(exact - small) < 15.0
    print()
    print({"exact": round(exact, 1), "small-counters": round(small, 1)})


def test_bench_hybrid_vs_components(benchmark):
    """The Section 4.2 hybrid: stride + fcm with a PC chooser vs its parts."""
    trace = _trace("gcc")
    result = run_once(
        benchmark, simulate_trace, trace, ("s2", "fcm3", "hybrid-s2-fcm3", "hybrid-oracle")
    )
    stride = result.results["s2"].accuracy
    fcm = result.results["fcm3"].accuracy
    hybrid = result.results["hybrid-s2-fcm3"].accuracy
    oracle = result.results["hybrid-oracle"].accuracy
    # The realistic hybrid must land at least near the better component, and
    # the oracle bounds everything from above.
    assert hybrid >= min(stride, fcm) - 1.0
    assert oracle >= max(stride, fcm, hybrid) - 1e-9
    print()
    print(
        {
            "s2": round(stride, 1),
            "fcm3": round(fcm, 1),
            "hybrid": round(hybrid, 1),
            "oracle": round(oracle, 1),
        }
    )
