"""Benchmark regenerating Figure 8: contribution of the different predictors."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.reporting.experiments import figure8


def test_bench_figure8_predicted_set_correlation(benchmark, bench_campaign):
    """Figure 8: correctness subsets (np, l, s, ls, f, lf, sf, lsf)."""
    artifact = run_once(benchmark, figure8, scale=BENCH_SCALE)
    breakdown = artifact.data["average"]
    assert abs(sum(breakdown.overall.values()) - 100.0) < 1e-6
    # Shape of the paper's summary: a large all-three slice, a significant
    # fcm-only slice, and a negligible last-value-only slice.
    assert breakdown.fraction_all_three() > 10.0
    assert breakdown.fraction_only_fcm() > 5.0
    assert breakdown.overall["l"] < 5.0
    print()
    print(artifact.render())
