"""Benchmark regenerating Figures 4-7: per-category prediction success."""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.reporting.experiments import figure4_7


def test_bench_figures4_to_7_per_category_accuracy(benchmark, bench_campaign):
    """Figures 4-7: accuracy for AddSub, Loads, Logic and Shift instructions."""
    artifact = run_once(benchmark, figure4_7, scale=BENCH_SCALE)
    figures = artifact.data
    assert set(figures) == {"figure4", "figure5", "figure6", "figure7"}
    # AddSub (Figure 4) is easier for the stride predictor than Shift (Figure 7).
    addsub_s2 = sum(figures["figure4"].series["s2"]) / len(figures["figure4"].x_values)
    shift_s2 = sum(figures["figure7"].series["s2"]) / len(figures["figure7"].x_values)
    assert addsub_s2 > shift_s2
    print()
    print(artifact.render())
