#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against a committed baseline.

CI runs the benchmark harness with ``--benchmark-json`` and feeds the
result here together with ``benchmarks/BENCH_baseline.json``.  A benchmark
*regresses* when its mean time exceeds ``threshold`` times the baseline
mean; any regression fails the job (exit 1).  Benchmarks present in only
one of the two files are reported but never fail the run, so adding or
retiring benchmarks does not require touching the baseline in the same
commit — refresh it with::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only \
        --benchmark-json=benchmarks/BENCH_baseline.json

The default threshold is deliberately loose (2x) because the baseline and
the CI run execute on different machine generations; the gate exists to
catch algorithmic regressions (an accidentally quadratic loop, a cache
layer silently bypassed), not single-digit-percent noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(path: Path) -> dict[str, float]:
    """Map ``fullname`` -> mean seconds for every benchmark in the file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return {
        bench["fullname"]: bench["stats"]["mean"] for bench in data.get("benchmarks", [])
    }


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    threshold: float,
    min_seconds: float,
) -> list[str]:
    """Return a report line per benchmark; regressions are marked FAIL.

    Benchmarks whose current mean is below ``min_seconds`` never fail: at
    sub-millisecond scales the ratio measures scheduler noise, not code.
    A fast benchmark that blows up past the floor is still caught, because
    the ratio is computed against its (tiny) baseline.
    """
    lines = []
    for name in sorted(current):
        mean = current[name]
        base = baseline.get(name)
        if base is None:
            lines.append(f"NEW   {name}: {mean:.4f}s (no baseline)")
        elif base <= 0.0:
            lines.append(f"SKIP  {name}: baseline mean is {base}")
        elif mean < min_seconds:
            lines.append(
                f"ok    {name}: {mean:.4f}s (below {min_seconds:.3f}s noise floor)"
            )
        else:
            ratio = mean / base
            status = "FAIL" if ratio > threshold else "ok"
            lines.append(
                f"{status:<5} {name}: {mean:.4f}s vs baseline {base:.4f}s "
                f"({ratio:.2f}x, limit {threshold:.2f}x)"
            )
    for name in sorted(set(baseline) - set(current)):
        lines.append(f"GONE  {name}: in baseline but not in this run")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="pytest-benchmark JSON of this run")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when mean exceeds this multiple of the baseline (default 2.0)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.005,
        help="never fail benchmarks whose current mean is below this (default 5ms)",
    )
    args = parser.parse_args(argv)

    current = load_means(args.current)
    baseline = load_means(args.baseline)
    if not current:
        print(f"no benchmarks found in {args.current}", file=sys.stderr)
        return 2

    lines = compare(current, baseline, args.threshold, args.min_seconds)
    print("\n".join(lines))
    failures = [line for line in lines if line.startswith("FAIL")]
    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed more than "
            f"{args.threshold:.2f}x vs {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print(f"\nno regressions beyond {args.threshold:.2f}x ({len(current)} benchmarks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
