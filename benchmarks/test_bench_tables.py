"""Benchmarks regenerating the paper's benchmark-characterisation tables.

Covers Table 2 (benchmark characteristics), Table 4 (static counts per
category) and Table 5 (dynamic percentages per category).
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.reporting.experiments import table2, table4, table5
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_table2_benchmark_characteristics(benchmark, bench_campaign):
    """Table 2: dynamic instruction counts and predicted fractions."""
    artifact = run_once(benchmark, table2, scale=BENCH_SCALE)
    for row in artifact.data.values():
        assert 0.5 <= row["fraction_predicted"] <= 0.95
    print()
    print(artifact.render())


def test_bench_table4_static_counts(benchmark, bench_campaign):
    """Table 4: static count of predicted instructions per category."""
    artifact = run_once(benchmark, table4, scale=BENCH_SCALE)
    for benchmark_name in BENCHMARK_ORDER:
        assert artifact.data["AddSub"][benchmark_name] > 0
    print()
    print(artifact.render())


def test_bench_table5_dynamic_percentages(benchmark, bench_campaign):
    """Table 5: dynamic share of predicted instructions per category."""
    artifact = run_once(benchmark, table5, scale=BENCH_SCALE)
    for benchmark_name in BENCHMARK_ORDER:
        total = sum(artifact.data[c][benchmark_name] for c in artifact.data)
        assert abs(total - 100.0) < 1.0
    print()
    print(artifact.render())
