"""Benchmarks for the Section 4.4 sensitivity studies.

Covers Table 6 (gcc vs input files), Table 7 (gcc vs flags) and Figure 11
(gcc vs fcm order).  These re-simulate gcc for each setting, so they are the
most expensive artefacts after the suite campaign; a reduced scale keeps them
to a few seconds each.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.reporting.experiments import figure11, table6, table7

#: gcc-only sweeps are re-simulated per setting; a smaller scale than the
#: campaign keeps the total harness time reasonable.
SENSITIVITY_SCALE = 0.3


def test_bench_table6_input_sensitivity(benchmark):
    """Table 6: gcc accuracy is insensitive to the input file."""
    artifact = run_once(benchmark, table6, scale=SENSITIVITY_SCALE)
    accuracies = [point.accuracy for point in artifact.data]
    assert max(accuracies) - min(accuracies) < 20.0
    print()
    print(artifact.render())


def test_bench_table7_flag_sensitivity(benchmark):
    """Table 7: gcc accuracy is insensitive to the compilation flags."""
    artifact = run_once(benchmark, table7, scale=SENSITIVITY_SCALE)
    accuracies = [point.accuracy for point in artifact.data]
    assert max(accuracies) - min(accuracies) < 20.0
    print()
    print(artifact.render())


def test_bench_figure11_order_sensitivity(benchmark):
    """Figure 11: accuracy improves with order, with diminishing returns."""
    artifact = run_once(benchmark, figure11, scale=SENSITIVITY_SCALE, max_order=8)
    accuracies = artifact.data
    assert accuracies[8] >= accuracies[1]
    early_gain = accuracies[3] - accuracies[1]
    late_gain = accuracies[8] - accuracies[6]
    assert late_gain <= early_gain + 2.0
    print()
    print(artifact.render())
