"""Benchmarks for the Section 4.4 sensitivity studies.

Covers Table 6 (gcc vs input files), Table 7 (gcc vs flags) and Figure 11
(gcc vs fcm order).  Since the sweep refactor these execute through the
engine's parameter-sweep layer; the cold benches time real trace+simulate
work at a reduced scale, and the warm bench times a fully cache-hit sweep
(which must perform zero simulations).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.engine import ExecutionEngine
from repro.engine.sweeps import SweepSpec
from repro.reporting.experiments import figure11, table6, table7

#: gcc-only sweeps are re-simulated per setting; a smaller scale than the
#: campaign keeps the total harness time reasonable.
SENSITIVITY_SCALE = 0.3


def test_bench_table6_input_sensitivity(benchmark):
    """Table 6: gcc accuracy is insensitive to the input file."""
    artifact = run_once(benchmark, table6, scale=SENSITIVITY_SCALE)
    accuracies = [point.accuracy for point in artifact.data]
    assert max(accuracies) - min(accuracies) < 20.0
    print()
    print(artifact.render())


def test_bench_table7_flag_sensitivity(benchmark):
    """Table 7: gcc accuracy is insensitive to the compilation flags."""
    artifact = run_once(benchmark, table7, scale=SENSITIVITY_SCALE)
    accuracies = [point.accuracy for point in artifact.data]
    assert max(accuracies) - min(accuracies) < 20.0
    print()
    print(artifact.render())


def test_bench_sweep_warm_cache(benchmark, tmp_path):
    """A fully warm input-axis sweep costs no trace/simulate computation."""
    spec = SweepSpec.input_study(scale=SENSITIVITY_SCALE)
    cache_dir = tmp_path / "cache"
    ExecutionEngine(jobs=1, cache_dir=cache_dir).run_sweep(spec)

    def warm_sweep():
        engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        return engine.run_sweep(spec)

    result = run_once(benchmark, warm_sweep)
    assert result.stats.simulations_computed == 0
    assert result.stats.traces_computed == 0


def test_bench_figure11_order_sensitivity(benchmark):
    """Figure 11: accuracy improves with order, with diminishing returns."""
    artifact = run_once(benchmark, figure11, scale=SENSITIVITY_SCALE, max_order=8)
    accuracies = artifact.data
    assert accuracies[8] >= accuracies[1]
    early_gain = accuracies[3] - accuracies[1]
    late_gain = accuracies[8] - accuracies[6]
    assert late_gain <= early_gain + 2.0
    print()
    print(artifact.render())
