"""Micro-benchmarks of raw predictor throughput.

Not a paper artefact, but useful engineering data: how many predictions per
second each predictor model sustains on this substrate, which bounds how long
the paper-scale experiments would take.
"""

from __future__ import annotations

import pytest

from repro.core.registry import create_predictor
from repro.trace.synthetic import trace_from_streams
from repro.sequences.generators import (
    non_stride_sequence,
    repeated_non_stride_sequence,
    repeated_stride_sequence,
    stride_sequence,
)


def _mixed_trace(length_per_pc: int = 400):
    return trace_from_streams(
        {
            0: [7] * length_per_pc,
            8: stride_sequence(length_per_pc, start=100, stride=8),
            16: repeated_stride_sequence(length_per_pc, period=6),
            24: repeated_non_stride_sequence(length_per_pc, period=5, seed=3),
            32: non_stride_sequence(length_per_pc, seed=9),
        }
    )


@pytest.mark.parametrize("predictor_name", ["l", "s2", "fcm1", "fcm3", "hybrid-s2-fcm3"])
def test_bench_predictor_observe_throughput(benchmark, predictor_name):
    """Observe-loop throughput (predict + score + update) per predictor."""
    trace = _mixed_trace()
    records = [(record.pc, record.value, record.category) for record in trace]

    def run():
        predictor = create_predictor(predictor_name)
        correct = 0
        for pc, value, category in records:
            correct += predictor.observe(pc, value, category)
        return correct

    correct = benchmark(run)
    assert 0 <= correct <= len(records)


def test_bench_trace_collection_compress(benchmark):
    """End-to-end workload interpretation and trace collection speed."""
    from repro.workloads.suite import get_workload

    workload = get_workload("compress")
    trace = benchmark.pedantic(
        lambda: workload.trace(scale=0.3), rounds=1, iterations=1
    )
    assert len(trace) > 1000
