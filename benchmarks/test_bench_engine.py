"""Benchmarks for the campaign execution engine.

Times the quick-scale suite campaign along the engine's two axes —
serial vs. worker-pool execution, and cold vs. warm persistent cache —
emitting comparable wall-time numbers for the perf trajectory.  On a
single-core runner the parallel number mostly measures pool overhead;
the interesting deltas there are cold vs. warm cache (the warm run
performs zero trace/simulate work).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.registry import PAPER_PREDICTORS
from repro.engine import ExecutionEngine
from repro.simulation.campaign import QUICK_SCALE
from repro.workloads.suite import BENCHMARK_ORDER

SCALE = QUICK_SCALE


def _run_engine(jobs: int, cache_dir=None, use_cache: bool = True):
    engine = ExecutionEngine(jobs=jobs, cache_dir=cache_dir, use_cache=use_cache)
    result = engine.run(scale=SCALE, predictors=PAPER_PREDICTORS, benchmarks=BENCHMARK_ORDER)
    return engine, result


def _report(engine) -> None:
    stats = engine.stats
    print()
    print(
        f"jobs={engine.jobs} traces {stats.traces_computed}c/{stats.traces_cached}h "
        f"simulations {stats.simulations_computed}c/{stats.simulations_cached}h "
        f"{stats.total_seconds:.2f}s"
    )


def test_bench_engine_serial_cold(benchmark):
    """Baseline: the full quick-scale campaign, in-process, no cache."""
    engine, result = run_once(benchmark, _run_engine, jobs=1)
    assert engine.stats.simulations_computed == len(BENCHMARK_ORDER) * len(PAPER_PREDICTORS)
    assert set(result.simulations) == set(BENCHMARK_ORDER)
    _report(engine)


def test_bench_engine_parallel_cold(benchmark):
    """The same campaign scattered over a two-worker pool."""
    engine, result = run_once(benchmark, _run_engine, jobs=2)
    assert engine.stats.simulations_computed == len(BENCHMARK_ORDER) * len(PAPER_PREDICTORS)
    assert set(result.simulations) == set(BENCHMARK_ORDER)
    _report(engine)


def test_bench_engine_cold_cache(benchmark, tmp_path):
    """Cold run that also populates a persistent cache (write overhead)."""
    engine, result = run_once(benchmark, _run_engine, jobs=1, cache_dir=tmp_path / "cache")
    assert engine.stats.simulations_computed == len(BENCHMARK_ORDER) * len(PAPER_PREDICTORS)
    _report(engine)


def test_bench_engine_warm_cache(benchmark, tmp_path):
    """Warm rerun against a populated cache: zero simulations performed."""
    cache_dir = tmp_path / "cache"
    _run_engine(jobs=1, cache_dir=cache_dir)  # populate (untimed)
    engine, result = run_once(benchmark, _run_engine, jobs=1, cache_dir=cache_dir)
    assert engine.stats.simulations_computed == 0
    assert engine.stats.traces_computed == 0
    assert set(result.simulations) == set(BENCHMARK_ORDER)
    _report(engine)
