"""Benchmarks for the campaign execution engine.

Times the quick-scale suite campaign along the engine's three axes —
serial vs. worker-pool execution, cold vs. warm persistent cache, and
text vs. binary cache format — emitting comparable wall-time and
cache-size numbers for the perf trajectory.  On a single-core runner the
parallel number mostly measures pool overhead; the interesting deltas
there are cold vs. warm cache (the warm run performs zero trace/simulate
work) and text vs. binary warm reruns (same work: zero — the difference
is pure parse/decode time and on-disk footprint).
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import run_once
from repro.core.registry import PAPER_PREDICTORS
from repro.engine import ExecutionEngine
from repro.simulation.campaign import QUICK_SCALE
from repro.workloads.suite import BENCHMARK_ORDER

SCALE = QUICK_SCALE

#: The process-based backends only say something interesting with real
#: parallel hardware; on a single-core runner they mostly measure pool
#: startup overhead, so those axis points are skipped rather than graphed.
_MULTICORE = (os.cpu_count() or 1) >= 2


def _run_engine(
    jobs: int,
    cache_dir=None,
    use_cache: bool = True,
    cache_format: str = "binary",
    backend=None,
):
    engine = ExecutionEngine(
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        cache_format=cache_format,
        backend=backend,
    )
    result = engine.run(scale=SCALE, predictors=PAPER_PREDICTORS, benchmarks=BENCHMARK_ORDER)
    return engine, result


def _report(engine) -> None:
    stats = engine.stats
    print()
    print(
        f"jobs={engine.jobs} traces {stats.traces_computed}c/{stats.traces_cached}h "
        f"simulations {stats.simulations_computed}c/{stats.simulations_cached}h "
        f"{stats.total_seconds:.2f}s"
    )


def test_bench_engine_serial_cold(benchmark):
    """Baseline: the full quick-scale campaign, in-process, no cache."""
    engine, result = run_once(benchmark, _run_engine, jobs=1)
    assert engine.stats.simulations_computed == len(BENCHMARK_ORDER) * len(PAPER_PREDICTORS)
    assert set(result.simulations) == set(BENCHMARK_ORDER)
    _report(engine)


def test_bench_engine_parallel_cold(benchmark):
    """The same campaign scattered over a two-worker pool."""
    engine, result = run_once(benchmark, _run_engine, jobs=2)
    assert engine.stats.simulations_computed == len(BENCHMARK_ORDER) * len(PAPER_PREDICTORS)
    assert set(result.simulations) == set(BENCHMARK_ORDER)
    _report(engine)


def test_bench_engine_cold_cache(benchmark, tmp_path):
    """Cold run that also populates a persistent cache (write overhead)."""
    engine, result = run_once(benchmark, _run_engine, jobs=1, cache_dir=tmp_path / "cache")
    assert engine.stats.simulations_computed == len(BENCHMARK_ORDER) * len(PAPER_PREDICTORS)
    _report(engine)


def test_bench_engine_warm_cache(benchmark, tmp_path):
    """Warm rerun against a populated cache: zero simulations performed."""
    cache_dir = tmp_path / "cache"
    _run_engine(jobs=1, cache_dir=cache_dir)  # populate (untimed)
    engine, result = run_once(benchmark, _run_engine, jobs=1, cache_dir=cache_dir)
    assert engine.stats.simulations_computed == 0
    assert engine.stats.traces_computed == 0
    assert set(result.simulations) == set(BENCHMARK_ORDER)
    _report(engine)


@pytest.mark.parametrize("backend_name", ["serial", "pool", "persistent"])
def test_bench_engine_warm_cache_backend_axis(benchmark, tmp_path, backend_name):
    """Warm rerun per executor backend: zero compute, pure probe + dispatch cost.

    Every point performs identical (zero) trace/simulate work, so the
    deltas isolate each backend's fixed overheads — cache probing is
    common, worker startup is what differs.  The process-based points are
    skipped on single-core runners, where they would mostly measure pool
    startup rather than anything a scheduling decision could act on.
    """
    if backend_name != "serial" and not _MULTICORE:
        pytest.skip("multi-process backend timings are meaningless on one core")
    cache_dir = tmp_path / "cache"
    _run_engine(jobs=1, cache_dir=cache_dir)  # populate (untimed)
    engine, result = run_once(
        benchmark, _run_engine, jobs=2, cache_dir=cache_dir, backend=backend_name
    )
    assert engine.stats.tasks_computed == 0
    assert set(result.simulations) == set(BENCHMARK_ORDER)
    _report(engine)


# --------------------------------------------------------------------------- #
# Executor backends: per-dispatch pool vs. persistent warm workers
# --------------------------------------------------------------------------- #
_BACKEND_BENCHMARKS = ("compress", "m88ksim")
_BACKEND_PREDICTORS = ("l", "s2")


def _run_twice(backend_name: str):
    """Two back-to-back cacheless campaigns on one backend instance.

    The second run is where the backends differ: the pool pays worker
    startup (fork + import) again per dispatch, the persistent backend
    reuses its warm workers.
    """
    from repro.engine.backends import resolve_backend

    with resolve_backend(backend_name, jobs=2) as shared:
        for _ in range(2):
            engine = ExecutionEngine(jobs=2, backend=shared)
            engine.run(
                scale=SCALE,
                predictors=_BACKEND_PREDICTORS,
                benchmarks=_BACKEND_BENCHMARKS,
            )
    return engine


def test_bench_engine_pool_backend_reruns(benchmark):
    """Reference: repeated campaigns on the per-dispatch pool backend."""
    engine = run_once(benchmark, _run_twice, "pool")
    assert engine.stats.simulations_computed == len(_BACKEND_BENCHMARKS) * len(
        _BACKEND_PREDICTORS
    )
    _report(engine)


def test_bench_engine_persistent_backend_reruns(benchmark):
    """Same work on warm persistent workers (startup amortised once)."""
    engine = run_once(benchmark, _run_twice, "persistent")
    assert engine.stats.simulations_computed == len(_BACKEND_BENCHMARKS) * len(
        _BACKEND_PREDICTORS
    )
    _report(engine)


# --------------------------------------------------------------------------- #
# Intra-trace sharding: one benchmark's trace split into windows vs. whole
# --------------------------------------------------------------------------- #
_SHARD_BENCHMARK = ("compress",)


def _run_single_benchmark(jobs: int, backend=None, shard_window=None, kernel=None):
    engine = ExecutionEngine(
        jobs=jobs, use_cache=False, backend=backend, shard_window=shard_window,
        kernel=kernel,
    )
    result = engine.run(
        scale=SCALE, predictors=PAPER_PREDICTORS, benchmarks=_SHARD_BENCHMARK
    )
    return engine, result


def test_bench_engine_single_benchmark_unsharded(benchmark):
    """Reference: one benchmark's cold campaign as whole-trace units.

    A single benchmark is the case parallel backends cannot help on their
    own: there are only ``len(PAPER_PREDICTORS)`` simulate units and the
    wall time is bounded by one whole-trace simulation.  Paired with the
    sharded point below, so gated the same way.
    """
    if not _MULTICORE:
        pytest.skip("the sharded/unsharded pair needs real parallel hardware")
    engine, result = run_once(benchmark, _run_single_benchmark, jobs=1)
    assert engine.stats.simulations_computed == len(PAPER_PREDICTORS)
    assert engine.stats.windows_computed == 0
    assert set(result.simulations) == set(_SHARD_BENCHMARK)
    _report(engine)


def test_bench_engine_single_benchmark_sharded(benchmark):
    """The same campaign with ``shard_window="auto"`` over a worker pool.

    Auto planning splits the one trace into about one window per pool
    slot; update-only replay hands predictor state across the boundaries.
    The ratio against the unsharded point is the intra-trace speedup on a
    single benchmark — about 2x on two real cores, minus replay and
    stitch overhead.
    """
    if not _MULTICORE:
        pytest.skip("the sharded/unsharded pair needs real parallel hardware")
    jobs = min(4, os.cpu_count() or 1)
    engine, result = run_once(
        benchmark,
        _run_single_benchmark,
        jobs=jobs,
        backend="pool",
        shard_window="auto",
    )
    assert engine.stats.simulations_computed == len(PAPER_PREDICTORS)
    assert engine.stats.windows_computed > 0
    assert set(result.simulations) == set(_SHARD_BENCHMARK)
    _report(engine)


def test_bench_engine_single_benchmark_sharded_vector(benchmark):
    """Sharded campaign with the vector kernel inside each window task.

    Window tasks restore the handed-off predictor snapshot and run the
    vector plan over their slice, so the intra-trace parallel speedup and
    the per-window kernel speedup multiply.  Paired with the scalar
    sharded point above.
    """
    if not _MULTICORE:
        pytest.skip("the sharded/unsharded pair needs real parallel hardware")
    pytest.importorskip("numpy")
    jobs = min(4, os.cpu_count() or 1)
    engine, result = run_once(
        benchmark,
        _run_single_benchmark,
        jobs=jobs,
        backend="pool",
        shard_window="auto",
        kernel="vector",
    )
    assert engine.stats.simulations_computed == len(PAPER_PREDICTORS)
    assert engine.stats.windows_computed > 0
    assert set(result.simulations) == set(_SHARD_BENCHMARK)
    _report(engine)


# --------------------------------------------------------------------------- #
# Simulation kernels: scalar reference loop vs. columnar vector kernel
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def wire_blobs(bench_campaign):
    """Each suite trace as compressed v3 wire bytes (built once, untimed)."""
    from repro.trace.io import dumps_trace_binary

    return {
        name: dumps_trace_binary(trace, compress=True)
        for name, trace in bench_campaign.traces.items()
    }


def _cold_simulate(blobs: dict, kernel: str) -> int:
    """The simulate phase's cold path from wire bytes, on one kernel.

    Mirrors what a pool worker does per benchmark: decode the v3 bytes
    (into records on the scalar path, straight into numpy columns on the
    vector path — no ``TraceRecord`` objects), then compute one shard per
    paper predictor.
    """
    from repro.simulation.simulator import SIMULATION_COUNTER, simulate_shard
    from repro.simulation.vectorized import simulate_shard_vector
    from repro.trace.io import decode_trace_columns, loads_trace_binary

    SIMULATION_COUNTER.reset()
    for blob in blobs.values():
        if kernel == "vector":
            columns = decode_trace_columns(blob)
            for name in PAPER_PREDICTORS:
                assert simulate_shard_vector(columns, name) is not None
        else:
            trace = loads_trace_binary(blob)
            for name in PAPER_PREDICTORS:
                simulate_shard(trace, name, kernel="scalar")
    return SIMULATION_COUNTER.count


@pytest.mark.parametrize("kernel", ["scalar", "vector"])
def test_bench_engine_cold_simulate_kernel_axis(benchmark, wire_blobs, kernel):
    """Scalar-vs-vector cold simulate pair (same work, different kernel).

    Both points decode every suite trace from wire bytes and compute all
    (trace, predictor) shards; the ratio between them is the vector
    kernel's cold-simulate speedup, recorded in the benchmark JSON.
    """
    if kernel == "vector":
        pytest.importorskip("numpy")
    computed = run_once(benchmark, _cold_simulate, wire_blobs, kernel)
    assert computed == len(wire_blobs) * len(PAPER_PREDICTORS)


def _cold_simulate_names(blobs: dict, names: tuple, kernel: str) -> int:
    """Cold simulate of specific configurations over every suite trace."""
    from repro.simulation.simulator import SIMULATION_COUNTER, simulate_shard
    from repro.simulation.vectorized import simulate_shard_vector
    from repro.trace.io import decode_trace_columns, loads_trace_binary

    SIMULATION_COUNTER.reset()
    for blob in blobs.values():
        if kernel == "vector":
            columns = decode_trace_columns(blob)
            for name in names:
                assert simulate_shard_vector(columns, name) is not None
        else:
            trace = loads_trace_binary(blob)
            for name in names:
                simulate_shard(trace, name, kernel="scalar")
    return SIMULATION_COUNTER.count


#: Configurations the vector kernel could not run before the counter and
#: hybrid plans landed — each pair's scalar/vector ratio is their speedup.
_COUNTER_CONFIGS = ("lv-counter", "lv-consecutive", "stride-counter")
_HYBRID_CONFIGS = ("hybrid-s2-fcm3", "hybrid-type-s2-fcm3", "hybrid-oracle")


@pytest.mark.parametrize("kernel", ["scalar", "vector"])
def test_bench_engine_cold_simulate_counter_configs(benchmark, wire_blobs, kernel):
    """Saturating-counter/hysteresis configs per kernel (lockstep scans)."""
    if kernel == "vector":
        pytest.importorskip("numpy")
    computed = run_once(benchmark, _cold_simulate_names, wire_blobs, _COUNTER_CONFIGS, kernel)
    assert computed == len(wire_blobs) * len(_COUNTER_CONFIGS)


@pytest.mark.parametrize("kernel", ["scalar", "vector"])
def test_bench_engine_cold_simulate_hybrid_configs(benchmark, wire_blobs, kernel):
    """Hybrid (two-level selector) configs per kernel (composed plans)."""
    if kernel == "vector":
        pytest.importorskip("numpy")
    computed = run_once(benchmark, _cold_simulate_names, wire_blobs, _HYBRID_CONFIGS, kernel)
    assert computed == len(wire_blobs) * len(_HYBRID_CONFIGS)


# --------------------------------------------------------------------------- #
# Text vs. binary cache format
# --------------------------------------------------------------------------- #
def _report_cache_size(engine, label: str) -> None:
    stats = engine.cache.stats()
    per_kind = ", ".join(
        f"{kind}: {kind_stats.bytes}B/{kind_stats.entries}" for kind, kind_stats in sorted(stats.kinds.items())
    )
    print(f"{label} cache: {stats.bytes} bytes over {stats.entries} entries ({per_kind})")


def test_bench_engine_cold_cache_text(benchmark, tmp_path):
    """Cold run writing v1 plain-JSON cache entries (text trace payloads)."""
    engine, _ = run_once(
        benchmark, _run_engine, jobs=1, cache_dir=tmp_path / "cache", cache_format="text"
    )
    print()
    _report_cache_size(engine, "text")
    _report(engine)


def test_bench_engine_cold_cache_binary(benchmark, tmp_path):
    """Cold run writing compressed binary (.rvpc) cache entries."""
    engine, _ = run_once(
        benchmark, _run_engine, jobs=1, cache_dir=tmp_path / "cache", cache_format="binary"
    )
    print()
    _report_cache_size(engine, "binary")
    _report(engine)


def test_bench_engine_warm_cache_text(benchmark, tmp_path):
    """Warm rerun from a text cache: measures JSON + text-trace parse time."""
    cache_dir = tmp_path / "cache"
    _run_engine(jobs=1, cache_dir=cache_dir, cache_format="text")  # populate (untimed)
    engine, _ = run_once(benchmark, _run_engine, jobs=1, cache_dir=cache_dir, cache_format="text")
    assert engine.stats.tasks_computed == 0
    print()
    _report_cache_size(engine, "text")
    _report(engine)


def test_bench_engine_warm_cache_binary(benchmark, tmp_path):
    """Warm rerun from a binary cache: measures envelope + v3 decode time.

    Compare against ``test_bench_engine_warm_cache_text`` — both perform
    zero trace/simulate work, so the wall-time delta is exactly the
    codec difference the binary format exists to win.
    """
    cache_dir = tmp_path / "cache"
    text_engine, _ = _run_engine(jobs=1, cache_dir=tmp_path / "text", cache_format="text")
    _run_engine(jobs=1, cache_dir=cache_dir, cache_format="binary")  # populate (untimed)
    engine, _ = run_once(
        benchmark, _run_engine, jobs=1, cache_dir=cache_dir, cache_format="binary"
    )
    assert engine.stats.tasks_computed == 0
    binary_bytes = engine.cache.stats().bytes
    text_bytes = text_engine.cache.stats().bytes
    assert binary_bytes < text_bytes
    print()
    _report_cache_size(engine, "binary")
    print(f"binary/text size ratio: {binary_bytes / text_bytes:.3f}")
    _report(engine)
