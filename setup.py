"""Setuptools shim.

The environment this repository targets has no network access and no
``wheel`` package, so PEP 660 editable wheels cannot be built.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
