"""Every example under ``examples/`` runs from a fresh clone.

Each example is executed as a subprocess with no ``PYTHONPATH`` and a
working directory *outside* the repository, which is exactly the situation
of someone who just cloned the repo and ran ``python examples/foo.py`` —
the examples' own ``sys.path`` bootstrap must make the import work.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

#: Per-example extra arguments keeping the fresh-clone run fast.
EXAMPLE_ARGS: dict[str, list[str]] = {
    "reproduce_paper.py": ["--only", "table1", "figure1"],
}


def _fresh_clone_env() -> dict[str, str]:
    env = dict(os.environ)
    env.pop("PYTHONPATH", None)
    return env


def test_every_example_is_covered():
    """A new example must be added to the parametrization below."""
    assert sorted(path.name for path in EXAMPLES_DIR.glob("*.py")) == sorted(ALL_EXAMPLES)


ALL_EXAMPLES = [
    "quickstart.py",
    "custom_workload.py",
    "cache_management.py",
    "hybrid_predictor_design.py",
    "reproduce_paper.py",
]


@pytest.mark.slow
@pytest.mark.parametrize("example", ALL_EXAMPLES)
def test_example_runs_from_fresh_clone(example, tmp_path):
    args = EXAMPLE_ARGS.get(example, [])
    if example == "reproduce_paper.py":
        args = args + ["--out", str(tmp_path / "results")]
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example), *args],
        cwd=tmp_path,
        env=_fresh_clone_env(),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{example} failed from a fresh-clone environment\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{example} printed nothing"
