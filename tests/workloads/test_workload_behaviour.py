"""Behavioural tests for each synthetic SPEC95int workload.

These check the properties the experiments rely on: every workload halts,
produces a healthy fraction of predicted instructions, covers the main
instruction categories, is deterministic, and scales its dynamic instruction
count with the scale parameter.
"""

from __future__ import annotations

import pytest

from repro.isa.opcodes import Category
from repro.workloads.suite import BENCHMARK_ORDER, get_workload

#: Small scale used throughout: enough dynamic instructions to be meaningful,
#: small enough to keep the test suite fast.
SCALE = 0.05


@pytest.fixture(scope="module")
def workload_runs():
    return {name: get_workload(name).run(scale=SCALE) for name in BENCHMARK_ORDER}


class TestUniversalProperties:
    def test_every_workload_halts(self, workload_runs):
        for name, run in workload_runs.items():
            assert run.execution.halted, f"{name} did not halt"

    def test_fraction_predicted_in_paper_range(self, workload_runs):
        # The paper reports 62%-84% of dynamic instructions being predicted;
        # the synthetic suite stays in a generous envelope around that.
        for name, run in workload_runs.items():
            fraction = run.trace.statistics().fraction_predicted
            assert 0.5 <= fraction <= 0.95, f"{name}: fraction predicted {fraction:.2f}"

    def test_addsub_is_the_largest_single_category(self, workload_runs):
        # Tables 4-5: additions (plus loads) dominate the predicted values; in
        # every synthetic workload AddSub must be the largest single category
        # and AddSub+Loads a substantial share of the mix.
        for name, run in workload_runs.items():
            percentages = run.trace.statistics().category_dynamic_percentages()
            addsub = percentages.get(Category.ADDSUB, 0.0)
            loads = percentages.get(Category.LOADS, 0.0)
            assert addsub == max(percentages.values()), f"{name}: AddSub not dominant"
            assert addsub + loads > 30.0, f"{name}: AddSub+Loads only {addsub + loads:.1f}%"

    def test_all_reported_categories_present(self, workload_runs):
        for name, run in workload_runs.items():
            counts = run.trace.category_counts()
            for category in (Category.ADDSUB, Category.LOADS, Category.SHIFT, Category.SET):
                assert counts.get(category, 0) > 0, f"{name}: no {category.value} instructions"

    def test_deterministic_traces(self):
        for name in ("compress", "m88ksim"):
            first = get_workload(name).trace(scale=SCALE)
            second = get_workload(name).trace(scale=SCALE)
            assert [r.value for r in first] == [r.value for r in second]
            assert [r.pc for r in first] == [r.pc for r in second]

    def test_scale_increases_dynamic_count(self):
        for name in ("compress", "perl"):
            workload = get_workload(name)
            small = workload.run(scale=0.2).execution.retired_instructions
            large = workload.run(scale=0.6).execution.retired_instructions
            assert large > 1.5 * small


class TestPerWorkloadCharacter:
    def test_input_sets_change_trace_length(self):
        # A scale large enough that the per-kernel minimum trip counts do not
        # mask the difference between the small and large input files.
        gcc = get_workload("gcc")
        small_input = gcc.trace(scale=0.15, input_name="jump.i")
        large_input = gcc.trace(scale=0.15, input_name="stmt.i")
        assert len(large_input) > len(small_input)

    def test_gcc_flags_change_dynamic_count(self):
        gcc = get_workload("gcc")
        unoptimised = gcc.trace(scale=SCALE, flags="none")
        optimised = gcc.trace(scale=SCALE, flags="-O2")
        assert len(optimised) > len(unoptimised)

    def test_m88ksim_is_highly_repetitive(self):
        # The simulated target loop repeats, so most static PCs produce very
        # few distinct values — this is what makes m88ksim so predictable.
        trace = get_workload("m88ksim").trace(scale=0.3)
        by_pc = trace.values_by_pc()
        few_valued = sum(1 for values in by_pc.values() if len(set(values)) <= 8)
        assert few_valued / len(by_pc) > 0.5

    def test_go_produces_wide_value_ranges(self):
        # Pattern hashing gives go many distinct values per static PC.
        trace = get_workload("go").trace(scale=0.5)
        by_pc = trace.values_by_pc()
        many_valued = sum(1 for values in by_pc.values() if len(set(values)) > 16)
        assert many_valued >= 3

    def test_xlisp_allocates_monotonically_increasing_cells(self):
        trace = get_workload("xlisp").trace(scale=SCALE)
        # The heap bump pointer produces a strictly increasing value stream on
        # at least one static PC (the cons allocation site).
        increasing_pcs = 0
        for values in trace.values_by_pc().values():
            if len(values) > 4 and all(b > a for a, b in zip(values, values[1:])):
                increasing_pcs += 1
        assert increasing_pcs >= 1

    def test_compress_hash_values_are_bounded_by_table_size(self):
        from repro.workloads.compress import HASH_MASK, HTAB_BASE

        trace = get_workload("compress").trace(scale=SCALE)
        assert len(trace) > 0
        # At least one static PC (the probe-address computation) produces
        # only addresses inside the hash table's word-aligned bounds.
        probe_streams = [
            values
            for values in trace.values_by_pc().values()
            if len(values) > 4
            and all(HTAB_BASE <= value <= HTAB_BASE + HASH_MASK for value in values)
        ]
        assert probe_streams
