"""Tests for the workload registry and whole-suite execution."""

from __future__ import annotations

import pytest

from repro.errors import UnknownWorkloadError, WorkloadError
from repro.workloads.suite import BENCHMARK_ORDER, available_workloads, get_workload, run_suite


class TestRegistry:
    def test_all_seven_spec95int_benchmarks_present(self):
        assert set(BENCHMARK_ORDER) == {
            "compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "xlisp",
        }

    def test_available_workloads_matches_paper_order(self):
        assert available_workloads() == BENCHMARK_ORDER

    def test_lookup_by_name(self):
        assert get_workload("gcc").name == "gcc"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(UnknownWorkloadError):
            get_workload("mcf")   # SPEC2000, not SPEC95


class TestWorkloadParameters:
    def test_invalid_input_set_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("compress").run(scale=0.02, input_name="nonexistent")

    def test_invalid_flags_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("gcc").run(scale=0.02, flags="-O9")

    def test_non_positive_scale_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("perl").run(scale=0.0)

    def test_gcc_has_the_five_paper_inputs_and_four_flag_sets(self):
        gcc = get_workload("gcc")
        assert set(gcc.input_sets) == {"gcc.i", "jump.i", "emit-rtl.i", "recog.i", "stmt.i"}
        assert set(gcc.flag_sets) == {"ref", "none", "-O1", "-O2"}


class TestRunSuite:
    def test_subset_run(self):
        runs = run_suite(scale=0.03, benchmarks=("compress", "perl"))
        assert set(runs) == {"compress", "perl"}
        for run in runs.values():
            assert run.execution.halted
            assert len(run.trace) > 0

    def test_runs_record_configuration(self):
        runs = run_suite(scale=0.03, benchmarks=("xlisp",))
        run = runs["xlisp"]
        assert run.workload == "xlisp"
        assert run.scale == 0.03
        assert run.input_name == "7-queens"
