"""Tests for the interpreter: instruction semantics and execution control."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError, ExecutionLimitExceeded
from repro.isa.machine import Machine, run_program
from repro.isa.memory import SparseMemory
from repro.isa.program import ProgramBuilder


def execute(build, memory=None, max_instructions=100_000):
    """Build a program with ``build(builder)`` and run it to completion."""
    builder = ProgramBuilder("test")
    build(builder)
    machine = Machine(builder.build(), memory=memory, max_instructions=max_instructions)
    result = machine.run()
    return machine, result


class TestArithmeticAndLogic:
    def test_add_sub_semantics(self):
        def build(b):
            b.li(1, 10)
            b.li(2, 3)
            b.add(3, 1, 2)
            b.sub(4, 1, 2)
            b.subi(5, 1, 25)

        machine, _ = execute(build)
        assert machine.registers[3] == 13
        assert machine.registers[4] == 7
        assert machine.registers[5] == -15

    def test_logic_semantics(self):
        def build(b):
            b.li(1, 0b1100)
            b.li(2, 0b1010)
            b.and_(3, 1, 2)
            b.or_(4, 1, 2)
            b.xor(5, 1, 2)
            b.nor(6, 1, 2)
            b.andi(7, 1, 0b0110)

        machine, _ = execute(build)
        assert machine.registers[3] == 0b1000
        assert machine.registers[4] == 0b1110
        assert machine.registers[5] == 0b0110
        assert machine.registers[6] == ~0b1110
        assert machine.registers[7] == 0b0100

    def test_shift_semantics(self):
        def build(b):
            b.li(1, -16)
            b.sll(2, 1, 2)
            b.sra(3, 1, 2)
            b.srl(4, 1, 60)
            b.li(5, 3)
            b.sllv(6, 1, 5)

        machine, _ = execute(build)
        assert machine.registers[2] == -64
        assert machine.registers[3] == -4
        assert machine.registers[4] == 15
        assert machine.registers[6] == -128

    def test_set_semantics(self):
        def build(b):
            b.li(1, 4)
            b.li(2, 9)
            b.slt(3, 1, 2)
            b.slt(4, 2, 1)
            b.seq(5, 1, 1)
            b.sne(6, 1, 2)
            b.slti(7, 1, 100)
            b.li(8, -1)
            b.sltu(9, 8, 1)   # unsigned: -1 is huge, so not < 4

        machine, _ = execute(build)
        assert machine.registers[3] == 1
        assert machine.registers[4] == 0
        assert machine.registers[5] == 1
        assert machine.registers[6] == 1
        assert machine.registers[7] == 1
        assert machine.registers[9] == 0

    def test_mult_div_rem_semantics(self):
        def build(b):
            b.li(1, 7)
            b.li(2, -3)
            b.mult(3, 1, 2)
            b.div(4, 1, 2)
            b.rem(5, 1, 2)
            b.li(6, 0)
            b.div(7, 1, 6)   # division by zero yields zero, not a crash

        machine, _ = execute(build)
        assert machine.registers[3] == -21
        assert machine.registers[4] == -2   # truncation towards zero
        assert machine.registers[5] == 1
        assert machine.registers[7] == 0

    def test_lui_mov_li(self):
        def build(b):
            b.lui(1, 5)
            b.mov(2, 1)
            b.li(3, -9)

        machine, _ = execute(build)
        assert machine.registers[1] == 5 << 16
        assert machine.registers[2] == 5 << 16
        assert machine.registers[3] == -9


class TestMemoryInstructions:
    def test_load_store_word_and_byte(self):
        def build(b):
            b.li(1, 0x100)
            b.li(2, 777)
            b.sw(2, 1, 0)
            b.lw(3, 1, 0)
            b.li(4, 0x1FF)
            b.sb(4, 1, 8)
            b.lb(5, 1, 8)

        machine, _ = execute(build)
        assert machine.registers[3] == 777
        assert machine.registers[5] == 0xFF

    def test_initial_memory_visible_to_loads(self):
        memory = SparseMemory({0x200: 42})

        def build(b):
            b.li(1, 0x200)
            b.lw(2, 1, 0)

        machine, _ = execute(build, memory=memory)
        assert machine.registers[2] == 42


class TestControlFlow:
    def test_loop_with_backward_branch(self):
        def build(b):
            b.li(1, 0)
            b.li(2, 10)
            b.label("loop")
            b.addi(1, 1, 1)
            b.blt(1, 2, "loop")

        machine, result = execute(build)
        assert machine.registers[1] == 10
        assert result.halted

    def test_jal_and_jr_round_trip(self):
        def build(b):
            b.li(1, 5)
            b.jal(31, "function")
            b.label("after")
            b.addi(2, 1, 100)
            b.j("end")
            b.label("function")
            b.addi(1, 1, 1)
            b.jr(31)
            b.label("end")

        machine, _ = execute(build)
        assert machine.registers[1] == 6
        assert machine.registers[2] == 106

    def test_conditional_branch_taken_and_not_taken(self):
        def build(b):
            b.li(1, 1)
            b.li(2, 2)
            b.beq(1, 2, "skip")
            b.li(3, 111)
            b.label("skip")
            b.bne(1, 2, "skip2")
            b.li(4, 222)
            b.label("skip2")

        machine, _ = execute(build)
        assert machine.registers[3] == 111   # beq not taken
        assert machine.registers[4] == 0     # bne taken, so li skipped


class TestExecutionControl:
    def test_instruction_budget_enforced(self):
        def build(b):
            b.label("spin")
            b.addi(1, 1, 1)
            b.j("spin")

        with pytest.raises(ExecutionLimitExceeded):
            execute(build, max_instructions=500)

    def test_invalid_budget_rejected(self):
        builder = ProgramBuilder("t")
        builder.li(1, 1)
        with pytest.raises(ExecutionError):
            Machine(builder.build(), max_instructions=0)

    def test_result_counts_instructions_and_register_writes(self):
        def build(b):
            b.li(1, 1)
            b.li(2, 2)
            b.add(3, 1, 2)
            b.sw(3, 0, 64)

        _, result = execute(build)
        assert result.retired_instructions == 4
        assert result.register_writes == 3
        assert result.fraction_predicted() == pytest.approx(0.75)

    def test_observer_sees_every_retired_instruction(self):
        events = []

        def build(b):
            b.li(1, 1)
            b.addi(1, 1, 1)
            b.sw(1, 0, 0)

        builder = ProgramBuilder("observed")
        build(builder)
        program = builder.build()
        run_program(program, observers=[lambda event, instr: events.append(event)])
        assert len(events) == 3
        assert events[0].value == 1
        assert events[1].value == 2
        assert events[2].value is None  # stores produce no register value
        assert [event.serial for event in events] == [0, 1, 2]
