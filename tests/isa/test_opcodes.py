"""Tests for the opcode/category mapping (Table 3)."""

from __future__ import annotations

from repro.isa.opcodes import (
    CATEGORY_OF,
    Category,
    Opcode,
    PREDICTED_CATEGORIES,
    REPORTED_CATEGORIES,
    category_of,
    is_predicted_opcode,
)


class TestCategoryMapping:
    def test_every_opcode_has_a_category(self):
        for opcode in Opcode:
            assert opcode in CATEGORY_OF

    def test_table3_category_examples(self):
        assert category_of(Opcode.ADD) is Category.ADDSUB
        assert category_of(Opcode.SUBI) is Category.ADDSUB
        assert category_of(Opcode.LW) is Category.LOADS
        assert category_of(Opcode.XOR) is Category.LOGIC
        assert category_of(Opcode.SRA) is Category.SHIFT
        assert category_of(Opcode.SLT) is Category.SET
        assert category_of(Opcode.DIV) is Category.MULTDIV
        assert category_of(Opcode.LUI) is Category.LUI
        assert category_of(Opcode.JAL) is Category.OTHER

    def test_stores_and_control_flow_not_predicted(self):
        for opcode in (Opcode.SW, Opcode.SB, Opcode.BEQ, Opcode.J, Opcode.JR, Opcode.HALT, Opcode.NOP):
            assert not is_predicted_opcode(opcode)

    def test_register_writing_instructions_are_predicted(self):
        for opcode in (Opcode.ADD, Opcode.LW, Opcode.AND, Opcode.SLL, Opcode.SEQ, Opcode.MULT, Opcode.LUI, Opcode.MOV):
            assert is_predicted_opcode(opcode)

    def test_predicted_categories_cover_the_paper_table(self):
        names = {category.value for category in PREDICTED_CATEGORIES}
        assert names == {"AddSub", "Loads", "Logic", "Shift", "Set", "MultDiv", "Lui", "Other"}

    def test_reported_categories_are_a_subset_of_predicted(self):
        assert set(REPORTED_CATEGORIES) <= set(PREDICTED_CATEGORIES)
