"""Tests for instruction construction and the program builder."""

from __future__ import annotations

import pytest

from repro.errors import InvalidInstructionError, ProgramError
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.isa.opcodes import Category, Opcode
from repro.isa.program import ProgramBuilder


class TestInstruction:
    def test_register_range_validated(self):
        with pytest.raises(InvalidInstructionError):
            Instruction(Opcode.ADD, rd=32, rs=0, rt=0)
        with pytest.raises(InvalidInstructionError):
            Instruction(Opcode.ADD, rd=1, rs=-1, rt=0)

    def test_branch_requires_target(self):
        with pytest.raises(InvalidInstructionError):
            Instruction(Opcode.BEQ, rs=1, rt=2)

    def test_jr_requires_source_register(self):
        with pytest.raises(InvalidInstructionError):
            Instruction(Opcode.JR)

    def test_category_and_write_properties(self):
        add = Instruction(Opcode.ADD, rd=1, rs=2, rt=3)
        store = Instruction(Opcode.SW, rt=1, rs=2)
        assert add.category is Category.ADDSUB
        assert add.writes_register
        assert store.category is Category.STORE
        assert not store.writes_register

    def test_string_rendering_mentions_opcode_and_registers(self):
        text = str(Instruction(Opcode.ADDI, rd=1, rs=2, imm=7))
        assert "addi" in text and "r1" in text and "7" in text


class TestProgramBuilder:
    def test_labels_resolve_to_instruction_indices(self):
        builder = ProgramBuilder("demo")
        builder.li(1, 0)
        builder.label("loop")
        builder.addi(1, 1, 1)
        builder.bne(1, 0, "loop")
        program = builder.build()
        assert program.index_of_label("loop") == 1
        assert program.pc_of_index(1) == INSTRUCTION_SIZE

    def test_halt_appended_automatically(self):
        builder = ProgramBuilder("demo")
        builder.li(1, 3)
        program = builder.build()
        assert program.instructions[-1].opcode is Opcode.HALT

    def test_duplicate_label_rejected(self):
        builder = ProgramBuilder("demo")
        builder.label("x")
        with pytest.raises(ProgramError):
            builder.label("x")

    def test_undefined_branch_target_rejected(self):
        builder = ProgramBuilder("demo")
        builder.li(1, 0)
        builder.beq(1, 0, "nowhere")
        with pytest.raises(ProgramError):
            builder.build()

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            ProgramBuilder("empty").build()

    def test_fresh_labels_are_unique(self):
        builder = ProgramBuilder("demo")
        labels = {builder.fresh_label() for _ in range(100)}
        assert len(labels) == 100

    def test_unknown_label_lookup_raises(self):
        builder = ProgramBuilder("demo")
        builder.li(1, 0)
        program = builder.build()
        with pytest.raises(ProgramError):
            program.index_of_label("missing")

    def test_static_pcs_enumerate_all_instructions(self):
        builder = ProgramBuilder("demo")
        builder.li(1, 0)
        builder.addi(1, 1, 1)
        program = builder.build()
        assert program.static_pcs() == (0, 4, 8)  # includes the implicit halt
