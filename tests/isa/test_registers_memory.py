"""Tests for the register file and sparse memory."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidRegisterError, MemoryError_
from repro.isa.memory import SparseMemory
from repro.isa.registers import NUM_REGISTERS, RegisterFile, to_unsigned, wrap_value


class TestWrapValue:
    def test_small_values_unchanged(self):
        assert wrap_value(42) == 42
        assert wrap_value(-42) == -42

    def test_overflow_wraps_to_negative(self):
        assert wrap_value(2**63) == -(2**63)

    def test_underflow_wraps_to_positive(self):
        assert wrap_value(-(2**63) - 1) == 2**63 - 1

    @given(value=st.integers(min_value=-(2**70), max_value=2**70))
    @settings(max_examples=80, deadline=None)
    def test_wrap_is_idempotent_and_in_range(self, value):
        wrapped = wrap_value(value)
        assert -(2**63) <= wrapped < 2**63
        assert wrap_value(wrapped) == wrapped
        assert to_unsigned(wrapped) == value % (2**64)


class TestRegisterFile:
    def test_registers_start_at_zero(self):
        registers = RegisterFile()
        assert all(registers.read(i) == 0 for i in range(NUM_REGISTERS))

    def test_write_and_read_back(self):
        registers = RegisterFile()
        registers.write(5, 1234)
        assert registers.read(5) == 1234

    def test_register_zero_is_hardwired(self):
        registers = RegisterFile()
        assert registers.write(0, 77) == 0
        assert registers.read(0) == 0

    def test_values_wrap_to_64_bits(self):
        registers = RegisterFile()
        registers.write(3, 2**64 + 5)
        assert registers.read(3) == 5

    def test_invalid_index_rejected(self):
        registers = RegisterFile()
        with pytest.raises(InvalidRegisterError):
            registers.read(32)
        with pytest.raises(InvalidRegisterError):
            registers.write(-1, 0)

    def test_indexing_protocol(self):
        registers = RegisterFile()
        registers[4] = 9
        assert registers[4] == 9
        assert len(registers) == NUM_REGISTERS

    def test_snapshot_and_reset(self):
        registers = RegisterFile()
        registers.write(1, 5)
        snapshot = registers.snapshot()
        registers.reset()
        assert snapshot[1] == 5
        assert registers.read(1) == 0


class TestSparseMemory:
    def test_uninitialised_reads_as_zero(self):
        assert SparseMemory().load_word(0x1000) == 0

    def test_store_and_load_word(self):
        memory = SparseMemory()
        memory.store_word(64, -17)
        assert memory.load_word(64) == -17

    def test_addresses_within_a_word_alias(self):
        memory = SparseMemory()
        memory.store_word(64, 5)
        assert memory.load_word(67) == 5

    def test_byte_access_uses_low_byte(self):
        memory = SparseMemory()
        memory.store_word(8, 0x1234)
        assert memory.load_byte(8) == 0x34
        memory.store_byte(8, 0xFF)
        assert memory.load_word(8) == 0x12FF

    def test_negative_address_rejected(self):
        with pytest.raises(MemoryError_):
            SparseMemory().load_word(-8)

    def test_initial_contents_and_footprint(self):
        memory = SparseMemory(initial={0: 1, 8: 2})
        assert memory.footprint() == 2
        assert 8 in memory
        memory.clear()
        assert memory.footprint() == 0

    @given(
        writes=st.dictionaries(
            st.integers(min_value=0, max_value=10_000).map(lambda a: a * 8),
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_last_write_wins(self, writes):
        memory = SparseMemory()
        for address, value in writes.items():
            memory.store_word(address, value)
        for address, value in writes.items():
            assert memory.load_word(address) == value
