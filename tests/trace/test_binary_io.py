"""Tests for the v3 binary trace format and cross-version loading."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.isa.opcodes import Opcode
from repro.trace.io import (
    BINARY_MAGIC,
    decode_uvarint,
    dumps_trace,
    dumps_trace_binary,
    encode_uvarint,
    load_trace_file,
    loads_trace,
    loads_trace_binary,
    save_trace_file,
)
from repro.trace.synthetic import trace_from_streams, trace_from_values


def _assert_same_trace(left, right):
    assert left.name == right.name
    assert left.total_dynamic_instructions == right.total_dynamic_instructions
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert (a.serial, a.pc, a.opcode, a.category, a.value) == (
            b.serial, b.pc, b.opcode, b.category, b.value,
        )


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**64 + 5])
    def test_uvarint_round_trip(self, value):
        decoded, offset = decode_uvarint(encode_uvarint(value), 0)
        assert decoded == value
        assert offset == len(encode_uvarint(value))

    def test_uvarint_rejects_negative(self):
        with pytest.raises(TraceError):
            encode_uvarint(-1)

    def test_truncated_varint_rejected(self):
        with pytest.raises(TraceError):
            decode_uvarint(b"\x80", 0)


class TestBinaryRoundTrip:
    def test_round_trip_preserves_records(self):
        trace = trace_from_streams({0: [1, -2, 3], 8: [100, 200]}, opcodes={8: Opcode.LW})
        trace.set_total_dynamic_instructions(12)
        _assert_same_trace(trace, loads_trace_binary(dumps_trace_binary(trace)))

    def test_compressed_round_trip(self):
        trace = trace_from_values([7, 7, 7, 8, 9] * 40, name="zlib")
        trace.set_total_dynamic_instructions(400)
        blob = dumps_trace_binary(trace, compress=True)
        _assert_same_trace(trace, loads_trace_binary(blob))
        assert len(blob) < len(dumps_trace_binary(trace))

    def test_empty_trace_round_trips(self):
        trace = trace_from_values([1], name="nearly-empty")[0:0]
        trace.name = "nearly-empty"
        _assert_same_trace(trace, loads_trace_binary(dumps_trace_binary(trace)))

    @pytest.mark.parametrize(
        "name",
        ["name with spaces", "percent %20 literal", "tabs\tand\nnewlines", "trailing space "],
    )
    def test_awkward_names_survive(self, name):
        trace = trace_from_values([1, 2, 3], name=name)
        assert loads_trace_binary(dumps_trace_binary(trace)).name == name

    @given(
        values=st.lists(
            st.integers(min_value=-(2**64), max_value=2**64), min_size=1, max_size=50
        ),
        compress=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, values, compress):
        trace = trace_from_values(values)
        restored = loads_trace_binary(dumps_trace_binary(trace, compress=compress))
        assert [record.value for record in restored] == [int(v) for v in values]

    def test_binary_decode_reencodes_to_identical_canonical_text(self, compress_trace):
        # The digest contract: a trace that travels through the binary
        # format must re-render to the exact same canonical text form.
        text = dumps_trace(compress_trace)
        restored = loads_trace_binary(dumps_trace_binary(compress_trace, compress=True))
        assert dumps_trace(restored) == text

    def test_binary_is_smaller_than_text(self, compress_trace):
        text = dumps_trace(compress_trace).encode("utf-8")
        assert len(dumps_trace_binary(compress_trace)) < len(text)
        assert len(dumps_trace_binary(compress_trace, compress=True)) < len(text) // 4


class TestBinaryCorruption:
    def test_bad_magic_rejected(self):
        with pytest.raises(TraceError):
            loads_trace_binary(b"\x89NOPE\r\n\x1a" + b"\x03\x00")

    def test_future_version_rejected(self):
        trace = trace_from_values([1, 2])
        blob = bytearray(dumps_trace_binary(trace))
        blob[len(BINARY_MAGIC)] = 9
        with pytest.raises(TraceError, match="version"):
            loads_trace_binary(bytes(blob))

    @pytest.mark.parametrize("keep", [9, 20, -3])
    def test_truncation_rejected(self, keep):
        trace = trace_from_values(list(range(50)))
        blob = dumps_trace_binary(trace)
        with pytest.raises(TraceError):
            loads_trace_binary(blob[:keep])

    @staticmethod
    def _blob(records_field: int, body: bytes, opcode: bytes = b"add") -> bytes:
        """Hand-assemble a minimal v3 container around ``body``."""
        out = bytearray(BINARY_MAGIC)
        out += encode_uvarint(3)  # version
        out += encode_uvarint(0)  # flags
        out += encode_uvarint(1) + b"x"  # name
        out += encode_uvarint(5)  # total
        out += encode_uvarint(records_field)
        out += encode_uvarint(1)  # opcode table with one entry
        out += encode_uvarint(len(opcode)) + opcode
        out += encode_uvarint(len(body)) + body
        return bytes(out)

    #: One record: serial_delta=0, pc_delta=0, opcode_index=0, value=7.
    ONE_RECORD = b"\x00\x00\x00\x0e"

    def test_hand_built_record_decodes(self):
        trace = loads_trace_binary(self._blob(1, self.ONE_RECORD))
        assert [(r.pc, r.opcode, r.value) for r in trace] == [(0, Opcode.ADD, 7)]

    def test_trailing_body_bytes_rejected(self):
        with pytest.raises(TraceError, match="trailing"):
            loads_trace_binary(self._blob(1, self.ONE_RECORD + b"\x00"))

    def test_body_ending_early_rejected(self):
        with pytest.raises(TraceError, match="ends after"):
            loads_trace_binary(self._blob(2, self.ONE_RECORD))

    def test_unknown_opcode_in_table_rejected(self):
        with pytest.raises(TraceError, match="unknown opcode"):
            loads_trace_binary(self._blob(1, self.ONE_RECORD, opcode=b"zzz"))

    def test_out_of_range_opcode_index_reported_as_such(self):
        # serial=0, pc=0, opcode index 5 into a 1-entry table, value=7:
        # must be reported as a bad index, not as body truncation.
        with pytest.raises(TraceError, match="invalid opcode index"):
            loads_trace_binary(self._blob(1, b"\x00\x00\x05\x0e"))

    def test_corrupt_zlib_body_rejected(self):
        trace = trace_from_values([5] * 30)
        blob = bytearray(dumps_trace_binary(trace, compress=True))
        blob[-4] ^= 0xFF
        with pytest.raises(TraceError):
            loads_trace_binary(bytes(blob))


class TestCrossVersionLoading:
    V1_TEXT = "#repro-trace v1 name=legacy total=3 records=2\n0 0 add 1\n1 4 lw -2\n"
    V2_TEXT = "#repro-trace v2 name=le%20gacy total=3 records=2\n0 0 add 1\n1 4 lw -2\n"

    def test_v1_text_still_loads(self):
        trace = loads_trace(self.V1_TEXT)
        assert trace.name == "legacy"
        assert [record.value for record in trace] == [1, -2]

    def test_v2_text_still_loads(self):
        trace = loads_trace(self.V2_TEXT)
        assert trace.name == "le gacy"

    def test_v1_v2_v3_agree_on_records(self):
        v1 = loads_trace(self.V1_TEXT)
        v2 = loads_trace(self.V2_TEXT)
        v3 = loads_trace_binary(dumps_trace_binary(v1))
        for left, right in ((v1, v3), (v1, v2)):
            assert [(r.serial, r.pc, r.opcode, r.value) for r in left] == [
                (r.serial, r.pc, r.opcode, r.value) for r in right
            ]

    def test_file_round_trip_both_formats(self, tmp_path):
        trace = trace_from_values([3, 1, 4, 1, 5], name="file test")
        trace.set_total_dynamic_instructions(11)
        for format, compress in (("text", False), ("binary", False), ("binary", True)):
            path = tmp_path / f"trace-{format}-{compress}"
            save_trace_file(trace, path, format=format, compress=compress)
            _assert_same_trace(trace, load_trace_file(path))

    def test_save_rejects_unknown_format(self, tmp_path):
        with pytest.raises(TraceError):
            save_trace_file(trace_from_values([1]), tmp_path / "t", format="xml")

    def test_load_file_rejects_non_trace_bytes(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"\xff\xfe not a trace")
        with pytest.raises(TraceError):
            load_trace_file(path)
