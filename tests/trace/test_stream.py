"""Tests for trace records, the ValueTrace container and its statistics."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.isa.opcodes import Category, Opcode
from repro.trace.record import TraceRecord
from repro.trace.stream import ValueTrace
from repro.trace.synthetic import trace_from_streams, trace_from_values


def make_record(serial=0, pc=0, opcode=Opcode.ADD, value=1):
    return TraceRecord(
        serial=serial, pc=pc, opcode=opcode, category=Category.ADDSUB, value=value
    )


class TestValueTrace:
    def test_append_and_len(self):
        trace = ValueTrace("t")
        trace.append(make_record())
        trace.append(make_record(serial=1, value=2))
        assert len(trace) == 2
        assert bool(trace)

    def test_total_dynamic_defaults_to_record_count(self):
        trace = trace_from_values([1, 2, 3])
        assert trace.total_dynamic_instructions == 3

    def test_total_dynamic_cannot_undercount(self):
        trace = trace_from_values([1, 2, 3])
        with pytest.raises(TraceError):
            trace.set_total_dynamic_instructions(2)

    def test_slicing_returns_a_trace(self):
        trace = trace_from_values(list(range(10)))
        head = trace[:3]
        assert isinstance(head, ValueTrace)
        assert len(head) == 3
        assert trace[4].value == 4

    def test_values_by_pc_groups_in_order(self):
        trace = trace_from_streams({0: [1, 2, 3], 8: [7, 7]})
        grouped = trace.values_by_pc()
        assert grouped[0] == [1, 2, 3]
        assert grouped[8] == [7, 7]

    def test_static_pcs_in_first_seen_order(self):
        trace = trace_from_streams({8: [1], 0: [2], 16: [3]})
        assert trace.static_pcs() == [0, 8, 16]

    def test_filter_category(self):
        records = [
            TraceRecord(0, 0, Opcode.ADD, Category.ADDSUB, 1),
            TraceRecord(1, 4, Opcode.LW, Category.LOADS, 2),
            TraceRecord(2, 8, Opcode.ADD, Category.ADDSUB, 3),
        ]
        trace = ValueTrace("mix", records)
        loads = trace.filter_category(Category.LOADS)
        assert len(loads) == 1
        assert loads.records[0].value == 2


class TestTraceStatistics:
    def test_statistics_counts_and_fractions(self):
        records = [
            TraceRecord(0, 0, Opcode.ADD, Category.ADDSUB, 1),
            TraceRecord(1, 4, Opcode.LW, Category.LOADS, 2),
            TraceRecord(2, 0, Opcode.ADD, Category.ADDSUB, 3),
        ]
        trace = ValueTrace("stats", records)
        trace.set_total_dynamic_instructions(6)
        stats = trace.statistics()
        assert stats.predicted_instructions == 3
        assert stats.total_dynamic_instructions == 6
        assert stats.fraction_predicted == pytest.approx(0.5)
        assert stats.static_instruction_count == 2
        assert stats.category_dynamic_counts[Category.ADDSUB] == 2
        assert stats.category_static_counts[Category.ADDSUB] == 1
        percentages = stats.category_dynamic_percentages()
        assert percentages[Category.ADDSUB] == pytest.approx(200.0 / 3)

    def test_empty_trace_statistics(self):
        stats = ValueTrace("empty").statistics()
        assert stats.predicted_instructions == 0
        assert stats.fraction_predicted == 0.0
