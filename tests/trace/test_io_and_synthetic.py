"""Tests for trace serialisation and synthetic trace construction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.isa.opcodes import Category, Opcode
from repro.trace.io import dumps_trace, load_trace_file, loads_trace, save_trace_file
from repro.trace.synthetic import (
    interleave_traces,
    representative_opcode,
    trace_from_streams,
    trace_from_values,
)


class TestSyntheticTraces:
    def test_trace_from_values_single_pc(self):
        trace = trace_from_values([3, 1, 4], pc=8, opcode=Opcode.LW)
        assert [record.value for record in trace] == [3, 1, 4]
        assert all(record.pc == 8 for record in trace)
        assert all(record.category is Category.LOADS for record in trace)

    def test_trace_from_values_rejects_non_predicted_opcode(self):
        with pytest.raises(TraceError):
            trace_from_values([1], opcode=Opcode.SW)

    def test_trace_from_streams_round_robins(self):
        trace = trace_from_streams({0: [1, 2], 4: [10, 20]})
        assert [(record.pc, record.value) for record in trace] == [
            (0, 1), (4, 10), (0, 2), (4, 20),
        ]

    def test_trace_from_streams_handles_unequal_lengths(self):
        trace = trace_from_streams({0: [1, 2, 3], 4: [10]})
        assert len(trace) == 4

    def test_trace_from_streams_requires_streams(self):
        with pytest.raises(TraceError):
            trace_from_streams({})

    def test_interleave_offsets_pcs(self):
        first = trace_from_values([1, 2], pc=0)
        second = trace_from_values([5, 6], pc=0)
        merged = interleave_traces([first, second])
        assert len(merged) == 4
        assert len({record.pc for record in merged}) == 2

    def test_interleave_requires_traces(self):
        with pytest.raises(TraceError):
            interleave_traces([])

    def test_representative_opcode_is_predicted(self):
        for category in (Category.ADDSUB, Category.LOADS, Category.SHIFT):
            assert representative_opcode(category) is not None
        with pytest.raises(TraceError):
            representative_opcode(Category.STORE)


class TestTraceSerialisation:
    def test_round_trip_preserves_records(self):
        trace = trace_from_streams({0: [1, -2, 3], 8: [100, 200]}, opcodes={8: Opcode.LW})
        trace.set_total_dynamic_instructions(12)
        restored = loads_trace(dumps_trace(trace))
        assert len(restored) == len(trace)
        assert restored.total_dynamic_instructions == 12
        for original, loaded in zip(trace, restored):
            assert (original.pc, original.opcode, original.value) == (
                loaded.pc, loaded.opcode, loaded.value,
            )

    def test_file_round_trip(self, tmp_path):
        trace = trace_from_values([1, 2, 3], name="file-test")
        path = tmp_path / "trace.txt"
        save_trace_file(trace, path)
        restored = load_trace_file(path)
        assert restored.name == "file-test"
        assert [record.value for record in restored] == [1, 2, 3]

    def test_missing_header_rejected(self):
        with pytest.raises(TraceError):
            loads_trace("not a trace\n")

    def test_malformed_record_rejected(self):
        text = "#repro-trace v1 name=x total=1 records=1\n1 2 add\n"
        with pytest.raises(TraceError):
            loads_trace(text)

    def test_record_count_mismatch_rejected(self):
        text = "#repro-trace v1 name=x total=5 records=2\n0 0 add 1\n"
        with pytest.raises(TraceError):
            loads_trace(text)

    @pytest.mark.parametrize(
        "name",
        [
            "name with spaces",
            "name total=7 records=1",
            "tabs\tand\nnewlines",
            "percent %20 literal",
            "trailing space ",
            "compress:Loads",
        ],
    )
    def test_header_survives_awkward_names(self, name):
        # Regression: an unquoted name containing spaces used to corrupt
        # the space-separated key=value header fields on round-trip.
        trace = trace_from_values([1, 2, 3], name=name)
        trace.set_total_dynamic_instructions(9)
        restored = loads_trace(dumps_trace(trace))
        assert restored.name == name
        assert restored.total_dynamic_instructions == 9
        assert [record.value for record in restored] == [1, 2, 3]

    @given(values=st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, values):
        trace = trace_from_values(values)
        restored = loads_trace(dumps_trace(trace))
        assert [record.value for record in restored] == [int(v) for v in values]


class TestCollector:
    def test_collector_filters_non_register_writes(self, compress_trace):
        # Every record in a collected trace must carry a concrete value and a
        # predicted category.
        assert len(compress_trace) > 0
        for record in compress_trace.records[:200]:
            assert record.value is not None
            assert record.category.value in {
                "AddSub", "Loads", "Logic", "Shift", "Set", "MultDiv", "Lui", "Other",
            }

    def test_collector_total_includes_unpredicted_instructions(self, compress_trace):
        assert compress_trace.total_dynamic_instructions > len(compress_trace)
