"""Integration tests for the public API surface and the command line."""

from __future__ import annotations

import pytest

import repro
from repro.cli import main


class TestPublicApi:
    def test_version_exposed(self):
        assert repro.__version__

    def test_quickstart_snippet_from_readme_works(self):
        trace = repro.get_workload("compress").trace(scale=0.05)
        result = repro.simulate_trace(trace, ("l", "s2", "fcm3"))
        assert 0.0 <= result.results["fcm3"].accuracy <= 100.0

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_predictor_construction_via_api(self):
        predictor = repro.create_predictor("fcm3")
        assert isinstance(predictor, repro.BlendedFcmPredictor)

    def test_sequence_helpers_via_api(self):
        values = repro.generate_sequence(repro.SequenceClass.REPEATED_STRIDE, 12)
        assert repro.classify_sequence(values) is repro.SequenceClass.REPEATED_STRIDE

    def test_paper_predictor_lineup_exposed(self):
        assert repro.PAPER_PREDICTORS == ("l", "s2", "fcm1", "fcm2", "fcm3")


class TestCli:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        for benchmark in ("compress", "gcc", "xlisp"):
            assert benchmark in output

    def test_predictors_listing(self, capsys):
        assert main(["predictors"]) == 0
        output = capsys.readouterr().out
        assert "s2" in output and "fcm3" in output

    def test_simulate_command(self, capsys):
        assert main(["simulate", "perl", "--scale", "0.05", "--predictors", "l", "s2"]) == 0
        output = capsys.readouterr().out
        assert "perl" in output
        assert "s2" in output

    def test_experiments_command_micro_only(self, capsys):
        assert main(["experiments", "table1", "figure1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "Figure 1" in output

    def test_campaign_command(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        arguments = [
            "campaign",
            "--scale", "0.05",
            "--benchmarks", "compress", "m88ksim",
            "--predictors", "l", "s2",
            "--jobs", "2",
            "--cache-dir", cache_dir,
        ]
        assert main(arguments) == 0
        output = capsys.readouterr().out
        assert "compress" in output and "m88ksim" in output
        assert "simulations: 4 computed, 0 cached" in output
        # Second run against the same cache dir re-simulates nothing.
        assert main(arguments) == 0
        output = capsys.readouterr().out
        assert "simulations: 0 computed, 4 cached" in output
        assert "traces: 0 computed, 2 cached" in output

    def test_campaign_no_cache_recomputes(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        arguments = [
            "campaign",
            "--scale", "0.05",
            "--benchmarks", "compress",
            "--predictors", "l",
            "--cache-dir", cache_dir,
        ]
        assert main(arguments) == 0
        capsys.readouterr()
        assert main(arguments + ["--no-cache"]) == 0
        assert "simulations: 1 computed, 0 cached" in capsys.readouterr().out

    def test_experiments_unknown_name_fails(self, capsys):
        assert main(["experiments", "table99"]) == 2

    def test_simulate_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["simulate", "not-a-benchmark"])


class TestSweepCli:
    def test_sweep_cold_then_warm(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        arguments = [
            "sweep",
            "--benchmark", "gcc",
            "--inputs", "all",
            "--scale", "0.05",
            "--jobs", "2",
            "--cache-dir", cache_dir,
        ]
        assert main(arguments) == 0
        output = capsys.readouterr().out
        assert "gcc.i" in output and "stmt.i" in output
        assert "traces: 5 computed, 0 cached" in output
        assert "simulations: 5 computed, 0 cached" in output
        # Second run against the same cache is fully warm.
        assert main(arguments) == 0
        output = capsys.readouterr().out
        assert "traces: 0 computed, 5 cached" in output
        assert "simulations: 0 computed, 5 cached" in output

    def test_sweep_orders_axis(self, capsys):
        assert main(["sweep", "--orders", "1", "2", "--scale", "0.05"]) == 0
        output = capsys.readouterr().out
        assert "fcm1" in output and "fcm2" in output
        # One shared trace for the whole order axis.
        assert "traces: 1 computed" in output

    def test_sweep_json_output(self, capsys):
        import json

        assert main(
            ["sweep", "--benchmark", "compress", "--scale", "0.05", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["benchmark"] == "compress"
        assert payload["points"][0]["predictor"] == "fcm2"
        assert payload["points"][0]["predictions"] > 0
        assert 0.0 <= payload["points"][0]["accuracy"] <= 100.0
        assert payload["stats"]["simulations_computed"] == 1

    def test_sweep_rejects_unknown_predictor(self, capsys):
        assert main(["sweep", "--predictors", "nope", "--scale", "0.05"]) == 2

    def test_sweep_rejects_unknown_input(self, capsys):
        assert main(["sweep", "--inputs", "bogus.i", "--scale", "0.05"]) == 2

    def test_sweep_matches_experiments_table6(self, capsys):
        # The CLI sweep and the table6 experiment are two views of the
        # same engine path; their accuracies must agree exactly.
        from repro.reporting.experiments import table6

        artifact = table6(scale=0.05)
        assert main(
            ["sweep", "--benchmark", "gcc", "--inputs", "all", "--scale", "0.05", "--json"]
        ) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        cli_points = [(p["input"], p["predictions"], p["accuracy"]) for p in payload["points"]]
        table_points = [(p.setting, p.predictions, p.accuracy) for p in artifact.data]
        assert cli_points == table_points


class TestBackendCli:
    def test_campaign_backend_parity_via_cli(self, capsys, tmp_path):
        outputs = {}
        for backend in ("serial", "pool", "persistent"):
            cache_dir = str(tmp_path / f"cache-{backend}")
            arguments = [
                "campaign",
                "--scale", "0.05",
                "--benchmarks", "compress",
                "--predictors", "l", "s2",
                "--jobs", "2",
                "--backend", backend,
                "--cache-dir", cache_dir,
            ]
            assert main(arguments) == 0
            output = capsys.readouterr().out
            assert "simulations: 2 computed, 0 cached" in output
            # The accuracy table (everything before the stats line) must be
            # bit-identical across backends.
            outputs[backend] = output.rsplit("traces:", 1)[0]
        assert outputs["serial"] == outputs["pool"] == outputs["persistent"]

    def test_sweep_persistent_backend_warm_rerun(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        arguments = [
            "sweep",
            "--benchmark", "compress",
            "--scale", "0.05",
            "--jobs", "2",
            "--backend", "persistent",
            "--cache-dir", cache_dir,
        ]
        assert main(arguments) == 0
        assert "simulations: 1 computed, 0 cached" in capsys.readouterr().out
        assert main(arguments) == 0
        output = capsys.readouterr().out
        assert "traces: 0 computed, 1 cached" in output
        assert "simulations: 0 computed, 1 cached" in output

    def test_backend_rejects_unknown_name(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--backend", "bogus"])


class TestMultiBenchmarkSweepCli:
    def test_benchmarks_axis_with_all_inputs(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(
            [
                "sweep",
                "--benchmarks", "compress", "m88ksim",
                "--inputs", "all",
                "--scale", "0.05",
                "--cache-dir", cache_dir,
                "--json",
            ]
        ) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["benchmarks"] == ["compress", "m88ksim"]
        benchmarks = {point["benchmark"] for point in payload["points"]}
        assert benchmarks == {"compress", "m88ksim"}

    def test_benchmark_column_in_table(self, capsys):
        assert main(
            ["sweep", "--benchmarks", "compress", "m88ksim", "--scale", "0.05"]
        ) == 0
        output = capsys.readouterr().out
        assert "compress" in output and "m88ksim" in output
        assert "Sweep — compress, m88ksim" in output


class TestCacheCli:
    CAMPAIGN = [
        "campaign",
        "--scale", "0.05",
        "--benchmarks", "compress",
        "--predictors", "l",
    ]

    def _populate(self, cache_dir, extra=()):
        assert main(self.CAMPAIGN + ["--cache-dir", cache_dir, *extra]) == 0

    def test_stats_reports_kinds_and_fails_when_empty(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--fail-if-empty"]) == 1
        capsys.readouterr()
        self._populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--fail-if-empty"]) == 0
        output = capsys.readouterr().out
        for kind in ("trace", "simulate", "merge"):
            assert kind in output
        assert "total: 3 entries" in output

    def test_stats_fail_if_over(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--fail-if-over", "1GB"]) == 0
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--fail-if-over", "1B"]) == 1

    def test_gc_bounds_the_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", cache_dir, "--max-bytes", "0"]) == 0
        assert "removed 3 entries" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--fail-if-empty"]) == 1

    def test_gc_requires_a_bound(self, capsys, tmp_path):
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 2

    def test_verify_and_clear(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        self._populate(str(cache_dir))
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0
        assert "all ok" in capsys.readouterr().out
        entry = next(path for path in cache_dir.glob("*/*/*") if path.is_file())
        entry.write_bytes(b"garbage")
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 1
        capsys.readouterr()
        assert main(["cache", "verify", "--cache-dir", str(cache_dir), "--remove"]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 2 entries" in capsys.readouterr().out

    def test_campaign_text_format_writes_json_entries(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        self._populate(str(cache_dir), extra=["--cache-format", "text"])
        entries = [path for path in cache_dir.glob("*/*/*") if path.is_file()]
        assert entries and all(path.suffix == ".json" for path in entries)
        # A binary-format rerun reads the text cache without recomputing.
        capsys.readouterr()
        self._populate(str(cache_dir))
        assert "simulations: 0 computed, 1 cached" in capsys.readouterr().out
