"""Integration tests asserting the paper's headline qualitative claims.

These run over the cached quick-scale campaign and check the *shape* of the
results the paper reports: who wins, in which order, and where the advantage
is concentrated.  Absolute numbers differ from the paper because the
substrate is a synthetic suite, not the authors' SPEC95 binaries.
"""

from __future__ import annotations

import pytest

from repro.isa.opcodes import Category
from repro.simulation.correlation import average_correlation, correlation_breakdown
from repro.simulation.improvement import combined_improvement_curve
from repro.simulation.metrics import build_accuracy_report
from repro.simulation.value_profile import average_value_profiles, value_profile


@pytest.fixture(scope="module")
def report(quick_campaign):
    return build_accuracy_report(quick_campaign.simulations)


class TestSection41Predictability:
    def test_context_prediction_beats_computational_on_average(self, report):
        """Overall: last value < stride < fcm (Figure 3)."""
        assert report.mean_overall("l") < report.mean_overall("s2")
        assert report.mean_overall("s2") < report.mean_overall("fcm3")

    def test_fcm_orders_show_diminishing_but_positive_returns(self, report):
        fcm1, fcm2, fcm3 = (report.mean_overall(f"fcm{k}") for k in (1, 2, 3))
        assert fcm1 <= fcm2 + 0.5
        assert fcm2 <= fcm3 + 0.5
        # Diminishing returns: the 2->3 step is no bigger than the 1->2 step
        # plus a small tolerance.
        assert (fcm3 - fcm2) <= (fcm2 - fcm1) + 2.0

    def test_fcm_is_best_or_tied_on_every_benchmark(self, report):
        for benchmark in report.benchmark_names:
            row = report.overall[benchmark]
            assert row["fcm3"] >= row["s2"] - 3.0, benchmark
            assert row["fcm3"] >= row["l"], benchmark

    def test_values_are_highly_predictable_overall(self, report):
        """The paper's central claim: data values are very predictable."""
        assert report.mean_overall("fcm3") > 55.0

    def test_m88ksim_most_predictable_go_among_hardest(self, report):
        fcm3 = {b: report.overall[b]["fcm3"] for b in report.benchmark_names}
        assert fcm3["m88ksim"] == max(fcm3.values())
        assert fcm3["go"] <= sorted(fcm3.values())[2]

    def test_stride_matches_instruction_functionality_for_addsub(self, report):
        """Stride does particularly well for add/subtract instructions but is
        close to last value for non-add/subtract types (Section 4.1)."""
        addsub_gain = report.mean_by_category("s2", Category.ADDSUB) - report.mean_by_category(
            "l", Category.ADDSUB
        )
        shift_gain = report.mean_by_category("s2", Category.SHIFT) - report.mean_by_category(
            "l", Category.SHIFT
        )
        assert addsub_gain > shift_gain

    def test_fcm_varies_less_across_categories_than_stride(self, report):
        def spread(predictor):
            values = [
                report.mean_by_category(predictor, category)
                for category in (Category.ADDSUB, Category.LOADS, Category.LOGIC, Category.SHIFT)
            ]
            return max(values) - min(values)

        assert spread("fcm3") <= spread("s2") + 5.0


class TestSection42Correlation:
    @pytest.fixture(scope="class")
    def breakdown(self, quick_campaign):
        return average_correlation(
            [correlation_breakdown(s) for s in quick_campaign.simulations.values()]
        )

    def test_most_values_predicted_by_something(self, breakdown):
        assert breakdown.overall["np"] < 40.0

    def test_large_common_subset_and_significant_fcm_only_share(self, breakdown):
        assert breakdown.fraction_all_three() > 10.0
        assert breakdown.fraction_only_fcm() > 5.0

    def test_last_value_adds_almost_nothing(self, breakdown):
        assert breakdown.overall["l"] + breakdown.overall["lf"] < 10.0

    def test_improvement_concentrated_in_few_static_instructions(self, quick_campaign):
        curve = combined_improvement_curve(
            list(quick_campaign.simulations.values()), "fcm3", "s2"
        )
        # A minority of static instructions accounts for the large majority
        # of the fcm-over-stride improvement (Figure 9).
        assert curve.improvement_at(30) > 55.0


class TestSection43ValueCharacteristics:
    @pytest.fixture(scope="class")
    def profile(self, quick_campaign):
        return average_value_profiles(
            [value_profile(trace) for trace in quick_campaign.traces.values()]
        )

    def test_many_static_instructions_generate_one_value(self, profile):
        assert profile.static_fraction_single_value() > 20.0

    def test_most_static_instructions_generate_few_values(self, profile):
        assert profile.static_fraction_up_to(64) > 60.0

    def test_dynamic_instructions_dominated_by_low_cardinality_pcs(self, profile):
        assert profile.dynamic_fraction_up_to(4096) > 80.0


class TestSection44Sensitivity:
    def test_gcc_insensitive_to_inputs_but_sensitive_to_order(self):
        from repro.simulation.sensitivity import input_sensitivity, order_sensitivity

        input_points = input_sensitivity(scale=0.15)
        input_accuracies = [point.accuracy for point in input_points]
        assert max(input_accuracies) - min(input_accuracies) < 15.0

        order_accuracies = order_sensitivity(orders=(1, 2, 3, 4), scale=0.15)
        assert order_accuracies[4] >= order_accuracies[1]
