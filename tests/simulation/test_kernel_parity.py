"""Differential harness pinning the vector kernel to the scalar reference.

The scalar loop of :mod:`repro.simulation.simulator` is the golden
reference; the columnar kernel (:mod:`repro.simulation.vectorized`) must be
*bit-identical* to it — not just equal totals, but the same packed
per-record correctness bits and the same dict insertion orders, because
cache entries are JSON renderings of these dicts and the two kernels must
produce byte-identical entries.  The harness drives every registered
predictor configuration over seeded synthetic traces engineered to stress
each plan: skewed PC reuse, stride runs with breaks, repeating FCM
contexts, mixed instruction categories and occasional extreme values.
"""

from __future__ import annotations

import functools
import json
import random

import pytest

from repro.core.registry import PAPER_PREDICTORS, available_predictors
from repro.engine.codecs import shard_to_dict, simulation_to_dict
from repro.errors import SimulationError
from repro.isa.opcodes import CATEGORY_OF, Opcode
from repro.simulation import vectorized
from repro.simulation.simulator import (
    SIMULATION_COUNTER,
    merge_shards,
    simulate_shard,
    simulate_trace,
)
from repro.trace.io import decode_trace_columns, dumps_trace_binary, trace_columns
from repro.trace.record import TraceRecord
from repro.trace.stream import ValueTrace

requires_numpy = pytest.mark.skipif(
    vectorized.numpy_or_none() is None, reason="vector kernel requires numpy"
)

#: Register-writing opcodes spanning all predicted categories (Table 3).
_OPCODES = (
    Opcode.ADD,
    Opcode.ADDI,
    Opcode.LW,
    Opcode.LB,
    Opcode.AND,
    Opcode.XOR,
    Opcode.SLL,
    Opcode.SLT,
    Opcode.MULT,
    Opcode.LUI,
    Opcode.MOV,
)

_EXTREMES = (2**63 - 1, -(2**63), -1, 0)


@functools.lru_cache(maxsize=None)
def synthetic_trace(seed: int, length: int, pcs: int) -> ValueTrace:
    """A seeded random trace with per-PC value behaviours.

    Each static PC gets one behaviour: arithmetic strides with occasional
    breaks (stride adoption/two-delta hysteresis), mostly-constant values
    (last-value hits), short repeating cycles (FCM contexts that recur) or
    uniform 64-bit noise.  PC selection is skewed so a few PCs dominate,
    as in real traces; rare extreme values exercise the zigzag boundaries.
    """
    rng = random.Random(seed)
    pc_pool = [0x400000 + 4 * index for index in range(pcs)]
    opcode_of = {pc: rng.choice(_OPCODES) for pc in pc_pool}
    behaviour_of = {pc: rng.choice(("stride", "repeat", "cycle", "noisy")) for pc in pc_pool}
    state: dict[int, object] = {}
    occurrences: dict[int, int] = {}
    records = []
    serial = 0
    for _ in range(length):
        serial += rng.randint(1, 4)
        # Quadratic skew: low-index PCs are reused far more often.
        pc = pc_pool[min(int(rng.random() ** 2 * pcs), pcs - 1)]
        occurrence = occurrences.get(pc, 0)
        occurrences[pc] = occurrence + 1
        behaviour = behaviour_of[pc]
        if behaviour == "stride":
            base, stride = state.setdefault(
                pc, (rng.randint(-1000, 1000), rng.choice((-8, -1, 1, 4, 8)))
            )
            value = base
            if rng.random() < 0.05:
                stride = rng.choice((-8, -1, 1, 4, 8))
            state[pc] = (base + stride, stride)
        elif behaviour == "repeat":
            value = state.setdefault(pc, rng.randint(-50, 50))
            if rng.random() < 0.1:
                value = rng.randint(-50, 50)
                state[pc] = value
        elif behaviour == "cycle":
            pattern = state.setdefault(
                pc, tuple(rng.randint(-9, 9) for _ in range(rng.randint(2, 5)))
            )
            value = pattern[occurrence % len(pattern)]
        else:
            value = rng.randrange(-(2**63), 2**63)
        if rng.random() < 0.01:
            value = rng.choice(_EXTREMES)
        opcode = opcode_of[pc]
        records.append(
            TraceRecord(
                serial=serial,
                pc=pc,
                opcode=opcode,
                category=CATEGORY_OF[opcode],
                value=value,
            )
        )
    trace = ValueTrace(f"synthetic-{seed}-{length}-{pcs}", records)
    trace.set_total_dynamic_instructions(serial + rng.randint(0, 5))
    return trace


#: (seed, length, pcs) — dozens of shapes: hot single PCs, wide PC sets,
#: tiny traces, deep per-PC streams.
SCENARIOS = (
    (1, 400, 8),
    (2, 640, 3),
    (3, 500, 40),
    (4, 256, 1),
    (5, 700, 16),
    (6, 123, 5),
    (7, 810, 25),
    (8, 320, 64),
)

#: Every statically registered name plus dynamic-suffix names, covering
#: both the vectorized plans and the scalar-fallback configurations.
ALL_NAMES = tuple(available_predictors()) + (
    "fcm0",
    "fcm4",
    "fcm2-single",
    "fcm2-small",
    "fcm2-full",
)


def assert_shard_parity(trace: ValueTrace, name: str) -> None:
    scalar = simulate_shard(trace, name, kernel="scalar")
    vector = simulate_shard(trace, name, kernel="vector")
    assert json.dumps(shard_to_dict(scalar)) == json.dumps(shard_to_dict(vector))


@requires_numpy
class TestShardParity:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: f"seed{s[0]}")
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_every_predictor_every_scenario(self, scenario, name):
        assert_shard_parity(synthetic_trace(*scenario), name)

    def test_every_name_has_a_vector_plan(self):
        # Guard against the parity tests comparing scalar against a silent
        # scalar fallback: every registered name — and every dynamic fcm
        # spelling — must have a real plan.
        for name in ALL_NAMES + ("fcm5-single", "fcm6-small", "fcm1-full"):
            assert vectorized.vector_plan(name) is not None, name

    def test_vector_kernel_actually_engages(self):
        columns = trace_columns(synthetic_trace(*SCENARIOS[0]))
        assert columns is not None
        assert vectorized.simulate_shard_vector(columns, "fcm2") is not None

    def test_vector_plan_memoized_per_registry_name(self):
        from repro.core.registry import register_predictor, registered_factory
        from repro.core.last_value import LastValuePredictor

        assert vectorized.vector_plan("lv-counter") is vectorized.vector_plan("lv-counter")
        assert vectorized.vector_plan("fcm5") is vectorized.vector_plan("fcm5")
        original = registered_factory("lv-counter")
        first = vectorized.vector_plan("lv-counter")
        register_predictor(
            "lv-counter",
            lambda: LastValuePredictor(
                hysteresis="counter", counter_max=1, counter_threshold=1
            ),
            overwrite=True,
        )
        try:
            # Re-binding the name swaps the factory token, so the memoised
            # plan must be rebuilt for the new configuration.
            assert vectorized.vector_plan("lv-counter") is not first
        finally:
            register_predictor("lv-counter", original, overwrite=True)
        assert vectorized.vector_plan("lv-counter") is not None


@requires_numpy
class TestMergeParity:
    @pytest.mark.parametrize("scenario", SCENARIOS[:4], ids=lambda s: f"seed{s[0]}")
    def test_simulate_trace_parity(self, scenario):
        trace = synthetic_trace(*scenario)
        scalar = simulate_trace(trace, PAPER_PREDICTORS, kernel="scalar")
        vector = simulate_trace(trace, PAPER_PREDICTORS, kernel="vector")
        assert json.dumps(simulation_to_dict(scalar)) == json.dumps(simulation_to_dict(vector))

    def test_merge_parity_mixed_shards(self):
        # Shards computed by either kernel merge identically on either kernel.
        trace = synthetic_trace(*SCENARIOS[1])
        names = ("l", "s2", "fcm1", "fcm2-small")
        shards = {
            name: simulate_shard(trace, name, kernel="vector" if index % 2 else "scalar")
            for index, name in enumerate(names)
        }
        scalar = merge_shards(trace, shards, kernel="scalar")
        vector = merge_shards(trace, shards, kernel="vector")
        assert json.dumps(simulation_to_dict(scalar)) == json.dumps(simulation_to_dict(vector))

    def test_subset_excluding_fcm(self):
        trace = synthetic_trace(*SCENARIOS[2])
        scalar = simulate_trace(trace, ("l", "s2"), kernel="scalar")
        vector = simulate_trace(trace, ("l", "s2"), kernel="vector")
        assert json.dumps(simulation_to_dict(scalar)) == json.dumps(simulation_to_dict(vector))


def _edge_trace(name: str, triples) -> ValueTrace:
    """Build a tiny trace from (pc, opcode, value) triples."""
    records = [
        TraceRecord(
            serial=index + 1,
            pc=pc,
            opcode=opcode,
            category=CATEGORY_OF[opcode],
            value=value,
        )
        for index, (pc, opcode, value) in enumerate(triples)
    ]
    return ValueTrace(name, records)


@requires_numpy
class TestEdgeCases:
    EDGE_NAMES = ("l", "s", "s2", "fcm1", "fcm2", "fcm3", "fcm0", "fcm2-single")

    @pytest.mark.parametrize("name", EDGE_NAMES)
    def test_empty_trace(self, name):
        assert_shard_parity(ValueTrace("empty", []), name)

    @pytest.mark.parametrize("name", EDGE_NAMES)
    def test_single_record(self, name):
        assert_shard_parity(_edge_trace("one", [(0x10, Opcode.ADD, 7)]), name)

    @pytest.mark.parametrize("name", EDGE_NAMES)
    def test_single_hot_pc(self, name):
        triples = [(0x10, Opcode.LW, value) for value in (3, 5, 7, 9, 9, 9, 11, 3, 5, 7)]
        assert_shard_parity(_edge_trace("hot", triples), name)

    @pytest.mark.parametrize("name", EDGE_NAMES)
    def test_interleaved_aliasing_pcs(self, name):
        # Two PCs in lockstep with identical values: per-PC grouping must
        # not leak one PC's history into the other's table walk.
        triples = []
        for value in (1, 2, 3, 5, 8, 13, 21):
            triples.append((0x10, Opcode.ADD, value))
            triples.append((0x20, Opcode.SUB, value))
        assert_shard_parity(_edge_trace("alias", triples), name)

    @pytest.mark.parametrize("name", EDGE_NAMES)
    def test_extreme_values_through_zigzag(self, name):
        triples = [
            (0x10, Opcode.LUI, 2**63 - 1),
            (0x10, Opcode.LUI, -(2**63)),
            (0x10, Opcode.LUI, 2**63 - 1),
            (0x14, Opcode.ADD, -(2**63)),
            (0x14, Opcode.ADD, -1),
            (0x14, Opcode.ADD, 2**63 - 2),
            (0x10, Opcode.LUI, -(2**63)),
        ]
        assert_shard_parity(_edge_trace("extreme", triples), name)

    @pytest.mark.parametrize("compress", (False, True))
    def test_columnar_decode_matches_object_columns(self, compress):
        # The wire-bytes fast path and the record-object path must build
        # the same columns — boundary values and all.
        np = vectorized.numpy_or_none()
        trace = synthetic_trace(9, 300, 12)
        decoded = decode_trace_columns(dumps_trace_binary(trace, compress=compress))
        reference = trace_columns(trace)
        assert decoded is not None and reference is not None
        assert decoded.name == reference.name
        assert decoded.total_dynamic_instructions == reference.total_dynamic_instructions
        assert decoded.categories == reference.categories
        for field in ("serials", "pcs", "values", "category_codes"):
            assert np.array_equal(getattr(decoded, field), getattr(reference, field)), field


@pytest.fixture
def temporary_predictor():
    """Register throwaway configurations; pop them again on teardown."""
    from repro.core import registry

    names: list[str] = []

    def _register(name: str, factory) -> str:
        registry.register_predictor(name, factory)
        names.append(name)
        return name

    yield _register
    for name in names:
        registry._REGISTRY.pop(name, None)
        vectorized._PLAN_CACHE.pop(name, None)


@requires_numpy
class TestCounterEdges:
    """Saturation-counter boundaries: counter_max=1 and threshold==counter_max."""

    def _cases(self):
        from repro.core.last_value import LastValuePredictor
        from repro.core.stride import CounterStridePredictor

        return (
            ("edge-lv-m1", lambda: LastValuePredictor(
                hysteresis="counter", counter_max=1, counter_threshold=1)),
            ("edge-lv-tmax", lambda: LastValuePredictor(
                hysteresis="counter", counter_max=3, counter_threshold=3)),
            ("edge-lv-run1", lambda: LastValuePredictor(
                hysteresis="consecutive", required_run=1)),
            ("edge-sc-m1", lambda: CounterStridePredictor(counter_max=1, threshold=1)),
            ("edge-sc-tmax", lambda: CounterStridePredictor(counter_max=3, threshold=3)),
        )

    def test_counter_boundary_parity(self, temporary_predictor):
        for name, factory in self._cases():
            temporary_predictor(name, factory)
            for scenario in SCENARIOS[:4]:
                assert_shard_parity(synthetic_trace(*scenario), name)

    def test_counter_boundary_hot_pc(self, temporary_predictor):
        # A value flip-flop drives the counter across every saturation and
        # replacement edge on a single entry.
        values = (5, 5, 5, 9, 5, 9, 9, 5, 5, 9, 9, 9, 5, 13, 13, 5, 9)
        triples = [(0x40, Opcode.ADD, value) for value in values]
        for name, factory in self._cases():
            temporary_predictor(name, factory)
            assert_shard_parity(_edge_trace("flipflop", triples), name)


def _scalar_window_shard(name: str, state, tail: ValueTrace):
    """The reference scalar window loop (mirrors the worker's fallback)."""
    from repro.core.registry import create_predictor
    from repro.simulation.simulator import (
        PredictorResult,
        PredictorShard,
        pack_outcomes,
    )
    from repro.simulation.state import restore_predictor

    predictor = create_predictor(name)
    if state is not None:
        restore_predictor(predictor, state)
    result = PredictorResult(predictor=name)
    outcomes = []
    for record in tail.records:
        category = record.category
        correct = predictor.observe(record.pc, record.value, category)
        outcomes.append(correct)
        result.total += 1
        result.category_total[category] = result.category_total.get(category, 0) + 1
        if correct:
            result.correct += 1
            result.category_correct[category] = result.category_correct.get(category, 0) + 1
            result.pc_correct[record.pc] = result.pc_correct.get(record.pc, 0) + 1
    return PredictorShard(
        result=result, correctness=pack_outcomes(outcomes), record_count=len(tail)
    )


def assert_window_parity(trace: ValueTrace, name: str, split: int) -> None:
    """Vector plan started from a mid-trace snapshot == scalar continuation."""
    from repro.core.registry import create_predictor
    from repro.simulation.state import replay_records, snapshot_predictor

    predictor = create_predictor(name)
    replay_records(predictor, trace.records[:split])
    state = snapshot_predictor(predictor)
    # The snapshot crosses a JSON wire in the engine; round-trip it so any
    # representation the codec cannot carry shows up as a parity break.
    state = json.loads(json.dumps(state))
    tail = ValueTrace(trace.name, trace.records[split:])
    scalar = _scalar_window_shard(name, state, tail)
    columns = trace_columns(tail)
    assert columns is not None
    vector = vectorized.simulate_shard_vector(
        columns, name, state=state, count_simulation=False
    )
    assert vector is not None, f"{name} fell back to scalar for the window"
    assert json.dumps(shard_to_dict(scalar)) == json.dumps(shard_to_dict(vector))


@requires_numpy
class TestWindowedVectorParity:
    """Plans started from restored snapshots — the sharded-run composition."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_every_predictor_from_snapshot(self, name):
        trace = synthetic_trace(*SCENARIOS[4])
        for split in (1, 7, len(trace) // 2, len(trace) - 1):
            assert_window_parity(trace, name, split)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_three_window_stitch_matches_monolithic(self, name):
        # Chained snapshots across two interior boundaries: the stitched
        # windows must reproduce the unsharded shard bit-exactly.
        from repro.engine.sharding import merge_window_shards
        from repro.core.registry import create_predictor
        from repro.simulation.state import replay_records, snapshot_predictor

        trace = synthetic_trace(*SCENARIOS[5])
        length = len(trace)
        cuts = (0, length // 3, 2 * length // 3, length)
        predictor = create_predictor(name)
        parts = []
        for start, stop in zip(cuts, cuts[1:]):
            state = None
            if start:
                state = json.loads(json.dumps(snapshot_predictor(predictor)))
            window = ValueTrace(trace.name, trace.records[start:stop])
            columns = trace_columns(window)
            shard = vectorized.simulate_shard_vector(
                columns, name, state=state, count_simulation=False
            )
            assert shard is not None, name
            parts.append(shard)
            replay_records(predictor, window.records)
        stitched = merge_window_shards(name, parts)
        reference = simulate_shard(trace, name, kernel="scalar")
        assert json.dumps(shard_to_dict(stitched)) == json.dumps(shard_to_dict(reference))

    def test_counter_state_straddles_boundary(self, temporary_predictor):
        from repro.core.last_value import LastValuePredictor
        from repro.core.stride import CounterStridePredictor

        # Splits landing mid-saturation: the snapshot must carry partially
        # saturated counters (and candidate runs) bit-exactly.
        values = (5, 5, 5, 5, 9, 9, 5, 9, 9, 9, 9, 5, 5, 9, 13, 13, 13, 5)
        triples = [(0x40, Opcode.LW, value) for value in values]
        trace = _edge_trace("straddle", triples)
        cases = (
            ("edge-w-lv", lambda: LastValuePredictor(
                hysteresis="counter", counter_max=3, counter_threshold=2)),
            ("edge-w-lv1", lambda: LastValuePredictor(
                hysteresis="counter", counter_max=1, counter_threshold=1)),
            ("edge-w-cons", lambda: LastValuePredictor(
                hysteresis="consecutive", required_run=2)),
            ("edge-w-sc", lambda: CounterStridePredictor(counter_max=3, threshold=3)),
        )
        for name, factory in cases:
            temporary_predictor(name, factory)
            for split in range(1, len(values)):
                assert_window_parity(trace, name, split)


@requires_numpy
class TestAccounting:
    def test_counter_counts_one_per_trace_predictor_pair(self):
        trace = synthetic_trace(10, 200, 6)
        SIMULATION_COUNTER.reset()
        simulate_trace(trace, PAPER_PREDICTORS, kernel="vector")
        assert SIMULATION_COUNTER.count == len(PAPER_PREDICTORS)
        SIMULATION_COUNTER.reset()
        simulate_shard(trace, "fcm1", kernel="vector")
        assert SIMULATION_COUNTER.count == 1


class TestKernelResolution:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv(vectorized.KERNEL_ENV, raising=False)
        assert vectorized.resolve_kernel(None) == "scalar"

    def test_empty_environment_is_scalar(self, monkeypatch):
        monkeypatch.setenv(vectorized.KERNEL_ENV, "")
        assert vectorized.resolve_kernel(None) == "scalar"

    @requires_numpy
    def test_environment_forces_vector(self, monkeypatch):
        monkeypatch.setenv(vectorized.KERNEL_ENV, "vector")
        assert vectorized.resolve_kernel(None) == "vector"

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(vectorized.KERNEL_ENV, "vector")
        assert vectorized.resolve_kernel("scalar") == "scalar"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SimulationError, match="unknown simulation kernel"):
            vectorized.resolve_kernel("turbo")

    def test_unknown_environment_kernel_names_source(self, monkeypatch):
        monkeypatch.setenv(vectorized.KERNEL_ENV, "turbo")
        with pytest.raises(SimulationError, match=vectorized.KERNEL_ENV):
            vectorized.resolve_kernel(None)

    def test_auto_without_numpy_is_scalar(self, monkeypatch):
        monkeypatch.setattr(vectorized, "_numpy_module", None)
        assert vectorized.resolve_kernel("auto") == "scalar"

    def test_forced_vector_without_numpy_is_clean_error(self, monkeypatch):
        monkeypatch.setattr(vectorized, "_numpy_module", None)
        with pytest.raises(SimulationError, match="requires numpy"):
            vectorized.resolve_kernel("vector")
        with pytest.raises(SimulationError, match="requires numpy"):
            simulate_shard(synthetic_trace(11, 20, 2), "l", kernel="vector")
