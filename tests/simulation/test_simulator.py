"""Tests for the trace-driven prediction simulator."""

from __future__ import annotations

import pytest

from repro.core.registry import create_predictor
from repro.errors import SimulationError
from repro.isa.opcodes import Category, Opcode
from repro.simulation.simulator import PredictionSimulator, simulate_trace
from repro.trace.synthetic import trace_from_streams, trace_from_values


class TestSimulatorBasics:
    def test_requires_at_least_one_predictor(self):
        with pytest.raises(SimulationError):
            PredictionSimulator({})

    def test_constant_stream_accuracy(self):
        trace = trace_from_values([7] * 10)
        result = simulate_trace(trace, ("l",))
        assert result.results["l"].correct == 9
        assert result.results["l"].accuracy == pytest.approx(90.0)

    def test_per_category_accounting(self):
        trace = trace_from_streams(
            {0: [5, 5, 5, 5], 8: [1, 2, 3, 4]},
            opcodes={0: Opcode.LW, 8: Opcode.ADD},
        )
        result = simulate_trace(trace, ("l",))
        loads_accuracy = result.results["l"].category_accuracy(Category.LOADS)
        addsub_accuracy = result.results["l"].category_accuracy(Category.ADDSUB)
        assert loads_accuracy == pytest.approx(75.0)
        assert addsub_accuracy == pytest.approx(0.0)

    def test_category_accuracy_for_absent_category_is_zero(self):
        trace = trace_from_values([1, 2, 3])
        result = simulate_trace(trace, ("l",))
        assert result.results["l"].category_accuracy(Category.SHIFT) == 0.0

    def test_pc_bookkeeping(self):
        trace = trace_from_streams({0: [5, 5, 5], 8: [9, 9]})
        result = simulate_trace(trace, ("l",))
        assert result.pc_total == {0: 3, 8: 2}
        assert result.results["l"].pc_correct[0] == 2
        assert result.results["l"].pc_correct[8] == 1
        assert result.pc_category[0] is Category.ADDSUB

    def test_result_for_unknown_predictor_raises(self):
        trace = trace_from_values([1, 2])
        result = simulate_trace(trace, ("l",))
        with pytest.raises(SimulationError):
            result.result_for("fcm3")


class TestJointOutcomes:
    def test_subset_counts_cover_every_record(self):
        trace = trace_from_values([1, 1, 2, 2, 3, 3])
        result = simulate_trace(trace, ("l", "s2", "fcm3"))
        assert sum(result.subset_counts.values()) == len(trace)
        per_category_total = sum(
            count
            for counts in result.subset_counts_by_category.values()
            for count in counts.values()
        )
        assert per_category_total == len(trace)

    def test_outcome_tuples_match_predictor_order(self):
        # A pure stride stream: only the stride predictor is right in steady
        # state, so the dominant outcome tuple must be (False, True, False).
        trace = trace_from_values(list(range(0, 60, 3)))
        result = simulate_trace(trace, ("l", "s2", "fcm3"))
        dominant = max(result.subset_counts, key=result.subset_counts.get)
        assert dominant == (False, True, False)

    def test_predictors_simulated_in_lockstep(self):
        trace = trace_from_values([4] * 20)
        result = simulate_trace(trace, ("l", "s2"))
        # On a constant stream both agree on every record after the first.
        assert result.subset_counts.get((True, True), 0) == 19


class TestPredictorIndependencePerTrace:
    def test_fresh_predictors_per_simulate_call(self, m88ksim_trace):
        first = simulate_trace(m88ksim_trace, ("fcm2",))
        second = simulate_trace(m88ksim_trace, ("fcm2",))
        assert first.results["fcm2"].correct == second.results["fcm2"].correct

    def test_simulator_reuses_supplied_predictor_instances(self):
        predictor = create_predictor("l")
        simulator = PredictionSimulator({"l": predictor})
        trace = trace_from_values([3, 3, 3])
        simulator.run(trace)
        # The same instance keeps its learned state across runs.
        assert predictor.table_entries() == 1
        second = simulator.run(trace)
        assert second.results["l"].correct == 3
