"""Tests for the Section 4 analyses: metrics, correlation, improvement, values."""

from __future__ import annotations

import pytest

from repro.isa.opcodes import Category
from repro.simulation.correlation import (
    SUBSET_LABELS,
    average_correlation,
    correlation_breakdown,
)
from repro.simulation.improvement import (
    combined_improvement_curve,
    improvement_curve,
)
from repro.simulation.metrics import arithmetic_mean, build_accuracy_report
from repro.simulation.simulator import simulate_trace
from repro.simulation.value_profile import (
    average_value_profiles,
    bucket_for,
    bucket_labels,
    value_profile,
)
from repro.trace.synthetic import trace_from_streams, trace_from_values
from repro.errors import SimulationError


def repeated(values, times):
    return list(values) * times


@pytest.fixture(scope="module")
def mixed_simulation():
    """A trace with one constant, one stride and one repeated non-stride PC."""
    trace = trace_from_streams(
        {
            0: repeated([5], 30),
            8: list(range(30)),
            16: repeated([9, -4, 77, 3, 12], 6),
        }
    )
    return simulate_trace(trace, ("l", "s2", "fcm3"))


class TestMetrics:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0

    def test_accuracy_report_structure(self, mixed_simulation):
        report = build_accuracy_report({"synthetic": mixed_simulation})
        assert report.benchmark_names == ("synthetic",)
        assert set(report.overall["synthetic"]) == {"l", "s2", "fcm3"}
        series = report.benchmark_series("s2")
        assert len(series) == 1
        assert report.mean_overall("s2") == pytest.approx(series[0])

    def test_category_series_default_zero_for_missing(self, mixed_simulation):
        report = build_accuracy_report({"synthetic": mixed_simulation})
        shift_series = report.benchmark_series("l", Category.SHIFT)
        assert shift_series == [0.0]


class TestCorrelation:
    def test_percentages_sum_to_one_hundred(self, mixed_simulation):
        breakdown = correlation_breakdown(mixed_simulation)
        assert sum(breakdown.overall.values()) == pytest.approx(100.0)
        assert set(breakdown.overall) == set(SUBSET_LABELS)

    def test_stride_only_pc_contributes_to_s_subset(self, mixed_simulation):
        breakdown = correlation_breakdown(mixed_simulation)
        # The pure stride PC is predicted only by the stride predictor, so the
        # "s" subset must be substantial.
        assert breakdown.overall["s"] > 15.0
        # The repeated non-stride PC is caught only by fcm.
        assert breakdown.overall["f"] > 10.0
        # The constant PC is caught by everyone.
        assert breakdown.overall["lsf"] > 15.0

    def test_marginalisation_over_extra_predictors(self):
        trace = trace_from_values(repeated([3], 20))
        simulation = simulate_trace(trace, ("l", "s2", "fcm1", "fcm2", "fcm3"))
        breakdown = correlation_breakdown(simulation, predictors=("l", "s2", "fcm3"))
        assert breakdown.overall["lsf"] > 90.0

    def test_missing_predictor_rejected(self, mixed_simulation):
        with pytest.raises(SimulationError):
            correlation_breakdown(mixed_simulation, predictors=("l", "s2", "fcm9"))

    def test_average_correlation(self, mixed_simulation):
        averaged = average_correlation([correlation_breakdown(mixed_simulation)] * 3)
        assert sum(averaged.overall.values()) == pytest.approx(100.0)

    def test_average_requires_input(self):
        with pytest.raises(SimulationError):
            average_correlation([])


class TestImprovement:
    def test_improvement_concentrated_on_fcm_favoured_pcs(self, mixed_simulation):
        curve = improvement_curve(mixed_simulation, fcm_name="fcm3", stride_name="s2")
        assert curve.total_improvement > 0
        assert curve.points[100] == pytest.approx(100.0)
        assert curve.points[0] == pytest.approx(0.0)
        # Improvement only comes from the repeated-non-stride PC.
        assert curve.improving_static_instructions == 1

    def test_category_filter(self, mixed_simulation):
        curve = improvement_curve(
            mixed_simulation, fcm_name="fcm3", stride_name="s2", category=Category.SHIFT
        )
        assert curve.total_improvement == 0

    def test_combined_curve_over_multiple_simulations(self, mixed_simulation):
        curve = combined_improvement_curve(
            [mixed_simulation, mixed_simulation], fcm_name="fcm3", stride_name="s2"
        )
        assert curve.improving_static_instructions == 2
        assert curve.static_fraction_for(99.0) <= 100

    def test_unknown_predictor_rejected(self, mixed_simulation):
        with pytest.raises(SimulationError):
            improvement_curve(mixed_simulation, fcm_name="nope", stride_name="s2")

    def test_requires_simulations(self):
        with pytest.raises(SimulationError):
            combined_improvement_curve([], "fcm3", "s2")


class TestValueProfile:
    def test_bucket_boundaries(self):
        assert bucket_for(1) == "1"
        assert bucket_for(2) == "4"
        assert bucket_for(64) == "64"
        assert bucket_for(65) == "256"
        assert bucket_for(10**6) == ">65536"

    def test_profile_percentages_sum_to_one_hundred(self):
        trace = trace_from_streams({0: [5] * 10, 8: list(range(10))})
        profile = value_profile(trace)
        assert sum(profile.static_percent["All"].values()) == pytest.approx(100.0)
        assert sum(profile.dynamic_percent["All"].values()) == pytest.approx(100.0)

    def test_single_value_instruction_counted(self):
        trace = trace_from_streams({0: [5] * 10, 8: list(range(10))})
        profile = value_profile(trace)
        assert profile.static_fraction_single_value() == pytest.approx(50.0)
        assert profile.static_fraction_up_to(64) == pytest.approx(100.0)

    def test_dynamic_view_weights_by_execution_count(self):
        trace = trace_from_streams({0: [5] * 90, 8: list(range(10))})
        profile = value_profile(trace)
        assert profile.dynamic_fraction_up_to(1) == pytest.approx(90.0)

    def test_average_profiles(self):
        trace = trace_from_streams({0: [5] * 10, 8: list(range(10))})
        profile = value_profile(trace)
        averaged = average_value_profiles([profile, profile])
        for label in bucket_labels():
            assert averaged.static_percent["All"][label] == pytest.approx(
                profile.static_percent["All"][label]
            )

    def test_average_requires_profiles(self):
        with pytest.raises(ValueError):
            average_value_profiles([])
