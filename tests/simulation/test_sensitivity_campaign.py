"""Tests for the sensitivity sweeps and the cached campaign runner."""

from __future__ import annotations

from repro.core.registry import PAPER_PREDICTORS
from repro.simulation.campaign import QUICK_SCALE, clear_campaign_cache, run_campaign
from repro.simulation.sensitivity import flag_sensitivity, input_sensitivity, order_sensitivity


class TestSensitivity:
    def test_input_sensitivity_covers_all_gcc_inputs(self):
        points = input_sensitivity(scale=0.03)
        assert [point.setting for point in points] == [
            "gcc.i", "jump.i", "emit-rtl.i", "recog.i", "stmt.i",
        ]
        for point in points:
            assert point.predictions > 0
            assert 0.0 <= point.accuracy <= 100.0

    def test_flag_sensitivity_covers_all_gcc_flags(self):
        points = flag_sensitivity(scale=0.03)
        assert [point.setting for point in points] == ["ref", "none", "-O1", "-O2"]

    def test_order_sensitivity_is_monotone_in_the_small_order_range(self):
        accuracies = order_sensitivity(orders=(1, 2, 3), scale=0.05)
        assert set(accuracies) == {1, 2, 3}
        assert accuracies[3] >= accuracies[1] - 1.0

    def test_sensitivity_for_other_benchmarks(self):
        points = input_sensitivity(benchmark="compress", predictor="fcm1", scale=0.05)
        assert len(points) == len(("ref", "test", "train"))


class TestCampaign:
    def test_quick_campaign_has_all_benchmarks_and_predictors(self, quick_campaign):
        assert set(quick_campaign.benchmarks()) == {
            "compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "xlisp",
        }
        assert quick_campaign.predictor_names == PAPER_PREDICTORS
        for simulation in quick_campaign.simulations.values():
            assert simulation.total_records > 0

    def test_campaign_statistics_match_traces(self, quick_campaign):
        for benchmark, trace in quick_campaign.traces.items():
            stats = quick_campaign.statistics[benchmark]
            assert stats.predicted_instructions == len(trace)

    def test_campaign_is_cached(self, quick_campaign):
        again = run_campaign(scale=QUICK_SCALE, predictors=PAPER_PREDICTORS)
        assert again is quick_campaign

    def test_cache_can_be_bypassed_and_cleared(self):
        first = run_campaign(scale=0.02, benchmarks=("perl",))
        second = run_campaign(scale=0.02, benchmarks=("perl",), use_cache=False)
        assert first is not second
        clear_campaign_cache()
        third = run_campaign(scale=0.02, benchmarks=("perl",))
        assert third is not first
