"""Shared fixtures for the test suite.

Suite-wide artefacts (campaign, traces) are expensive to produce, so they are
session-scoped and use the reduced ``QUICK_SCALE``; individual unit tests
construct their own tiny traces instead.
"""

from __future__ import annotations

import pytest

from repro.core.registry import PAPER_PREDICTORS
from repro.simulation.campaign import QUICK_SCALE, run_campaign
from repro.workloads.suite import get_workload


@pytest.fixture(scope="session")
def quick_campaign():
    """One full-suite campaign with the paper's predictors at quick scale."""
    return run_campaign(scale=QUICK_SCALE, predictors=PAPER_PREDICTORS)


@pytest.fixture(scope="session")
def compress_trace():
    """A small compress trace used by several simulation tests."""
    return get_workload("compress").trace(scale=0.05)


@pytest.fixture(scope="session")
def m88ksim_trace():
    """A small m88ksim trace (the most predictable benchmark)."""
    return get_workload("m88ksim").trace(scale=0.05)
