"""Tests for the one-command reproduction artifact (``repro-vp reproduce``).

Most tests drive a tiny manifest of engine-free micro-experiments (Table 1,
Figures 1-2, Table 3) plus one tiny sweep-backed deliverable, so the full
record → check → perturb → diff cycle runs in well under a second; one
integration test reproduces the *committed* manifest end to end and checks
it against the committed goldens, which is the acceptance path CI runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.artifact import (
    ArtifactManifest,
    Deliverable,
    canonical_json,
    diff_payloads,
    load_manifest,
    payload_digest,
    reproduce,
)
from repro.artifact.check import MAX_RENDERED_DIFFS, CheckReport, check_deliverable
from repro.cli import main
from repro.errors import ArtifactError
from repro.simulation.campaign import reset_campaign_defaults

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED_MANIFEST = REPO_ROOT / "artifact" / "manifest.json"


@pytest.fixture(autouse=True)
def _pristine_engine_defaults():
    """CLI invocations mutate process-wide engine defaults; restore them."""
    yield
    reset_campaign_defaults()


def micro_manifest(tmp_path: Path) -> ArtifactManifest:
    """A fast manifest: engine-free micro-experiments plus one tiny sweep."""
    manifest = ArtifactManifest(
        paper="test paper",
        deliverables=(
            Deliverable("table1", "table", "Sequence behaviour", "table1", {"length": 16, "period": 4}),
            Deliverable("figure1", "figure", "Finite context models", "figure1", {"sequence": "aabca"}),
            Deliverable("table3", "table", "Instruction categories", "table3", {}),
            Deliverable(
                "figure11", "figure", "fcm order sensitivity", "figure11", {"scale": 0.05, "max_order": 2}
            ),
        ),
    )
    manifest.save(tmp_path / "artifact" / "manifest.json")
    return manifest


def recorded_manifest(tmp_path: Path) -> ArtifactManifest:
    """A micro manifest with goldens recorded under its ``expected/`` dir."""
    manifest = micro_manifest(tmp_path)
    reproduce(manifest, out_dir=tmp_path / "results", update_expected=True)
    return load_manifest(manifest.path)


class TestManifestSchema:
    def test_round_trip(self, tmp_path):
        manifest = micro_manifest(tmp_path)
        reloaded = load_manifest(manifest.path)
        assert reloaded.paper == manifest.paper
        assert reloaded.identifiers() == manifest.identifiers()
        assert reloaded.to_payload() == manifest.to_payload()
        assert reloaded.get("table1").params == {"length": 16, "period": 4}

    def test_digests_survive_round_trip(self, tmp_path):
        manifest = recorded_manifest(tmp_path)
        assert all(d.expected_digest for d in manifest.deliverables)
        reloaded = load_manifest(manifest.path)
        assert reloaded.to_payload() == manifest.to_payload()

    def test_rejects_unknown_version(self, tmp_path):
        path = micro_manifest(tmp_path).path
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="version"):
            load_manifest(path)

    def test_rejects_duplicate_identifiers(self):
        entry = Deliverable("table1", "table", "t", "table1")
        with pytest.raises(ArtifactError, match="duplicate"):
            ArtifactManifest(paper="p", deliverables=(entry, entry))

    def test_rejects_bad_kind(self):
        with pytest.raises(ArtifactError, match="kind"):
            Deliverable("table1", "chart", "t", "table1")

    def test_canonical_json_is_key_order_independent(self):
        assert payload_digest({"a": 1, "b": [1.5, None]}) == payload_digest({"b": [1.5, None], "a": 1})
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestOnlySelection:
    def test_exact_identifier(self, tmp_path):
        manifest = micro_manifest(tmp_path)
        assert [d.identifier for d in manifest.select(["table1"])] == ["table1"]

    def test_groups_and_manifest_order(self, tmp_path):
        manifest = micro_manifest(tmp_path)
        assert [d.identifier for d in manifest.select(["tables"])] == ["table1", "table3"]
        assert [d.identifier for d in manifest.select(["figures"])] == ["figure1", "figure11"]
        # Selection order never reorders deliverables.
        assert [d.identifier for d in manifest.select(["table3", "table1"])] == ["table1", "table3"]

    def test_glob_and_case_insensitive(self, tmp_path):
        manifest = micro_manifest(tmp_path)
        assert [d.identifier for d in manifest.select(["figure*"])] == ["figure1", "figure11"]
        assert [d.identifier for d in manifest.select(["TABLE1"])] == ["table1"]

    def test_unmatched_selector_raises(self, tmp_path):
        manifest = micro_manifest(tmp_path)
        with pytest.raises(ArtifactError, match="matches no deliverable"):
            manifest.select(["table99"])


class TestCellDiffs:
    def _payload(self):
        return {
            "identifier": "table2",
            "title": "t",
            "grids": [
                {
                    "title": "Table 2",
                    "columns": ["Benchmark", "Predicted (%)"],
                    "rows": [["gcc", 93.1], ["compress", 40.2]],
                }
            ],
        }

    def test_identical_payloads_are_ok(self):
        check = diff_payloads("table2", self._payload(), self._payload())
        assert check.ok and not check.diffs

    def test_perturbed_cell_names_table_row_and_column(self):
        actual = self._payload()
        actual["grids"][0]["rows"][0][1] = 92.8
        check = diff_payloads("table2", self._payload(), actual)
        assert not check.ok
        assert len(check.diffs) == 1
        rendered = check.diffs[0].render()
        assert "table2" in rendered and "Table 2" in rendered
        assert "row 'gcc'" in rendered and "column 'Predicted (%)'" in rendered
        assert "expected 93.1" in rendered and "got 92.8" in rendered

    def test_missing_row_reports_absent_cells(self):
        actual = self._payload()
        del actual["grids"][0]["rows"][1]
        check = diff_payloads("table2", self._payload(), actual)
        assert not check.ok
        assert any("compress" in diff.render() and "<absent>" in diff.render() for diff in check.diffs)

    def test_metadata_only_difference_is_still_a_mismatch(self):
        actual = self._payload()
        actual["grids"][0]["title"] = "Table 2 (renamed)"
        check = diff_payloads("table2", self._payload(), actual)
        assert not check.ok

    def test_report_caps_rendered_diffs(self):
        expected = self._payload()
        expected["grids"][0]["rows"] = [[f"row{i}", i] for i in range(MAX_RENDERED_DIFFS + 10)]
        actual = self._payload()
        actual["grids"][0]["rows"] = [[f"row{i}", i + 1] for i in range(MAX_RENDERED_DIFFS + 10)]
        report = CheckReport(checks=[diff_payloads("table2", expected, actual)])
        assert "and 10 more differing cell(s)" in report.render()

    def test_missing_expected_suggests_update_expected(self, tmp_path):
        manifest = micro_manifest(tmp_path)
        check = check_deliverable(manifest.get("table1"), {"identifier": "table1"}, None)
        assert check.status == "missing-expected"
        assert any("--update-expected" in message for message in check.messages)


class TestReproduceRunner:
    def test_results_directory_layout(self, tmp_path):
        manifest = micro_manifest(tmp_path)
        report = reproduce(manifest, out_dir=tmp_path / "results", run_id="layout-test")
        assert report.run_dir == tmp_path / "results" / "layout-test"
        names = sorted(p.relative_to(report.run_dir).as_posix() for p in report.run_dir.rglob("*") if p.is_file())
        expected = ["manifest.json", "metrics.jsonl", "summary.json"]
        for identifier in ("figure1", "figure11", "table1", "table3"):
            expected += [f"tables/{identifier}.csv", f"tables/{identifier}.json", f"tables/{identifier}.md"]
        assert names == sorted(expected)
        summary = json.loads((report.run_dir / "summary.json").read_text())
        assert summary["ok"] is True and summary["checked"] is False
        assert [entry["identifier"] for entry in summary["deliverables"]] == list(manifest.identifiers())
        run_manifest = json.loads((report.run_dir / "manifest.json").read_text())
        assert run_manifest["command"] == "reproduce"
        assert run_manifest["artifact_deliverables"] == list(manifest.identifiers())

    def test_written_payloads_carry_matching_digest(self, tmp_path):
        manifest = micro_manifest(tmp_path)
        report = reproduce(manifest, out_dir=tmp_path / "results")
        payload = json.loads((report.run_dir / "tables" / "table1.json").read_text())
        digest = payload.pop("digest")
        assert digest == payload_digest(payload)

    def test_check_passes_against_recorded_goldens(self, tmp_path):
        manifest = recorded_manifest(tmp_path)
        report = reproduce(manifest, out_dir=tmp_path / "results", check=True)
        assert report.ok
        assert all(check.status == "ok" for check in report.check_report.checks)

    def test_check_fails_on_perturbed_golden_with_cell_diff(self, tmp_path):
        manifest = recorded_manifest(tmp_path)
        golden_path = manifest.expected_dir() / "table1.json"
        golden = json.loads(golden_path.read_text())
        original = golden["grids"][0]["rows"][0][1]
        golden["grids"][0]["rows"][0][1] = original + 1
        golden_path.write_text(json.dumps(golden))
        report = reproduce(manifest, out_dir=tmp_path / "results", check=True)
        assert not report.ok
        failures = report.check_report.failures()
        assert [check.identifier for check in failures] == ["table1"]
        rendered = report.check_report.render()
        assert "table1" in rendered and "row" in rendered and "column" in rendered
        assert repr(original + 1) in rendered and repr(original) in rendered

    def test_missing_golden_fails_check(self, tmp_path):
        manifest = recorded_manifest(tmp_path)
        (manifest.expected_dir() / "table3.json").unlink()
        report = reproduce(manifest, out_dir=tmp_path / "results", check=True)
        assert not report.ok
        assert [check.identifier for check in report.check_report.failures()] == ["table3"]
        assert report.check_report.failures()[0].status == "missing-expected"

    def test_scale_override_refuses_check_modes(self, tmp_path):
        manifest = recorded_manifest(tmp_path)
        with pytest.raises(ArtifactError, match="--scale"):
            reproduce(manifest, out_dir=tmp_path / "results", check=True, scale=0.1)
        with pytest.raises(ArtifactError, match="--scale"):
            reproduce(manifest, out_dir=tmp_path / "results", update_expected=True, scale=0.1)

    def test_reproduce_aggregates_engine_stats(self, tmp_path):
        manifest = micro_manifest(tmp_path)
        report = reproduce(manifest, out_dir=tmp_path / "results")
        # figure11 runs a real sweep through the engine; micro-experiments don't.
        assert report.stats is not None
        assert report.stats.simulations_computed + report.stats.simulations_cached > 0


class TestReproduceCli:
    def test_only_filtering(self, tmp_path, capsys):
        manifest = recorded_manifest(tmp_path)
        code = main(
            [
                "reproduce",
                "--manifest", str(manifest.path),
                "--only", "table1", "figure1",
                "--out", str(tmp_path / "cli-results"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure1" in out and "table3" not in out
        run_dirs = list((tmp_path / "cli-results").iterdir())
        assert len(run_dirs) == 1
        produced = {p.stem for p in (run_dirs[0] / "tables").glob("*.json")}
        assert produced == {"table1", "figure1"}

    def test_check_pass_and_perturbed_fail(self, tmp_path, capsys):
        manifest = recorded_manifest(tmp_path)
        argv = [
            "reproduce",
            "--manifest", str(manifest.path),
            "--only", "table1",
            "--check",
            "--out", str(tmp_path / "cli-results"),
        ]
        assert main(argv) == 0
        assert "check passed" in capsys.readouterr().out
        golden_path = manifest.expected_dir() / "table1.json"
        golden = json.loads(golden_path.read_text())
        golden["grids"][0]["rows"][0][1] = 99999
        golden_path.write_text(json.dumps(golden))
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "check failed: table1" in err
        assert "row" in err and "column" in err and "99999" in err

    def test_list_deliverables(self, tmp_path, capsys):
        manifest = micro_manifest(tmp_path)
        assert main(["reproduce", "--manifest", str(manifest.path), "--list"]) == 0
        out = capsys.readouterr().out
        for identifier in manifest.identifiers():
            assert identifier in out

    def test_unknown_selector_exits_2(self, tmp_path, capsys):
        manifest = micro_manifest(tmp_path)
        code = main(["reproduce", "--manifest", str(manifest.path), "--only", "nope"])
        assert code == 2
        assert "matches no deliverable" in capsys.readouterr().err

    def test_telemetry_dir_is_rejected(self, tmp_path, capsys):
        manifest = micro_manifest(tmp_path)
        code = main(
            [
                "reproduce",
                "--manifest", str(manifest.path),
                "--telemetry-dir", str(tmp_path / "telemetry"),
            ]
        )
        assert code == 2
        assert "--telemetry-dir does not apply" in capsys.readouterr().err

    def test_scale_with_check_exits_2(self, tmp_path, capsys):
        manifest = recorded_manifest(tmp_path)
        code = main(
            ["reproduce", "--manifest", str(manifest.path), "--check", "--scale", "0.1"]
        )
        assert code == 2
        assert "--scale" in capsys.readouterr().err


@pytest.mark.slow
class TestCommittedGoldens:
    """The acceptance path: the committed manifest checks out from a clone."""

    def test_committed_manifest_lists_every_experiment(self):
        from repro.reporting.experiments import ALL_EXPERIMENTS

        manifest = load_manifest(COMMITTED_MANIFEST)
        assert sorted(manifest.identifiers()) == sorted(ALL_EXPERIMENTS)
        assert all(d.expected_digest for d in manifest.deliverables)
        assert all(
            (manifest.expected_dir() / f"{d.identifier}.json").is_file()
            for d in manifest.deliverables
        )

    def test_committed_goldens_are_self_consistent(self):
        """Every committed golden's content matches its recorded digests."""
        manifest = load_manifest(COMMITTED_MANIFEST)
        for deliverable in manifest.deliverables:
            payload = json.loads(
                (manifest.expected_dir() / f"{deliverable.identifier}.json").read_text()
            )
            digest = payload.pop("digest")
            assert digest == payload_digest(payload) == deliverable.expected_digest

    def test_reproduce_check_passes_from_clone(self, tmp_path, capsys):
        code = main(
            [
                "reproduce",
                "--manifest", str(COMMITTED_MANIFEST),
                "--check",
                "--out", str(tmp_path / "results"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "check passed: 15 deliverable(s)" in out
