"""Tests for the named predictor registry."""

from __future__ import annotations

import pytest

from repro.core.blending import BlendedFcmPredictor
from repro.core.fcm import FcmPredictor
from repro.core.hybrid import HybridPredictor
from repro.core.last_value import LastValuePredictor
from repro.core.registry import (
    PAPER_PREDICTORS,
    available_predictors,
    create_predictor,
    register_predictor,
)
from repro.core.stride import TwoDeltaStridePredictor
from repro.errors import PredictorConfigError, UnknownPredictorError


class TestPaperLineUp:
    def test_paper_predictors_all_available(self):
        for name in PAPER_PREDICTORS:
            assert create_predictor(name) is not None

    def test_paper_line_up_matches_methodology(self):
        assert isinstance(create_predictor("l"), LastValuePredictor)
        assert isinstance(create_predictor("s2"), TwoDeltaStridePredictor)
        for order in (1, 2, 3):
            predictor = create_predictor(f"fcm{order}")
            assert isinstance(predictor, BlendedFcmPredictor)
            assert predictor.order == order

    def test_last_value_uses_always_update_policy(self):
        assert create_predictor("l").hysteresis == "always"


class TestDynamicNames:
    def test_high_order_fcm_resolved_dynamically(self):
        predictor = create_predictor("fcm12")
        assert isinstance(predictor, BlendedFcmPredictor)
        assert predictor.order == 12

    def test_single_order_variant(self):
        predictor = create_predictor("fcm4-single")
        assert isinstance(predictor, FcmPredictor)
        assert predictor.order == 4

    def test_small_counter_variant(self):
        predictor = create_predictor("fcm3-small")
        assert isinstance(predictor, BlendedFcmPredictor)
        assert predictor.counter_max == 16

    def test_full_blending_variant(self):
        predictor = create_predictor("fcm2-full")
        assert predictor.update_policy == "full"


class TestHybrids:
    def test_stride_fcm_hybrid(self):
        predictor = create_predictor("hybrid-s2-fcm3")
        assert isinstance(predictor, HybridPredictor)
        assert [c.name for c in predictor.components] == ["s2", "fcm3"]

    def test_type_based_hybrid(self):
        assert isinstance(create_predictor("hybrid-type-s2-fcm3"), HybridPredictor)

    def test_oracle_hybrid(self):
        predictor = create_predictor("hybrid-oracle")
        assert isinstance(predictor, HybridPredictor)
        assert len(predictor.components) == 3


class TestRegistryMechanics:
    def test_unknown_name_raises(self):
        with pytest.raises(UnknownPredictorError):
            create_predictor("does-not-exist")

    def test_instances_are_fresh(self):
        first = create_predictor("l")
        first.observe(0, 1)
        second = create_predictor("l")
        assert second.table_entries() == 0

    def test_available_names_are_sorted_and_include_paper_set(self):
        names = available_predictors()
        assert list(names) == sorted(names)
        for name in PAPER_PREDICTORS:
            assert name in names

    def test_register_custom_predictor(self):
        register_predictor("custom-lv-test", lambda: LastValuePredictor(hysteresis="counter"))
        try:
            assert create_predictor("custom-lv-test").hysteresis == "counter"
        finally:
            # Re-registering without overwrite must fail, with overwrite must pass.
            with pytest.raises(PredictorConfigError):
                register_predictor("custom-lv-test", LastValuePredictor)
            register_predictor("custom-lv-test", LastValuePredictor, overwrite=True)
