"""Tests for the blended FCM predictor (lazy exclusion, the paper's fcm)."""

from __future__ import annotations

import pytest

from repro.core.blending import BlendedFcmPredictor
from repro.core.fcm import FcmPredictor
from repro.errors import PredictorConfigError
from repro.sequences.generators import (
    constant_sequence,
    repeated_non_stride_sequence,
    repeated_stride_sequence,
)


def run(predictor, values, pc=0):
    return [predictor.observe(pc, value) for value in values]


class TestBlendedPrediction:
    def test_constant_sequence_predicted_quickly(self):
        outcomes = run(BlendedFcmPredictor(order=3), constant_sequence(10))
        # Blending falls back to order 0, so prediction starts with the
        # second value rather than waiting for a full order-3 context.
        assert outcomes[1:] == [True] * 9

    def test_repeated_stride_perfect_after_learning(self):
        values = repeated_stride_sequence(24, period=4)
        outcomes = run(BlendedFcmPredictor(order=3), values)
        assert all(outcomes[8:])

    def test_repeated_non_stride_perfect_after_learning(self):
        values = repeated_non_stride_sequence(24, period=5, seed=11)
        outcomes = run(BlendedFcmPredictor(order=3), values)
        assert all(outcomes[11:])

    def test_highest_matching_order_supplies_prediction(self):
        predictor = BlendedFcmPredictor(order=2)
        for value in [1, 2, 3, 1, 2, 3, 1, 2]:
            predictor.observe(0, value)
        assert predictor.matched_order(0) == 2
        assert predictor.predict(0).value == 3

    def test_falls_back_to_lower_order_on_unseen_context(self):
        predictor = BlendedFcmPredictor(order=2)
        for value in [1, 2, 3, 1, 2, 3]:
            predictor.observe(0, value)
        # Present an unseen pair ending in a known single value.
        predictor.observe(0, 9)
        predictor.observe(0, 3)
        # Context (9, 3) was never seen at order 2, but 3 was seen at order 1.
        assert predictor.matched_order(0) < 2
        assert predictor.predict(0).confident

    def test_unknown_pc_gives_no_prediction(self):
        assert not BlendedFcmPredictor(order=3).predict(1234).confident


class TestUpdatePolicies:
    def test_lazy_exclusion_skips_lower_orders_once_matched(self):
        predictor = BlendedFcmPredictor(order=2, update_policy="lazy-exclusion")
        for value in [1, 2, 1, 2, 1, 2, 1, 2]:
            predictor.observe(0, value)
        order0 = predictor.contexts_for(0, 0)
        order2 = predictor.contexts_for(0, 2)
        # The order-2 table keeps accumulating, while the order-0 counts stop
        # growing once higher orders match.
        assert sum(sum(c.values()) for c in order2.values()) >= 1
        assert sum(sum(c.values()) for c in order0.values()) < 8

    def test_full_blending_updates_every_order(self):
        predictor = BlendedFcmPredictor(order=2, update_policy="full")
        for value in [1, 2, 1, 2, 1, 2, 1, 2]:
            predictor.observe(0, value)
        order0_counts = sum(
            sum(counts.values()) for counts in predictor.contexts_for(0, 0).values()
        )
        assert order0_counts == 8

    def test_accuracy_comparable_between_policies_on_repeating_data(self):
        values = repeated_stride_sequence(40, period=4)
        lazy = sum(run(BlendedFcmPredictor(order=3), values))
        full = sum(run(BlendedFcmPredictor(order=3, update_policy="full"), values))
        assert abs(lazy - full) <= 4

    def test_unknown_policy_rejected(self):
        with pytest.raises(PredictorConfigError):
            BlendedFcmPredictor(order=2, update_policy="eager")


class TestAgainstSingleOrderFcm:
    def test_blended_at_least_as_good_on_mixed_sequences(self):
        # A sequence whose repetition period is shorter than the top order:
        # the single order-3 predictor wastes its longer context, blending
        # falls back gracefully.
        values = ([3, 7] * 20)
        blended = sum(run(BlendedFcmPredictor(order=3), values))
        single = sum(run(FcmPredictor(order=3), values))
        assert blended >= single

    def test_order_zero_blend_equals_single_order_zero(self):
        values = [1, 1, 2, 1, 1, 2, 1, 1]
        blended = run(BlendedFcmPredictor(order=0), list(values))
        single = run(FcmPredictor(order=0), list(values))
        assert blended == single


class TestConfiguration:
    def test_negative_order_rejected(self):
        with pytest.raises(PredictorConfigError):
            BlendedFcmPredictor(order=-2)

    def test_invalid_counter_max_rejected(self):
        with pytest.raises(PredictorConfigError):
            BlendedFcmPredictor(order=2, counter_max=0)

    def test_name_encodes_order(self):
        assert BlendedFcmPredictor(order=3).name == "fcm3"

    def test_storage_cells_counts_all_orders(self):
        predictor = BlendedFcmPredictor(order=2)
        for value in [1, 2, 3, 1, 2, 3]:
            predictor.observe(0, value)
        assert predictor.storage_cells() > 0
        assert predictor.table_entries() == 1
