"""Property-based tests (hypothesis) for the predictor invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.blending import BlendedFcmPredictor
from repro.core.fcm import FcmPredictor
from repro.core.last_value import LastValuePredictor
from repro.core.stride import SimpleStridePredictor, TwoDeltaStridePredictor

values_lists = st.lists(st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=60)
small_values_lists = st.lists(st.integers(min_value=-8, max_value=8), min_size=1, max_size=60)


@given(values=values_lists)
@settings(max_examples=60, deadline=None)
def test_last_value_accuracy_equals_immediate_repeat_rate(values):
    """Always-update last value is correct exactly when a value repeats."""
    predictor = LastValuePredictor()
    outcomes = [predictor.observe(0, value) for value in values]
    expected = [False] + [values[i] == values[i - 1] for i in range(1, len(values))]
    assert outcomes == expected


@given(start=st.integers(-1000, 1000), stride=st.integers(-50, 50), length=st.integers(3, 60))
@settings(max_examples=60, deadline=None)
def test_stride_predictors_are_perfect_on_stride_sequences(start, stride, length):
    """Any arithmetic sequence is predicted exactly after two observations."""
    values = [start + i * stride for i in range(length)]
    for predictor in (SimpleStridePredictor(), TwoDeltaStridePredictor()):
        outcomes = [predictor.observe(0, value) for value in values]
        assert all(outcomes[2:])


@given(values=values_lists)
@settings(max_examples=60, deadline=None)
def test_fcm_count_bookkeeping_matches_updates(values):
    """Total counts across all contexts equal the number of recordable updates."""
    order = 2
    predictor = FcmPredictor(order=order)
    for value in values:
        predictor.update(0, value)
    total_counts = sum(
        sum(counts.values()) for counts in predictor.contexts_for(0).values()
    )
    # A (context, value) pair can only be recorded once the history holds
    # `order` values, i.e. for every update after the first `order` ones.
    assert total_counts == max(0, len(values) - order)


@given(values=values_lists)
@settings(max_examples=60, deadline=None)
def test_fcm_history_tracks_last_order_values(values):
    predictor = FcmPredictor(order=3)
    for value in values:
        predictor.update(0, value)
    assert list(predictor.history_for(0)) == values[-3:]


@given(values=small_values_lists)
@settings(max_examples=60, deadline=None)
def test_blended_prediction_always_comes_from_observed_values(values):
    """A blended fcm predictor can only ever predict a value it has seen."""
    predictor = BlendedFcmPredictor(order=3)
    seen: set[int] = set()
    for value in values:
        prediction = predictor.predict(0)
        if prediction.confident:
            assert prediction.value in seen
        predictor.update(0, value)
        seen.add(value)


@given(values=small_values_lists, period=st.integers(2, 6))
@settings(max_examples=40, deadline=None)
def test_blended_fcm_eventually_perfect_on_any_periodic_sequence(values, period):
    """Any strictly periodic sequence is predicted perfectly once learned.

    This is the defining property of context-based prediction the paper
    stresses: *any* repeating sequence — stride or not — becomes predictable.
    The period must not exceed the predictor order for a guarantee without
    ambiguity, so the order is set to the period here.
    """
    base = (values * period)[:period]
    sequence = base * 6
    predictor = BlendedFcmPredictor(order=period)
    outcomes = [predictor.observe(0, value) for value in sequence]
    # After two full periods everything must be correct.
    assert all(outcomes[2 * period :])


@given(values=values_lists)
@settings(max_examples=60, deadline=None)
def test_predictors_keep_one_table_entry_per_pc(values):
    """Unbounded tables: the number of entries equals the distinct PCs seen."""
    predictor = TwoDeltaStridePredictor()
    for index, value in enumerate(values):
        predictor.observe((index % 7) * 4, value)
    assert predictor.table_entries() == min(7, len(values))


@given(values=values_lists)
@settings(max_examples=60, deadline=None)
def test_stats_totals_are_consistent(values):
    predictor = LastValuePredictor()
    correct = sum(predictor.observe(0, value) for value in values)
    assert predictor.stats.lookups == len(values)
    assert predictor.stats.correct == correct
    assert 0.0 <= predictor.stats.accuracy <= 1.0
