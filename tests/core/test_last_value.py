"""Tests for last value prediction and its hysteresis variants."""

from __future__ import annotations

import pytest

from repro.core.last_value import LastValuePredictor
from repro.errors import PredictorConfigError
from repro.sequences.analysis import measure_learning


def run(predictor, values, pc=0):
    return [predictor.observe(pc, value) for value in values]


class TestAlwaysUpdate:
    def test_constant_sequence_is_predicted_after_first_value(self):
        outcomes = run(LastValuePredictor(), [5, 5, 5, 5, 5])
        assert outcomes == [False, True, True, True, True]

    def test_alternating_sequence_is_never_predicted(self):
        outcomes = run(LastValuePredictor(), [1, 2, 1, 2, 1, 2])
        assert not any(outcomes)

    def test_stride_sequence_is_never_predicted(self):
        outcomes = run(LastValuePredictor(), [1, 2, 3, 4, 5])
        assert not any(outcomes)

    def test_prediction_tracks_most_recent_value(self):
        predictor = LastValuePredictor()
        predictor.observe(0, 3)
        predictor.observe(0, 9)
        assert predictor.predict(0).value == 9

    def test_learning_profile_on_constant_matches_table1(self):
        profile = measure_learning(LastValuePredictor(), [5] * 32)
        assert profile.learning_time == 1
        assert profile.learning_degree == pytest.approx(100.0)


class TestCounterHysteresis:
    def test_value_survives_a_single_glitch(self):
        predictor = LastValuePredictor(hysteresis="counter", counter_max=3, counter_threshold=2)
        for _ in range(4):
            predictor.observe(0, 7)
        # One divergent value: the counter drops but stays >= threshold, so
        # the stored prediction remains 7.
        predictor.observe(0, 99)
        assert predictor.predict(0).value == 7

    def test_persistent_new_value_eventually_replaces(self):
        predictor = LastValuePredictor(hysteresis="counter", counter_max=3, counter_threshold=2)
        predictor.observe(0, 7)
        for _ in range(6):
            predictor.observe(0, 99)
        assert predictor.predict(0).value == 99

    def test_storage_counts_counter_cells(self):
        predictor = LastValuePredictor(hysteresis="counter")
        predictor.observe(0, 1)
        predictor.observe(4, 1)
        assert predictor.storage_cells() == 4


class TestConsecutiveHysteresis:
    def test_replacement_requires_consecutive_occurrences(self):
        predictor = LastValuePredictor(hysteresis="consecutive", required_run=2)
        predictor.observe(0, 7)
        predictor.observe(0, 99)   # first occurrence: no replacement yet
        assert predictor.predict(0).value == 7
        predictor.observe(0, 99)   # second consecutive occurrence: replace
        assert predictor.predict(0).value == 99

    def test_interrupted_run_does_not_replace(self):
        predictor = LastValuePredictor(hysteresis="consecutive", required_run=3)
        predictor.observe(0, 7)
        predictor.observe(0, 99)
        predictor.observe(0, 98)
        predictor.observe(0, 99)
        assert predictor.predict(0).value == 7

    def test_seeing_the_stored_value_resets_the_candidate_run(self):
        predictor = LastValuePredictor(hysteresis="consecutive", required_run=2)
        predictor.observe(0, 7)
        predictor.observe(0, 99)
        predictor.observe(0, 7)
        predictor.observe(0, 99)
        assert predictor.predict(0).value == 7


class TestConfiguration:
    def test_unknown_hysteresis_policy_rejected(self):
        with pytest.raises(PredictorConfigError):
            LastValuePredictor(hysteresis="bogus")

    @pytest.mark.parametrize("kwargs", [
        {"counter_max": 0},
        {"counter_threshold": 0},
        {"counter_threshold": 9, "counter_max": 3},
        {"required_run": 0},
    ])
    def test_invalid_numeric_parameters_rejected(self, kwargs):
        with pytest.raises(PredictorConfigError):
            LastValuePredictor(hysteresis="counter" if "counter" in str(kwargs) else "consecutive", **kwargs)

    def test_name_reflects_hysteresis_policy(self):
        assert LastValuePredictor().name == "last-value"
        assert LastValuePredictor(hysteresis="counter").name == "last-value-counter"
