"""Tests for the predictor base interface (Prediction, stats, observe loop)."""

from __future__ import annotations

import pytest

from repro.core.base import NO_PREDICTION, Prediction, PredictorStats
from repro.core.last_value import LastValuePredictor
from repro.isa.opcodes import Category


class TestPrediction:
    def test_confident_when_value_present(self):
        assert Prediction(7).confident

    def test_not_confident_when_value_missing(self):
        assert not Prediction(None).confident

    def test_correctness_requires_exact_match(self):
        assert Prediction(7).is_correct(7)
        assert not Prediction(7).is_correct(8)

    def test_no_prediction_is_never_correct(self):
        assert not NO_PREDICTION.is_correct(0)

    def test_no_prediction_singleton_is_unconfident(self):
        assert NO_PREDICTION.value is None


class TestPredictorStats:
    def test_accuracy_of_empty_stats_is_zero(self):
        assert PredictorStats().accuracy == 0.0

    def test_record_counts_correct_and_incorrect(self):
        stats = PredictorStats()
        assert stats.record(Prediction(5), 5, Category.ADDSUB) is True
        assert stats.record(Prediction(5), 6, Category.ADDSUB) is False
        assert stats.lookups == 2
        assert stats.correct == 1
        assert stats.accuracy == pytest.approx(0.5)

    def test_record_tracks_missing_predictions(self):
        stats = PredictorStats()
        stats.record(NO_PREDICTION, 1, None)
        assert stats.no_prediction == 1
        assert stats.correct == 0

    def test_per_category_accounting(self):
        stats = PredictorStats()
        stats.record(Prediction(1), 1, Category.LOADS)
        stats.record(Prediction(2), 3, Category.LOADS)
        stats.record(Prediction(4), 4, Category.SHIFT)
        assert stats.per_category_lookups[Category.LOADS] == 2
        assert stats.per_category_correct[Category.LOADS] == 1
        assert stats.per_category_correct[Category.SHIFT] == 1


class TestObserveLoop:
    def test_observe_predicts_then_updates(self):
        predictor = LastValuePredictor()
        # First observation: no prediction possible, table becomes populated.
        assert predictor.observe(pc=0, actual=42) is False
        # Second observation of the same value: correct.
        assert predictor.observe(pc=0, actual=42) is True

    def test_observe_updates_stats(self):
        predictor = LastValuePredictor()
        predictor.observe(0, 1)
        predictor.observe(0, 1)
        predictor.observe(0, 2)
        assert predictor.stats.lookups == 3
        assert predictor.stats.correct == 1
        assert predictor.stats.updates == 3

    def test_reset_clears_tables_and_stats(self):
        predictor = LastValuePredictor()
        predictor.observe(0, 1)
        predictor.observe(0, 1)
        predictor.reset()
        assert predictor.table_entries() == 0
        assert predictor.stats.lookups == 0
        assert predictor.observe(0, 1) is False

    def test_distinct_pcs_use_distinct_entries(self):
        predictor = LastValuePredictor()
        predictor.observe(0, 10)
        predictor.observe(4, 20)
        assert predictor.predict(0).value == 10
        assert predictor.predict(4).value == 20
        assert predictor.table_entries() == 2
