"""Tests for the single fixed-order finite context method predictor."""

from __future__ import annotations

import pytest

from repro.core.fcm import FcmPredictor, select_maximum_count
from repro.errors import PredictorConfigError
from repro.sequences.generators import (
    repeated_non_stride_sequence,
    repeated_stride_sequence,
)


def run(predictor, values, pc=0):
    return [predictor.observe(pc, value) for value in values]


class TestSelectMaximumCount:
    def test_picks_largest_count(self):
        assert select_maximum_count({1: 3, 2: 9, 3: 1}, recent_value=None) == 2

    def test_tie_broken_towards_recent_value(self):
        assert select_maximum_count({1: 4, 2: 4}, recent_value=2) == 2

    def test_tie_without_recency_hint_returns_some_candidate(self):
        assert select_maximum_count({1: 4, 2: 4}, recent_value=None) in (1, 2)


class TestOrderKBehaviour:
    def test_order0_predicts_most_frequent_value(self):
        predictor = FcmPredictor(order=0)
        for value in [5, 5, 5, 9]:
            predictor.observe(0, value)
        assert predictor.predict(0).value == 5

    def test_paper_figure1_counts_order1(self):
        # Sequence from Figure 1: a a a b c a a a b c a a a  (a=1, b=2, c=3).
        values = [1, 1, 1, 2, 3, 1, 1, 1, 2, 3, 1, 1, 1]
        predictor = FcmPredictor(order=1)
        for value in values:
            predictor.update(0, value)
        contexts = predictor.contexts_for(0)
        assert contexts[(1,)] == {1: 6, 2: 2}
        assert contexts[(2,)] == {3: 2}
        assert contexts[(3,)] == {1: 2}
        assert predictor.predict(0).value == 1

    def test_paper_figure1_prediction_order3(self):
        # The order-3 model is the one that correctly predicts 'b' next.
        values = [1, 1, 1, 2, 3, 1, 1, 1, 2, 3, 1, 1, 1]
        predictor = FcmPredictor(order=3)
        for value in values:
            predictor.update(0, value)
        assert predictor.predict(0).value == 2

    def test_repeated_stride_learned_after_one_period(self):
        values = repeated_stride_sequence(20, period=4)
        outcomes = run(FcmPredictor(order=2), values)
        # Learning takes roughly period + order values; afterwards the
        # predictions are perfect (Table 1 / Figure 2 behaviour).
        assert all(outcomes[8:])

    def test_repeated_non_stride_learned(self):
        values = repeated_non_stride_sequence(24, period=4, seed=3)
        outcomes = run(FcmPredictor(order=2), values)
        assert all(outcomes[8:])

    def test_non_repeating_stride_not_predicted(self):
        outcomes = run(FcmPredictor(order=2), list(range(0, 40, 3)))
        assert not any(outcomes)

    def test_no_prediction_before_context_fills(self):
        predictor = FcmPredictor(order=3)
        predictor.observe(0, 1)
        predictor.observe(0, 2)
        assert not predictor.predict(0).confident


class TestSmallCounters:
    def test_counts_are_halved_at_saturation(self):
        predictor = FcmPredictor(order=1, counter_max=4)
        for _ in range(6):
            predictor.observe(0, 5)
        counts = predictor.contexts_for(0)[(5,)]
        assert max(counts.values()) < 6

    def test_small_counters_favour_recent_behaviour(self):
        # After a long run of value A followed by a run of value B, the small
        # counter variant switches its prediction to B sooner than exact counts.
        def run_with(counter_max):
            predictor = FcmPredictor(order=0, counter_max=counter_max)
            for value in [1] * 40 + [2] * 12:
                predictor.observe(0, value)
            return predictor.predict(0).value

        assert run_with(None) == 1
        assert run_with(4) == 2

    def test_invalid_counter_max_rejected(self):
        with pytest.raises(PredictorConfigError):
            FcmPredictor(order=1, counter_max=1)


class TestIntrospectionAndConfig:
    def test_negative_order_rejected(self):
        with pytest.raises(PredictorConfigError):
            FcmPredictor(order=-1)

    def test_history_is_bounded_by_order(self):
        predictor = FcmPredictor(order=2)
        for value in range(10):
            predictor.observe(0, value)
        assert predictor.history_for(0) == (8, 9)

    def test_contexts_and_history_empty_for_unknown_pc(self):
        predictor = FcmPredictor(order=2)
        assert predictor.contexts_for(123) == {}
        assert predictor.history_for(123) == ()

    def test_storage_cells_grow_with_learning(self):
        predictor = FcmPredictor(order=1)
        before = predictor.storage_cells()
        for value in [1, 2, 3, 1, 2, 3]:
            predictor.observe(0, value)
        assert predictor.storage_cells() > before
