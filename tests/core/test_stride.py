"""Tests for the stride predictor family (simple, counter, two-delta)."""

from __future__ import annotations

import pytest

from repro.core.stride import (
    CounterStridePredictor,
    SimpleStridePredictor,
    TwoDeltaStridePredictor,
)
from repro.errors import PredictorConfigError
from repro.sequences.generators import repeated_stride_sequence, stride_sequence
from repro.sequences.analysis import measure_learning


def run(predictor, values, pc=0):
    return [predictor.observe(pc, value) for value in values]


class TestSimpleStride:
    def test_stride_sequence_learned_after_two_values(self):
        outcomes = run(SimpleStridePredictor(), stride_sequence(10, start=3, stride=4))
        assert outcomes == [False, False] + [True] * 8

    def test_negative_stride_supported(self):
        outcomes = run(SimpleStridePredictor(), stride_sequence(8, start=0, stride=-5))
        assert outcomes[2:] == [True] * 6

    def test_constant_sequence_behaves_like_last_value(self):
        outcomes = run(SimpleStridePredictor(), [7] * 6)
        assert outcomes == [False, True, True, True, True, True]

    def test_repeated_stride_mispredicts_twice_per_period(self):
        # The always-update stride predictor takes two mispredictions at each
        # wrap of a repeated stride sequence (the paper's motivation for
        # hysteresis / two-delta).
        values = repeated_stride_sequence(12, period=4)
        outcomes = run(SimpleStridePredictor(), values)
        # Steady-state periods (after the first) have exactly 2 mispredictions.
        second_period, third_period = outcomes[4:8], outcomes[8:12]
        assert second_period.count(False) == 2
        assert third_period.count(False) == 2


class TestTwoDeltaStride:
    def test_stride_sequence_learned_after_two_values(self):
        profile = measure_learning(TwoDeltaStridePredictor(), stride_sequence(32))
        assert profile.learning_time == 2
        assert profile.learning_degree == pytest.approx(100.0)

    def test_repeated_stride_mispredicts_once_per_period(self):
        values = repeated_stride_sequence(16, period=4)
        outcomes = run(TwoDeltaStridePredictor(), values)
        # After the first full period, each period has exactly one miss (at
        # the wrap) — the improvement over the always-update policy.
        for start in (8, 12):
            assert outcomes[start : start + 4].count(False) == 1

    def test_stride_not_perturbed_by_isolated_glitch(self):
        predictor = TwoDeltaStridePredictor()
        values = [1, 2, 3, 4, 100, 5, 6, 7, 8]
        run(predictor, values)
        # After the glitch the +1 stride was re-observed twice (6->7->8), and
        # predictions resume from the last value.
        assert predictor.predict(0).value == 9

    def test_prediction_uses_s2_not_transient_stride(self):
        predictor = TwoDeltaStridePredictor()
        for value in [10, 20, 30]:
            predictor.observe(0, value)
        # stride s2 = 10 (seen twice); a single different delta must not
        # change the prediction stride.
        predictor.observe(0, 31)
        assert predictor.predict(0).value == 41

    def test_single_value_falls_back_to_last_value(self):
        predictor = TwoDeltaStridePredictor()
        predictor.observe(0, 9)
        assert predictor.predict(0).value == 9


class TestCounterStride:
    def test_stride_sequence_learned(self):
        outcomes = run(CounterStridePredictor(), stride_sequence(10))
        assert outcomes[3:] == [True] * 7

    def test_repeated_stride_better_than_simple(self):
        values = repeated_stride_sequence(40, period=5)
        simple = sum(run(SimpleStridePredictor(), values))
        gated = sum(run(CounterStridePredictor(), values))
        assert gated >= simple

    def test_invalid_configuration_rejected(self):
        with pytest.raises(PredictorConfigError):
            CounterStridePredictor(counter_max=0)
        with pytest.raises(PredictorConfigError):
            CounterStridePredictor(counter_max=2, threshold=5)


class TestStorageAccounting:
    def test_two_delta_reports_three_cells_per_entry(self):
        predictor = TwoDeltaStridePredictor()
        predictor.observe(0, 1)
        predictor.observe(8, 1)
        assert predictor.table_entries() == 2
        assert predictor.storage_cells() == 6

    def test_simple_stride_reports_two_cells_per_entry(self):
        predictor = SimpleStridePredictor()
        predictor.observe(0, 1)
        assert predictor.storage_cells() == 2
