"""Tests for hybrid predictors and chooser policies."""

from __future__ import annotations

import pytest

from repro.core.blending import BlendedFcmPredictor
from repro.core.hybrid import (
    CategoryChooser,
    HybridPredictor,
    OracleChooser,
    PcChooser,
)
from repro.core.last_value import LastValuePredictor
from repro.core.stride import TwoDeltaStridePredictor
from repro.errors import PredictorConfigError
from repro.isa.opcodes import Category
from repro.sequences.generators import repeated_non_stride_sequence, stride_sequence


def run(predictor, values, pc=0, category=None):
    return [predictor.observe(pc, value, category) for value in values]


def make_stride_fcm_hybrid(chooser=None):
    components = [TwoDeltaStridePredictor(), BlendedFcmPredictor(order=3)]
    return HybridPredictor(components, chooser or PcChooser(num_components=2))


class TestPcChooser:
    def test_hybrid_learns_to_follow_the_better_component(self):
        hybrid = make_stride_fcm_hybrid()
        # A pure stride sequence: the stride component should dominate.
        outcomes = run(hybrid, stride_sequence(40))
        assert sum(outcomes) >= 35
        breakdown = hybrid.selection_breakdown()
        assert breakdown["s2"] > breakdown["fcm3"]

    def test_hybrid_tracks_fcm_on_repeated_non_stride(self):
        hybrid = make_stride_fcm_hybrid()
        values = repeated_non_stride_sequence(60, period=5, seed=2)
        outcomes = run(hybrid, values)
        # After learning, predictions should follow the fcm component.
        assert sum(outcomes[20:]) >= 35

    def test_per_pc_choice_is_independent(self):
        hybrid = make_stride_fcm_hybrid()
        stride_values = stride_sequence(30)
        rns_values = repeated_non_stride_sequence(30, period=4, seed=5)
        for s_value, r_value in zip(stride_values, rns_values):
            hybrid.observe(0, s_value)
            hybrid.observe(4, r_value)
        assert hybrid.predict(0).confident
        assert hybrid.predict(4).confident

    def test_chooser_configuration_validated(self):
        with pytest.raises(PredictorConfigError):
            PcChooser(num_components=1)
        with pytest.raises(PredictorConfigError):
            PcChooser(num_components=2, score_max=0)


class TestCategoryChooser:
    def test_routing_by_category(self):
        last_value = LastValuePredictor()
        stride = TwoDeltaStridePredictor()
        chooser = CategoryChooser({Category.ADDSUB: 1, Category.LOADS: 0})
        hybrid = HybridPredictor([last_value, stride], chooser)
        # Train both components on a stride sequence at the same PC.
        for value in stride_sequence(10):
            hybrid.observe(0, value, Category.ADDSUB)
        # AddSub routes to the stride component, which predicts the next value;
        # Loads routes to last value, which repeats the previous one.
        assert hybrid.predict(0, Category.ADDSUB).value == 11
        assert hybrid.predict(0, Category.LOADS).value == 10

    def test_unknown_category_uses_default(self):
        chooser = CategoryChooser({Category.ADDSUB: 1}, default=0)
        hybrid = HybridPredictor([LastValuePredictor(), TwoDeltaStridePredictor()], chooser)
        for value in stride_sequence(6):
            hybrid.observe(0, value, Category.SHIFT)
        assert hybrid.predict(0, Category.SHIFT).value == 6  # last value component


class TestOracleChooser:
    def test_oracle_correct_if_any_component_correct(self):
        hybrid = HybridPredictor(
            [LastValuePredictor(), TwoDeltaStridePredictor()], OracleChooser()
        )
        outcomes = run(hybrid, stride_sequence(20))
        # The stride component is perfect after two values, so the oracle is too.
        assert outcomes[2:] == [True] * 18

    def test_oracle_upper_bounds_each_component(self):
        values = repeated_non_stride_sequence(40, period=4, seed=9)
        last_value = LastValuePredictor()
        stride = TwoDeltaStridePredictor()
        oracle = HybridPredictor(
            [LastValuePredictor(), TwoDeltaStridePredictor()], OracleChooser()
        )
        lv_correct = sum(run(last_value, list(values)))
        stride_correct = sum(run(stride, list(values)))
        oracle_correct = sum(run(oracle, list(values)))
        assert oracle_correct >= max(lv_correct, stride_correct)


class TestHybridStructure:
    def test_requires_at_least_two_components(self):
        with pytest.raises(PredictorConfigError):
            HybridPredictor([LastValuePredictor()], PcChooser(num_components=2))

    def test_update_trains_all_components(self):
        hybrid = make_stride_fcm_hybrid()
        for value in stride_sequence(6):
            hybrid.update(0, value)
        for component in hybrid.components:
            assert component.predictor.table_entries() == 1

    def test_reset_clears_components_and_chooser(self):
        hybrid = make_stride_fcm_hybrid()
        run(hybrid, stride_sequence(10))
        hybrid.reset()
        assert hybrid.table_entries() == 0
        assert hybrid.selection_breakdown() == {"s2": 0, "fcm3": 0}

    def test_storage_is_sum_of_components(self):
        hybrid = make_stride_fcm_hybrid()
        run(hybrid, stride_sequence(10))
        expected = sum(c.predictor.storage_cells() for c in hybrid.components)
        assert hybrid.storage_cells() == expected

    def test_default_name_lists_components(self):
        hybrid = make_stride_fcm_hybrid()
        assert "s2" in hybrid.name and "fcm3" in hybrid.name
