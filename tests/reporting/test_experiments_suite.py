"""Tests for the suite-wide experiments (Tables 2/4-7, Figures 3-11).

These run at the quick scale; the cached campaign keeps the cost of the whole
module to a single suite simulation.
"""

from __future__ import annotations

import pytest

from repro.reporting.experiments import (
    figure3,
    figure4_7,
    figure8,
    figure9,
    figure10,
    figure11,
    table2,
    table4,
    table5,
    table6,
    table7,
)
from repro.simulation.campaign import QUICK_SCALE
from repro.workloads.suite import BENCHMARK_ORDER

SCALE = QUICK_SCALE


class TestTable2:
    def test_covers_every_benchmark(self, quick_campaign):
        artifact = table2(scale=SCALE)
        assert set(artifact.data) == set(BENCHMARK_ORDER)

    def test_predicted_fraction_in_range(self, quick_campaign):
        artifact = table2(scale=SCALE)
        for benchmark, row in artifact.data.items():
            assert 0.5 <= row["fraction_predicted"] <= 0.95
            assert row["predicted_instructions"] <= row["dynamic_instructions"]


class TestTables4And5:
    def test_static_counts_positive_for_major_categories(self, quick_campaign):
        artifact = table4(scale=SCALE)
        for category in ("AddSub", "Loads", "Shift", "Set"):
            for benchmark in BENCHMARK_ORDER:
                assert artifact.data[category][benchmark] > 0

    def test_dynamic_percentages_sum_to_about_100(self, quick_campaign):
        artifact = table5(scale=SCALE)
        for benchmark in BENCHMARK_ORDER:
            total = sum(artifact.data[category][benchmark] for category in artifact.data)
            assert total == pytest.approx(100.0, abs=0.5)


class TestFigure3(object):
    def test_series_cover_all_predictors_and_benchmarks(self, quick_campaign):
        figure = figure3(scale=SCALE).data
        assert figure.x_values == list(BENCHMARK_ORDER)
        assert set(figure.series) == {"l", "s2", "fcm1", "fcm2", "fcm3"}

    def test_paper_ordering_holds_on_average(self, quick_campaign):
        figure = figure3(scale=SCALE).data
        means = {name: sum(values) / len(values) for name, values in figure.series.items()}
        assert means["l"] < means["s2"] < means["fcm3"]
        assert means["fcm1"] <= means["fcm2"] + 1.0
        assert means["fcm2"] <= means["fcm3"] + 1.0


class TestFigures4To7:
    def test_one_figure_per_category(self, quick_campaign):
        figures = figure4_7(scale=SCALE).data
        assert set(figures) == {"figure4", "figure5", "figure6", "figure7"}
        for figure in figures.values():
            assert figure.x_values == list(BENCHMARK_ORDER)


class TestFigure8:
    def test_subset_fractions_sum_to_100(self, quick_campaign):
        breakdown = figure8(scale=SCALE).data["average"]
        assert sum(breakdown.overall.values()) == pytest.approx(100.0)

    def test_paper_qualitative_structure(self, quick_campaign):
        breakdown = figure8(scale=SCALE).data["average"]
        # The all-three subset and the fcm-only subset are the two big
        # contributors; last-value-only is tiny.
        assert breakdown.fraction_all_three() > 10.0
        assert breakdown.fraction_only_fcm() > 5.0
        assert breakdown.overall["l"] < 5.0


class TestFigure9:
    def test_improvement_is_concentrated(self, quick_campaign):
        curves = figure9(scale=SCALE).data
        all_curve = curves["All"]
        assert all_curve.total_improvement > 0
        # A minority of improving static instructions accounts for the bulk
        # of the improvement (the paper's ~20% -> ~97% observation).
        assert all_curve.improvement_at(30) > 55.0


class TestFigure10:
    def test_profiles_cover_static_and_dynamic_views(self, quick_campaign):
        figure = figure10(scale=SCALE)
        profile = figure.data["average"]
        assert sum(profile.static_percent["All"].values()) == pytest.approx(100.0)
        # Most static instructions generate few values.
        assert profile.static_fraction_up_to(64) > 60.0


class TestSensitivityArtifacts:
    def test_table6_variation_is_small(self):
        points = table6(scale=0.05).data
        accuracies = [point.accuracy for point in points]
        assert max(accuracies) - min(accuracies) < 20.0

    def test_table7_covers_flag_settings(self):
        points = table7(scale=0.05).data
        assert [point.setting for point in points] == ["ref", "none", "-O1", "-O2"]

    def test_figure11_orders_and_diminishing_returns(self):
        artifact = figure11(scale=0.05, max_order=4)
        accuracies = artifact.data
        assert set(accuracies) == {1, 2, 3, 4}
        assert accuracies[4] >= accuracies[1] - 1.0
