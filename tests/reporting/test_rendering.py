"""Tests for plain-text table and figure-series rendering."""

from __future__ import annotations

import pytest

from repro.reporting.figures import FigureSeries
from repro.reporting.tables import format_table


class TestFormatTable:
    def test_contains_headers_rows_and_title(self):
        text = format_table(["name", "value"], [["alpha", 1], ["beta", 2]], title="Demo")
        assert "Demo" in text
        assert "name" in text and "value" in text
        assert "alpha" in text and "beta" in text

    def test_floats_rendered_with_one_decimal(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.1" in text and "3.14" not in text

    def test_none_rendered_as_dash(self):
        text = format_table(["x"], [[None]])
        assert "| -" in text

    def test_columns_are_aligned(self):
        text = format_table(["a", "bbbb"], [["xxxxxx", 1]])
        lines = [line for line in text.splitlines() if line.startswith("|")]
        assert len({len(line) for line in lines}) == 1


class TestFigureSeries:
    def test_add_series_and_lookup(self):
        figure = FigureSeries("Fig", "x", "y", x_values=["a", "b"])
        figure.add_series("s1", [1.0, 2.0])
        assert figure.value("s1", "b") == 2.0

    def test_length_mismatch_rejected(self):
        figure = FigureSeries("Fig", "x", "y", x_values=["a", "b"])
        with pytest.raises(ValueError):
            figure.add_series("bad", [1.0])

    def test_render_contains_all_labels(self):
        figure = FigureSeries("Fig 3", "benchmark", "accuracy", x_values=["compress", "gcc"])
        figure.add_series("l", [40.0, 30.0])
        figure.add_series("s2", [55.0, 50.0])
        text = figure.render()
        assert "Fig 3" in text
        assert "compress" in text and "gcc" in text
        assert "l" in text and "s2" in text
