"""Tests for the micro experiments (Table 1, Table 3, Figures 1 and 2).

These do not need the workload substrate, so they check the paper's numbers
exactly where the paper gives them.
"""

from __future__ import annotations

import pytest

from repro.errors import ReportingError
from repro.reporting.experiments import (
    ALL_EXPERIMENTS,
    figure1,
    figure2,
    run_experiment,
    table1,
    table3,
)
from repro.sequences.generators import SequenceClass


class TestTable1:
    def test_artifact_structure(self):
        artifact = table1()
        assert artifact.identifier == "table1"
        assert set(artifact.data) == set(SequenceClass)
        assert "Table 1" in artifact.text

    def test_key_paper_entries(self):
        data = table1(length=64, period=4).data
        assert data[SequenceClass.CONSTANT]["l"].learning_degree == pytest.approx(100.0)
        assert data[SequenceClass.STRIDE]["s2"].learning_degree == pytest.approx(100.0)
        assert data[SequenceClass.REPEATED_NON_STRIDE]["fcm3"].learning_degree == pytest.approx(100.0)
        assert data[SequenceClass.NON_STRIDE]["fcm3"].correct == 0


class TestFigure1:
    def test_reproduces_paper_counts_and_predictions(self):
        models = figure1().data
        # 0th order: a has been seen 9 times, b and c twice each -> predict a.
        assert models[0]["contexts"][""] == {"a": 9, "b": 2, "c": 2}
        assert models[0]["prediction"] == "a"
        # 1st order: after 'a' the next symbol was 'a' six times, 'b' twice.
        assert models[1]["contexts"]["a"] == {"a": 6, "b": 2}
        assert models[1]["prediction"] == "a"
        # 2nd order: after "aa", 'a' followed three times and 'b' twice.
        assert models[2]["contexts"]["aa"] == {"a": 3, "b": 2}
        assert models[2]["prediction"] == "a"
        # 3rd order: after "aaa" only 'b' has ever followed -> predict b.
        assert models[3]["contexts"]["aaa"] == {"b": 2}
        assert models[3]["prediction"] == "b"

    def test_render_mentions_orders(self):
        assert "Order" in figure1().text


class TestFigure2:
    def test_stride_repeats_same_mistake_and_fcm_learns_perfectly(self):
        data = figure2(period=4, repetitions=3).data
        stride_profile = data["stride"]["profile"]
        fcm_profile = data["fcm2"]["profile"]
        # Stride learns after two values but keeps missing the wrap.
        assert stride_profile.learning_time == 2
        assert stride_profile.learning_degree < 100.0
        # FCM takes roughly period + order values, then never misses.
        assert fcm_profile.learning_time > stride_profile.learning_time
        assert fcm_profile.learning_degree == pytest.approx(100.0)

    def test_outcome_rows_cover_every_step(self):
        data = figure2().data
        assert len(data["stride"]["outcomes"]) == len(data["sequence"])


class TestTable3:
    def test_lists_all_predicted_categories(self):
        artifact = table3()
        rendered = artifact.text
        for category in ("AddSub", "Loads", "Logic", "Shift", "Set", "MultDiv", "Lui", "Other"):
            assert category in rendered
        assert "Store" not in rendered


class TestRunner:
    def test_all_experiments_registered(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6", "table7",
            "figure1", "figure2", "figure3", "figure4_7", "figure8", "figure9",
            "figure10", "figure11",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_run_experiment_dispatches(self):
        artifact = run_experiment("table1")
        assert artifact.identifier == "table1"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReportingError):
            run_experiment("table99")
