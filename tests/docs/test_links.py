"""Every relative link in the documentation resolves.

Scans README.md, ARTIFACTS.md and docs/**/*.md for Markdown links and
reference-style definitions, and asserts each relative target exists on
disk (anchors and external URLs are out of scope).  CI runs this as the
docs link-checker step, so a renamed file with a stale link fails fast.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Inline links ``[text](target)`` — target captured up to the closing paren.
_INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference definitions ``[label]: target``.
_REFERENCE_LINK = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
#: Schemes that point outside the repository.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _documentation_files() -> list[Path]:
    files = [REPO_ROOT / "README.md", REPO_ROOT / "ARTIFACTS.md"]
    files.extend(sorted((REPO_ROOT / "docs").rglob("*.md")))
    return [path for path in files if path.is_file()]


def _relative_targets(text: str) -> list[str]:
    targets = _INLINE_LINK.findall(text) + _REFERENCE_LINK.findall(text)
    relative = []
    for target in targets:
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if path_part:
            relative.append(path_part)
    return relative


def test_documentation_set_is_nonempty():
    files = _documentation_files()
    assert REPO_ROOT / "README.md" in files
    assert REPO_ROOT / "ARTIFACTS.md" in files
    assert any(path.parent.name == "docs" for path in files)


@pytest.mark.parametrize("doc", _documentation_files(), ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(doc: Path):
    broken = []
    for target in _relative_targets(doc.read_text(encoding="utf-8")):
        resolved = (doc.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.relative_to(REPO_ROOT)} has broken relative link(s): {broken}"
