"""Tests for the learning time / learning degree analysis (Table 1)."""

from __future__ import annotations

import pytest

from repro.core.registry import create_predictor
from repro.sequences.analysis import (
    measure_learning,
    prediction_outcomes,
    predictor_behaviour_table,
)
from repro.sequences.generators import SequenceClass, repeated_stride_sequence


class TestMeasureLearning:
    def test_never_correct_gives_none_profile(self):
        profile = measure_learning(create_predictor("l"), [1, 2, 3, 4, 5])
        assert profile.learning_time is None
        assert profile.learning_degree is None
        assert profile.correct == 0

    def test_constant_profile(self):
        profile = measure_learning(create_predictor("l"), [5] * 20)
        assert profile.learning_time == 1
        assert profile.learning_degree == pytest.approx(100.0)
        assert profile.accuracy == pytest.approx(100.0 * 19 / 20)

    def test_learning_degree_excludes_first_correct_prediction(self):
        # Correct only on the final element -> no post-learning window.
        profile = measure_learning(create_predictor("l"), [1, 2, 3, 3])
        assert profile.learning_time == 3
        assert profile.learning_degree is None


class TestTable1Structure:
    def test_table_has_all_sequence_classes_and_predictors(self):
        table = predictor_behaviour_table(length=32)
        assert set(table) == set(SequenceClass)
        for row in table.values():
            assert set(row) == {"l", "s2", "fcm3"}

    def test_paper_qualitative_claims(self):
        table = predictor_behaviour_table(length=64, period=4)
        constant = table[SequenceClass.CONSTANT]
        stride = table[SequenceClass.STRIDE]
        rs = table[SequenceClass.REPEATED_STRIDE]
        rns = table[SequenceClass.REPEATED_NON_STRIDE]
        ns = table[SequenceClass.NON_STRIDE]

        # Constant: everything works, last value learns after one value.
        assert constant["l"].learning_degree == pytest.approx(100.0)
        assert constant["s2"].learning_degree == pytest.approx(100.0)
        assert constant["fcm3"].learning_degree == pytest.approx(100.0)
        assert constant["l"].learning_time == 1

        # Stride: only the stride predictor achieves 100% after learning.
        assert stride["s2"].learning_time == 2
        assert stride["s2"].learning_degree == pytest.approx(100.0)
        assert stride["l"].learning_time is None
        assert stride["fcm3"].learning_time is None

        # Repeated stride: stride learns faster, fcm learns better.
        assert rs["s2"].learning_time < rs["fcm3"].learning_time
        assert rs["fcm3"].learning_degree == pytest.approx(100.0)
        assert rs["s2"].learning_degree < 100.0

        # Repeated non-stride: only fcm reaches 100%.
        assert rns["fcm3"].learning_degree == pytest.approx(100.0)

        # Non-stride: nothing works.
        assert ns["l"].correct == 0
        assert ns["s2"].correct == 0
        assert ns["fcm3"].correct == 0


class TestPredictionOutcomes:
    def test_figure2_shape(self):
        values = repeated_stride_sequence(12, period=4)
        stride_outcomes = prediction_outcomes(create_predictor("s2"), values)
        fcm_outcomes = prediction_outcomes(create_predictor("fcm2"), values)
        assert len(stride_outcomes) == len(values)
        # The stride predictor repeats the same mistake at each wrap; the fcm
        # predictor is flawless once it has seen a full period plus its order.
        assert stride_outcomes[8][1] is False
        assert all(ok for _, ok in fcm_outcomes[6:])
