"""Tests for the sequence classifier."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sequences.classify import classify_sequence
from repro.sequences.generators import (
    SequenceClass,
    constant_sequence,
    non_stride_sequence,
    repeated_non_stride_sequence,
    repeated_stride_sequence,
    stride_sequence,
)


class TestClassification:
    def test_constant(self):
        assert classify_sequence(constant_sequence(12)) is SequenceClass.CONSTANT

    def test_stride(self):
        assert classify_sequence(stride_sequence(12, stride=3)) is SequenceClass.STRIDE

    def test_non_stride(self):
        assert classify_sequence(non_stride_sequence(40, seed=4)) is SequenceClass.NON_STRIDE

    def test_repeated_stride(self):
        values = repeated_stride_sequence(24, period=4)
        assert classify_sequence(values) is SequenceClass.REPEATED_STRIDE

    def test_repeated_non_stride(self):
        values = repeated_non_stride_sequence(32, period=4, seed=19)
        assert classify_sequence(values) is SequenceClass.REPEATED_NON_STRIDE

    def test_paper_examples(self):
        assert classify_sequence([5, 5, 5, 5, 5, 5, 5]) is SequenceClass.CONSTANT
        assert classify_sequence([1, 2, 3, 4, 5, 6, 7, 8]) is SequenceClass.STRIDE
        assert classify_sequence([28, -13, -99, 107, 23, 456]) is SequenceClass.NON_STRIDE
        assert (
            classify_sequence([1, 2, 3, 1, 2, 3, 1, 2, 3]) is SequenceClass.REPEATED_STRIDE
        )
        assert (
            classify_sequence([1, -13, -99, 7, 1, -13, -99, 7, 1, -13, -99, 7])
            is SequenceClass.REPEATED_NON_STRIDE
        )

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            classify_sequence([])


class TestClassifierGeneratorRoundTrip:
    @given(
        sequence_class=st.sampled_from(
            [SequenceClass.CONSTANT, SequenceClass.STRIDE, SequenceClass.NON_STRIDE]
        ),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_non_repeating_classes_round_trip(self, sequence_class, seed):
        from repro.sequences.generators import generate_sequence

        values = generate_sequence(sequence_class, length=48, seed=seed)
        assert classify_sequence(values) is sequence_class
