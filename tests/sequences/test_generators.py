"""Tests for the value-sequence generators of Section 1.1."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.sequences.generators import (
    SequenceClass,
    constant_sequence,
    generate_sequence,
    non_stride_sequence,
    repeated_non_stride_sequence,
    repeated_stride_sequence,
    stride_sequence,
)


class TestConstantAndStride:
    def test_constant_sequence_repeats_one_value(self):
        assert constant_sequence(5, value=9) == [9, 9, 9, 9, 9]

    def test_stride_sequence_has_constant_difference(self):
        values = stride_sequence(6, start=2, stride=3)
        assert values == [2, 5, 8, 11, 14, 17]

    def test_zero_stride_degenerates_to_constant(self):
        assert stride_sequence(4, start=7, stride=0) == [7, 7, 7, 7]

    def test_negative_stride(self):
        assert stride_sequence(4, start=0, stride=-2) == [0, -2, -4, -6]

    def test_length_must_be_positive(self):
        with pytest.raises(ReproError):
            constant_sequence(0)
        with pytest.raises(ReproError):
            stride_sequence(-3)


class TestNonStride:
    def test_no_three_term_arithmetic_run(self):
        values = non_stride_sequence(200, seed=13)
        for i in range(2, len(values)):
            assert values[i] - values[i - 1] != values[i - 1] - values[i - 2]

    def test_deterministic_for_a_seed(self):
        assert non_stride_sequence(20, seed=5) == non_stride_sequence(20, seed=5)

    def test_different_seeds_differ(self):
        assert non_stride_sequence(20, seed=5) != non_stride_sequence(20, seed=6)

    def test_bounds_validated(self):
        with pytest.raises(ReproError):
            non_stride_sequence(5, low=10, high=10)


class TestRepeatedSequences:
    def test_repeated_stride_wraps_with_period(self):
        values = repeated_stride_sequence(10, period=4)
        assert values == [1, 2, 3, 4, 1, 2, 3, 4, 1, 2]

    def test_repeated_non_stride_wraps_with_period(self):
        values = repeated_non_stride_sequence(12, period=3, seed=2)
        assert values[:3] == values[3:6] == values[6:9]

    def test_period_validation(self):
        with pytest.raises(ReproError):
            repeated_stride_sequence(8, period=1)
        with pytest.raises(ReproError):
            repeated_non_stride_sequence(8, period=0)


class TestGenerateSequenceDispatch:
    @pytest.mark.parametrize("sequence_class", list(SequenceClass))
    def test_every_class_generates_requested_length(self, sequence_class):
        assert len(generate_sequence(sequence_class, length=17)) == 17

    @given(length=st.integers(1, 100), period=st.integers(2, 10))
    @settings(max_examples=30, deadline=None)
    def test_repeated_stride_is_truly_periodic(self, length, period):
        values = generate_sequence(SequenceClass.REPEATED_STRIDE, length, period=period)
        for i in range(len(values)):
            assert values[i] == values[i % period]
