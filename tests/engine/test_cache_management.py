"""Tests for binary cache entries and the cache-management layer."""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import ExecutionEngine
from repro.engine.cache import ResultCache
from repro.engine.sweeps import SweepSpec
from repro.engine.tasks import TraceTask
from repro.engine.codecs import (
    decode_cache_entry,
    encode_cache_entry,
    payload_trace,
    payload_trace_digest,
    payload_trace_text,
)
from repro.trace.io import dumps_trace
from repro.trace.synthetic import trace_from_values

SCALE = 0.05
BENCHMARKS = ("compress",)
PREDICTORS = ("l", "s2")


def _age(path, seconds):
    """Backdate an entry's mtime, as if it had been idle for ``seconds``."""
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


class TestCacheEntryEnvelope:
    def test_round_trip_plain_payload(self):
        key = {"kind": "simulate", "trace": "abc", "predictor": "l"}
        payload = {"shard": {"correctness": "ff00", "record_count": 16}}
        for compress in (False, True):
            blob = encode_cache_entry(key, payload, compress=compress)
            restored_key, restored_payload = decode_cache_entry(blob)
            assert restored_key == key
            assert restored_payload == payload

    def test_round_trip_trace_payload_is_bit_identical(self):
        import hashlib

        trace = trace_from_values([3, 1, 4, 1, 5] * 20, name="envelope test")
        trace.set_total_dynamic_instructions(250)
        text = dumps_trace(trace)
        payload = {"trace_text": text, "statistics": {"predicted": 100}}
        _, restored = decode_cache_entry(encode_cache_entry({"kind": "trace"}, payload))
        # The trace comes back in binary form; the accessors restore the
        # canonical text (and its digest) bit-identically.
        assert "trace_text" not in restored and "trace_binary" in restored
        assert payload_trace_text(restored) == text
        assert dumps_trace(payload_trace(restored)) == text
        assert (
            payload_trace_digest(restored)
            == hashlib.sha256(text.encode("utf-8")).hexdigest()
        )
        assert restored["statistics"] == {"predicted": 100}

    def test_reencoding_a_decoded_payload_round_trips(self):
        trace = trace_from_values([9, 8, 7], name="re-encode")
        payload = {"trace_text": dumps_trace(trace)}
        _, decoded = decode_cache_entry(encode_cache_entry({"k": 1}, payload))
        _, again = decode_cache_entry(encode_cache_entry({"k": 1}, decoded))
        assert payload_trace_text(again) == payload["trace_text"]

    def test_key_stays_greppable(self):
        blob = encode_cache_entry({"workload": "compress-grep-me"}, {"x": 1})
        assert b"compress-grep-me" in blob

    def test_trace_payload_shrinks(self):
        trace = trace_from_values(list(range(500)), name="size")
        payload = {"trace_text": dumps_trace(trace)}
        import json

        binary = encode_cache_entry({"kind": "trace"}, payload)
        text = json.dumps({"key": {"kind": "trace"}, "payload": payload}).encode()
        assert len(binary) < len(text) // 4

    @pytest.mark.parametrize("keep", [3, 12, 40])
    def test_truncated_envelope_rejected(self, keep):
        blob = encode_cache_entry({"kind": "x"}, {"p": list(range(50))})
        with pytest.raises(ValueError):
            decode_cache_entry(blob[:keep])

    def test_truncation_mid_varint_raises_value_error(self):
        # The corruption contract is ValueError even where the underlying
        # varint reader signals truncation with TraceError.
        from repro.engine.codecs import CACHE_ENTRY_MAGIC

        with pytest.raises(ValueError):
            decode_cache_entry(CACHE_ENTRY_MAGIC + b"\xff")


class TestCacheStorageFormats:
    KEY = {"kind": "trace", "workload": "w"}

    def _trace_payload(self):
        trace = trace_from_values([1, 2, 3] * 30, name="fmt")
        return {"trace_text": dumps_trace(trace), "statistics": {"n": 90}}

    def test_binary_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = self._trace_payload()
        cache.put("trace", self.KEY, payload, format="binary")
        restored = cache.get("trace", self.KEY)
        assert payload_trace_text(restored) == payload["trace_text"]
        assert restored["statistics"] == payload["statistics"]

    def test_put_replaces_other_format_sibling(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = self._trace_payload()
        cache.put("trace", self.KEY, payload, format="json")
        cache.put("trace", self.KEY, payload, format="binary")
        assert cache.entry_count() == 1
        cache.put("trace", self.KEY, payload, format="json")
        assert cache.entry_count() == 1
        assert cache.get("trace", self.KEY) == payload

    def test_corrupt_binary_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("trace", self.KEY, self._trace_payload(), format="binary")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.get("trace", self.KEY) is None
        assert cache.misses == 1

    def test_entry_count_sees_binary_entries(self, tmp_path):
        # Regression: enumeration used to glob only ``*/*/*.json`` and
        # silently undercounted once binary entries existed.
        cache = ResultCache(tmp_path)
        cache.put("trace", self.KEY, self._trace_payload(), format="binary")
        cache.put("simulate", {"kind": "simulate"}, {"x": 1}, format="json")
        assert cache.entry_count() == 2
        stats = cache.stats()
        assert stats.entries == 2
        assert set(stats.kinds) == {"trace", "simulate"}
        assert stats.bytes == sum(path.stat().st_size for path in cache.entry_paths())

    def test_tmp_files_not_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("trace", self.KEY, {"x": 1})
        shard_dir = next(iter(cache.entry_paths())).parent
        (shard_dir / "orphan.json.123.tmp").write_text("partial")
        assert cache.entry_count() == 1


class TestGarbageCollection:
    def _populate(self, cache, count, kind="simulate"):
        paths = []
        for index in range(count):
            path = cache.put(kind, {"k": index}, {"blob": "x" * 200}, format="binary")
            paths.append(path)
        return paths

    def test_max_age_evicts_only_idle_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        paths = self._populate(cache, 4)
        _age(paths[0], 5000)
        _age(paths[1], 5000)
        report = cache.gc(max_age=3600)
        assert report.removed_entries == 2
        assert cache.entry_count() == 2
        assert all(path.exists() for path in paths[2:])

    def test_max_bytes_evicts_least_recently_used_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        paths = self._populate(cache, 4)
        for index, path in enumerate(paths):
            _age(path, 1000 - index)  # paths[0] oldest, paths[3] newest
        entry_size = paths[0].stat().st_size
        report = cache.gc(max_bytes=2 * entry_size)
        assert report.removed_entries == 2
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()
        assert report.remaining_bytes <= 2 * entry_size

    def test_gc_respects_constructor_defaults(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=0)
        self._populate(cache, 3)
        for path in cache.entry_paths():
            _age(path, 10)
        assert cache.gc().removed_entries == 3
        assert cache.entry_count() == 0

    def test_gc_never_evicts_entries_newer_than_its_start(self, tmp_path):
        # In-flight protection: entries that land after the GC pass began
        # must survive even a zero-byte budget.
        cache = ResultCache(tmp_path)
        paths = self._populate(cache, 2)
        for path in paths:
            _age(path, 100)
        in_flight = cache.put("simulate", {"k": "new"}, {"blob": "y"}, format="binary")
        future = time.time() + 30
        os.utime(in_flight, (future, future))
        report = cache.gc(max_bytes=0)
        assert in_flight.exists()
        assert report.removed_entries == 2
        assert cache.entry_count() == 1

    def test_cache_hit_refreshes_lru_position(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = cache.put("simulate", {"k": 1}, {"v": "a" * 100}, format="binary")
        second = cache.put("simulate", {"k": 2}, {"v": "b" * 100}, format="binary")
        _age(first, 500)
        _age(second, 100)
        assert cache.get("simulate", {"k": 1}) is not None  # refresh the older one
        report = cache.gc(max_bytes=first.stat().st_size)
        assert report.removed_entries == 1
        assert first.exists() and not second.exists()

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._populate(cache, 3)
        assert cache.clear() == 3
        assert cache.entry_count() == 0

    def test_gc_on_missing_root_is_a_no_op(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        report = cache.gc(max_bytes=0, max_age=0)
        assert report.removed_entries == 0
        assert report.remaining_entries == 0


class TestAutoGC:
    """Bounded GC runs automatically after engine runs — but must never
    evict what the finishing run just produced or read."""

    def test_no_auto_gc_without_bounds(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        engine.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
        assert engine.last_gc is None
        assert engine.cache.entry_count() > 0

    def test_current_run_survives_budget_smaller_than_its_output(self, tmp_path):
        # Regression: with --max-bytes smaller than one run's output, the
        # post-run GC pass used to be able to evict the run's own entries
        # (they all have mtimes before the pass starts).  Stale entries
        # from previous runs must go; the current run's must all stay.
        cache_dir = tmp_path / "cache"
        stale = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        stale.run(scale=SCALE, predictors=PREDICTORS, benchmarks=("m88ksim",))
        stale_paths = list(stale.cache.entry_paths())
        assert stale_paths
        for path in stale_paths:
            _age(path, 5000)

        engine = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_max_bytes=1)
        engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert engine.last_gc is not None
        assert engine.last_gc.removed_entries == len(stale_paths)
        assert all(not path.exists() for path in stale_paths)

        # Every entry the budget-constrained run produced is still warm.
        warm = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        warm.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert warm.stats.traces_computed == 0
        assert warm.stats.simulations_computed == 0

    def test_warm_entries_read_by_the_run_are_protected_too(self, tmp_path):
        # A hit bumps the mtime, so entries the run *reused* count as part
        # of the run and survive a tight budget as well.
        cache_dir = tmp_path / "cache"
        cold = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        cold.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        for path in cold.cache.entry_paths():
            _age(path, 5000)

        bounded = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_max_bytes=1)
        bounded.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert bounded.stats.simulations_cached == len(PREDICTORS)
        # A fully-warm run reads the trace and merge entries (bumping
        # them); the per-predictor shards it never opened are the only
        # legitimately evictable entries under the tight budget.
        assert bounded.last_gc.removed_entries == len(PREDICTORS)

        warm = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        warm.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert warm.stats.simulations_computed == 0
        assert warm.stats.traces_computed == 0

    def test_auto_gc_after_sweeps(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = SweepSpec.input_study(benchmark="compress", predictor="l", scale=SCALE)
        engine = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_max_bytes=1)
        engine.run_sweep(spec)
        assert engine.last_gc is not None

        warm = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        warm.run_sweep(spec)
        assert warm.stats.traces_computed == 0
        assert warm.stats.simulations_computed == 0


class TestVerify:
    def test_verify_passes_on_healthy_mixed_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("trace", {"k": 1}, {"x": 1}, format="binary")
        cache.put("simulate", {"k": 2}, {"x": 2}, format="json")
        report = cache.verify()
        assert report.checked == 2 and report.ok

    def test_verify_flags_corrupt_embedded_trace(self, tmp_path):
        # An envelope can be structurally intact while its embedded trace
        # bytes are not; `get` defers trace decoding, `verify` does not.
        cache = ResultCache(tmp_path)
        path = cache.put("trace", {"k": 1}, {"trace_binary": b"not a trace"}, format="binary")
        assert cache.verify().corrupt == [path]

    def test_verify_flags_truncated_and_misfiled_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        good = cache.put("trace", {"k": 1}, {"x": 1}, format="binary")
        truncated = cache.put("trace", {"k": 2}, {"x": 2}, format="binary")
        truncated.write_bytes(truncated.read_bytes()[:6])
        misfiled = good.with_name(f"{'0' * 64}.json")
        misfiled.write_text('{"key": {"k": 3}, "payload": {"x": 3}}')
        report = cache.verify()
        assert set(report.corrupt) == {truncated, misfiled}
        cache.verify(remove=True)
        assert cache.entry_count() == 1
        assert good.exists()


class TestEngineBinaryCachePath:
    def test_warm_rerun_from_binary_cache_is_bit_identical(self, tmp_path):
        reference = ExecutionEngine(jobs=1).run(
            scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS
        )
        cache_dir = tmp_path / "cache"
        cold = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_format="binary")
        cold.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert all(path.suffix == ".rvpc" for path in cold.cache.entry_paths())

        warm = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_format="binary")
        result = warm.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert warm.stats.traces_computed == 0
        assert warm.stats.simulations_computed == 0
        for benchmark in BENCHMARKS:
            assert result.simulations[benchmark] == reference.simulations[benchmark]
            assert result.statistics[benchmark] == reference.statistics[benchmark]

    def test_binary_engine_reads_text_cache_and_vice_versa(self, tmp_path):
        cache_dir = tmp_path / "cache"
        text_engine = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_format="text")
        text_result = text_engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert all(path.suffix == ".json" for path in text_engine.cache.entry_paths())

        binary_engine = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_format="binary")
        binary_result = binary_engine.run(
            scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS
        )
        assert binary_engine.stats.traces_computed == 0
        assert binary_engine.stats.simulations_computed == 0
        for benchmark in BENCHMARKS:
            assert binary_result.simulations[benchmark] == text_result.simulations[benchmark]

    def test_binary_cache_is_smaller_than_text_cache(self, tmp_path):
        text = ExecutionEngine(jobs=1, cache_dir=tmp_path / "text", cache_format="text")
        text.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        binary = ExecutionEngine(jobs=1, cache_dir=tmp_path / "binary", cache_format="binary")
        binary.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert binary.cache.stats().bytes < text.cache.stats().bytes // 2

    def test_corrupt_binary_trace_entry_recomputes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_format="binary")
        cold_result = cold.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        trace_entries = [
            path for path in cold.cache.entry_paths() if path.parent.parent.name == "trace"
        ]
        assert trace_entries
        for path in trace_entries:
            path.write_bytes(path.read_bytes()[:20])

        warm = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_format="binary")
        result = warm.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert warm.stats.traces_computed == len(BENCHMARKS)
        for benchmark in BENCHMARKS:
            assert result.simulations[benchmark] == cold_result.simulations[benchmark]

    def test_corrupt_embedded_trace_recomputes(self, tmp_path):
        # The envelope decodes fine but the v3 bytes inside do not: the
        # scheduler must fall back to re-tracing, not crash the run.
        cache_dir = tmp_path / "cache"
        cold = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_format="binary")
        cold_result = cold.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        for benchmark in BENCHMARKS:
            key = TraceTask.for_workload(benchmark, SCALE).cache_key()
            path = cold.cache.path_for("trace", key, format="binary")
            assert path.exists()
            path.write_bytes(encode_cache_entry(key, {"trace_binary": b"\x00garbage"}))

        warm = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_format="binary")
        result = warm.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert warm.stats.traces_computed == len(BENCHMARKS)
        for benchmark in BENCHMARKS:
            assert result.simulations[benchmark] == cold_result.simulations[benchmark]

    def test_rejects_unknown_cache_format(self, tmp_path):
        with pytest.raises(ValueError):
            ExecutionEngine(cache_dir=tmp_path, cache_format="parquet")
