"""Round-trip tests for the engine's JSON codecs."""

from __future__ import annotations

import json

from repro.engine.codecs import (
    predictor_result_from_dict,
    predictor_result_to_dict,
    shard_from_dict,
    shard_to_dict,
    simulation_from_dict,
    simulation_to_dict,
    statistics_from_dict,
    statistics_to_dict,
)
from repro.simulation.simulator import simulate_shard, simulate_trace


def _json_round_trip(data):
    """Force an actual JSON encode/decode, as the cache and pool paths do."""
    return json.loads(json.dumps(data))


class TestStatisticsCodec:
    def test_round_trip(self, compress_trace):
        statistics = compress_trace.statistics()
        restored = statistics_from_dict(_json_round_trip(statistics_to_dict(statistics)))
        assert restored == statistics


class TestPredictorResultCodec:
    def test_round_trip(self, compress_trace):
        result = simulate_trace(compress_trace, ("s2",)).results["s2"]
        restored = predictor_result_from_dict(
            _json_round_trip(predictor_result_to_dict(result))
        )
        assert restored == result
        assert restored.accuracy == result.accuracy


class TestShardCodec:
    def test_round_trip(self, compress_trace):
        shard = simulate_shard(compress_trace, "fcm1")
        restored = shard_from_dict(_json_round_trip(shard_to_dict(shard)))
        assert restored == shard


class TestSimulationCodec:
    def test_round_trip(self, compress_trace):
        simulation = simulate_trace(compress_trace, ("l", "s2", "fcm1"))
        restored = simulation_from_dict(_json_round_trip(simulation_to_dict(simulation)))
        assert restored == simulation
        assert restored.predictor_names == simulation.predictor_names
        assert restored.subset_counts == simulation.subset_counts
        assert restored.subset_counts_by_category == simulation.subset_counts_by_category
