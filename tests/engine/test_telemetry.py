"""Telemetry suite: sink semantics, instrumented runs, and the on/off invariant.

The telemetry contract has one load-bearing clause: results and cache
entries are **byte-identical** with telemetry on or off — the observability
sidecar workers attach to their outcomes is stripped before anything is
decoded or cached, and the sinks only observe.  On top of that invariant
this file pins the JSONL record schema round-trip, manifest contents, the
span parent chain, the recorded-run summary ``repro-vp inspect`` renders,
and the remote fleet's worker-side timing and utilization records.
"""

from __future__ import annotations

import json
import io

import pytest

from repro.cli import main
from repro.engine import ExecutionEngine
from repro.engine.remote import WorkerServer
from repro.engine.sweeps import SweepSpec
from repro.engine.telemetry import (
    NULL_TELEMETRY,
    TELEMETRY_KEY,
    NullTelemetry,
    RunTelemetry,
    read_manifest,
    read_metrics,
    summarize_run,
)
from repro.engine.worker import execute_simulate_task, execute_trace_task

SCALE = 0.05
BENCHMARKS = ("compress", "m88ksim")
PREDICTORS = ("l", "fcm2")


def _entry_bytes(cache_dir):
    """Relative path -> raw bytes of every entry in a cache directory."""
    return {
        str(path.relative_to(cache_dir)): path.read_bytes()
        for path in cache_dir.glob("*/*/*")
        if path.is_file()
    }


def _campaign(tmp_path, name, telemetry=None, backend="serial"):
    cache_dir = tmp_path / f"cache-{name}"
    with ExecutionEngine(
        jobs=2, cache_dir=cache_dir, backend=backend, telemetry=telemetry
    ) as engine:
        result = engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
    return result, cache_dir, engine.stats


class TestNullTelemetry:
    def test_every_operation_is_inert(self):
        sink = NullTelemetry()
        assert not sink.enabled
        assert sink.run_id is None
        with sink.span("phase", phase="trace") as span:
            span.set(total=3)
        sink.span_record("task", 0.25, label="gcc")
        sink.event("remote.worker", worker="a")
        sink.count("cache.hit")
        sink.annotate(backend="serial")
        sink.close()

    def test_span_is_shared_singleton(self):
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")


class TestRunTelemetry:
    def test_jsonl_schema_round_trip(self, tmp_path):
        with RunTelemetry(tmp_path, run_id="run-1", argv=["x"], command="test") as sink:
            with sink.span("run", kind="campaign") as run_span:
                with sink.span("phase", phase="trace") as phase_span:
                    phase_span.set(total=2)
                    sink.span_record("task", 0.5, label="gcc")
                run_span.set(tasks_computed=2)
            sink.event("cache.gc", removed=1)
            sink.count("cache.hit", 3)
            sink.count("cache.hit")
        records = list(read_metrics(tmp_path))
        by_type = {}
        for record in records:
            assert record["run"] == "run-1"
            by_type.setdefault(record["type"], []).append(record)
        spans = {record["name"]: record for record in by_type["span"]}
        assert spans["run"]["parent"] is None
        assert spans["phase"]["parent"] == spans["run"]["id"]
        assert spans["task"]["parent"] == spans["phase"]["id"]
        assert spans["task"]["dt"] == 0.5
        assert spans["phase"]["attrs"]["total"] == 2
        assert spans["run"]["attrs"]["tasks_computed"] == 2
        for span in spans.values():
            assert span["dt"] >= 0.0 and span["t"] > 0
        (event,) = by_type["event"]
        assert event["name"] == "cache.gc" and event["attrs"] == {"removed": 1}
        (counter,) = by_type["counter"]
        assert counter["name"] == "cache.hit" and counter["value"] == 4

    def test_manifest_contents_and_annotate(self, tmp_path):
        sink = RunTelemetry(tmp_path, argv=["repro-vp", "campaign"], command="campaign")
        sink.annotate(backend="remote", jobs=4)
        sink.close()
        manifest = read_manifest(tmp_path)
        assert manifest["command"] == "campaign"
        assert manifest["argv"] == ["repro-vp", "campaign"]
        assert manifest["run_id"] == sink.run_id
        assert manifest["backend"] == "remote"
        assert manifest["jobs"] == 4
        for pin in ("protocol_version", "task_format_version", "cache_entry_version"):
            assert isinstance(manifest[pin], int)
        assert manifest["finished_wall"] >= manifest["created_wall"]

    def test_error_escaping_span_is_stamped(self, tmp_path):
        sink = RunTelemetry(tmp_path, run_id="run-err", argv=[])
        with pytest.raises(ValueError):
            with sink.span("run"):
                raise ValueError("boom")
        sink.close()
        (span,) = [r for r in read_metrics(tmp_path) if r["type"] == "span"]
        assert span["attrs"]["error"] == "ValueError: boom"

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        sink = RunTelemetry(tmp_path, run_id="run-t", argv=[])
        sink.event("ok")
        sink.close()
        metrics = tmp_path / "metrics.jsonl"
        with open(metrics, "a", encoding="utf-8") as handle:
            handle.write('{"run": "run-t", "type": "ev')  # killed mid-write
        records = list(read_metrics(tmp_path))
        assert [record["name"] for record in records] == ["ok"]


class TestSidecar:
    def test_worker_outcomes_carry_sidecar(self):
        outcome = execute_trace_task({"benchmark": "compress", "scale": SCALE})
        sidecar = outcome[TELEMETRY_KEY]
        assert sidecar["function"] == "trace"
        assert sidecar["execute_seconds"] > 0
        assert isinstance(sidecar["pid"], int)
        simulate = execute_simulate_task(
            {"trace_bytes": outcome["trace_binary"], "predictor": "l"}
        )
        assert simulate[TELEMETRY_KEY]["function"] == "simulate"

    def test_sidecar_never_reaches_cache_entries(self, tmp_path):
        _, cache_dir, _ = _campaign(tmp_path, "probe")
        for relative, blob in _entry_bytes(cache_dir).items():
            assert TELEMETRY_KEY.encode() not in blob, relative


class TestOnOffParity:
    def test_campaign_results_and_cache_entries_identical(self, tmp_path):
        telemetry = RunTelemetry(tmp_path / "telemetry", argv=[], command="campaign")
        on, on_cache, _ = _campaign(tmp_path, "on", telemetry=telemetry)
        telemetry.close()
        off, off_cache, _ = _campaign(tmp_path, "off", telemetry=None)
        for benchmark in BENCHMARKS:
            assert on.statistics[benchmark] == off.statistics[benchmark]
            assert on.simulations[benchmark] == off.simulations[benchmark]
        assert _entry_bytes(on_cache) == _entry_bytes(off_cache)

    def test_sweep_results_and_cache_entries_identical(self, tmp_path):
        spec = SweepSpec(benchmark="compress", scale=SCALE, predictors=("l", "s2"))
        points = {}
        entries = {}
        for mode in ("on", "off"):
            telemetry = (
                RunTelemetry(tmp_path / "telemetry-sweep", argv=[], command="sweep")
                if mode == "on"
                else None
            )
            cache_dir = tmp_path / f"sweep-cache-{mode}"
            with ExecutionEngine(
                jobs=2, cache_dir=cache_dir, backend="pool", telemetry=telemetry
            ) as engine:
                result = engine.run_sweep(spec)
            if telemetry is not None:
                telemetry.close()
            points[mode] = [
                (entry.point, entry.record_count, entry.accuracy)
                for entry in result.points
            ]
            entries[mode] = _entry_bytes(cache_dir)
        assert points["on"] == points["off"]
        assert entries["on"] == entries["off"]


class TestInstrumentedRun:
    def test_campaign_records_phases_tasks_and_cache_counters(self, tmp_path):
        telemetry = RunTelemetry(tmp_path / "telemetry", argv=[], command="campaign")
        _campaign(tmp_path, "cold", telemetry=telemetry)
        telemetry.close()
        summary = summarize_run(tmp_path / "telemetry")
        assert summary["manifest"]["backend"] == "serial"
        phase_names = [phase["phase"] for phase in summary["phases"]]
        assert phase_names == ["trace", "simulate"]
        for phase in summary["phases"]:
            assert phase["seconds"] > 0
        computed = len(BENCHMARKS) * (1 + len(PREDICTORS))
        assert len(summary["tasks"]) == computed
        for task in summary["tasks"]:
            assert task["seconds"] > 0 and isinstance(task["worker_pid"], int)
        # slowest-first ordering
        seconds = [task["seconds"] for task in summary["tasks"]]
        assert seconds == sorted(seconds, reverse=True)
        assert summary["cache"]["writes"] > 0
        assert summary["cache"]["write_bytes"] > 0
        assert summary["cache"]["misses"] > 0
        (run,) = summary["runs"]
        assert run["kind"] == "campaign" and run["tasks_computed"] == computed

    def test_warm_run_records_cache_hits(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with ExecutionEngine(jobs=1, cache_dir=cache_dir) as engine:
            engine.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
        telemetry = RunTelemetry(tmp_path / "telemetry", argv=[], command="campaign")
        with ExecutionEngine(jobs=1, cache_dir=cache_dir, telemetry=telemetry) as engine:
            engine.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
        telemetry.close()
        assert engine.stats.cache_hit_bytes > 0
        assert engine.stats.cache_write_bytes == 0
        summary = summarize_run(tmp_path / "telemetry")
        assert summary["cache"]["hits"] > 0
        assert summary["cache"]["hit_ratio"] == 1.0
        assert summary["cache"]["hit_bytes"] == engine.stats.cache_hit_bytes

    def test_engine_stats_carry_phase_seconds(self, tmp_path):
        _, _, stats = _campaign(tmp_path, "seconds")
        assert stats.trace_seconds > 0
        assert stats.simulate_seconds > 0
        assert stats.trace_seconds + stats.simulate_seconds <= stats.total_seconds * 1.01


class TestRemoteTelemetry:
    def test_two_worker_run_records_worker_timing_and_utilization(self, tmp_path):
        telemetry = RunTelemetry(tmp_path / "telemetry", argv=[], command="campaign")
        with WorkerServer() as alpha, WorkerServer() as beta:
            with ExecutionEngine(
                jobs=2,
                cache_dir=tmp_path / "cache",
                backend="remote",
                workers=(alpha.address, beta.address),
                telemetry=telemetry,
            ) as engine:
                result = engine.run(
                    scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS
                )
            server_stats = {
                server.address: (server.tasks_served, server.bytes_received, server.bytes_sent)
                for server in (alpha, beta)
            }
        telemetry.close()
        assert result.benchmarks() == BENCHMARKS
        summary = summarize_run(tmp_path / "telemetry")
        # per-task spans carry the worker-side execute time and pid
        assert summary["tasks"], "remote run recorded no task spans"
        for task in summary["tasks"]:
            assert task["seconds"] > 0 and isinstance(task["worker_pid"], int)
        # per-worker utilization events, one per worker per dispatch
        workers = summary["workers"]
        assert {worker["worker"] for worker in workers} == set(server_stats)
        total_tasks = sum(worker["tasks"] for worker in workers)
        assert total_tasks == sum(stats[0] for stats in server_stats.values())
        for worker in workers:
            assert worker["busy_seconds"] >= 0
            assert 0 <= worker["utilization"] <= 1.0 or worker["tasks"] == 0
            assert worker["peak_in_flight"] <= engine.jobs
            assert worker["frames_sent"] >= worker["tasks"]
        # Wire counters agree with the servers' own accounting up to the
        # handshake frames (counted by the server, but exchanged before
        # the first dispatch's per-worker deltas begin).
        server_received = sum(stats[1] for stats in server_stats.values())
        server_sent = sum(stats[2] for stats in server_stats.values())
        assert 0 < summary["counters"]["remote.bytes_sent"] <= server_received
        assert 0 < summary["counters"]["remote.bytes_received"] <= server_sent

    def test_result_frames_carry_worker_seconds(self, tmp_path):
        with WorkerServer() as server:
            with ExecutionEngine(
                jobs=2, backend="remote", workers=(server.address,)
            ) as engine:
                engine.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
            assert server.execute_seconds > 0
            assert server.tasks_served == 2  # one trace, one simulate

    def test_worker_stats_line(self):
        server = WorkerServer()
        line = server.stats_line()
        assert "0 task(s) served" in line
        assert "B in" in line and "B out" in line


class TestInspectCli:
    def _record_run(self, tmp_path):
        telemetry = RunTelemetry(tmp_path / "telemetry", argv=[], command="campaign")
        _campaign(tmp_path, "inspect", telemetry=telemetry)
        telemetry.close()
        return tmp_path / "telemetry"

    def test_inspect_renders_recorded_run(self, tmp_path, capsys):
        run_dir = self._record_run(tmp_path)
        assert main(["inspect", str(run_dir)]) == 0
        output = capsys.readouterr().out
        assert "Phases" in output
        assert "Slowest tasks" in output
        assert "cache:" in output

    def test_inspect_json(self, tmp_path, capsys):
        run_dir = self._record_run(tmp_path)
        assert main(["inspect", str(run_dir), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["manifest"]["command"] == "campaign"
        assert summary["phases"]

    def test_inspect_missing_directory_fails_cleanly(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "nope")]) == 2
        assert "telemetry" in capsys.readouterr().err

    def test_campaign_cli_writes_telemetry(self, tmp_path, capsys):
        code = main(
            [
                "campaign",
                "--scale",
                str(SCALE),
                "--predictors",
                "l",
                "--benchmarks",
                "compress",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--telemetry-dir",
                str(tmp_path / "telemetry"),
            ]
        )
        assert code == 0
        manifest = read_manifest(tmp_path / "telemetry")
        assert manifest["command"] == "campaign"
        assert manifest["backend"] == "serial"
        assert (tmp_path / "telemetry" / "metrics.jsonl").stat().st_size > 0
        capsys.readouterr()
        assert main(["inspect", str(tmp_path / "telemetry")]) == 0


class TestWorkerServeStatsInterval:
    def test_periodic_stats_line_goes_to_stream(self, monkeypatch):
        server = WorkerServer()
        stream = io.StringIO()

        # serve_forever with a tiny interval; stop from a timer thread.
        import threading

        threading.Timer(0.5, server.stop).start()
        server.serve_forever(stats_interval=0.1, stats_stream=stream)
        lines = [line for line in stream.getvalue().splitlines() if line]
        assert lines, "no stats lines emitted"
        assert all("task(s) served" in line for line in lines)
