"""Intra-trace sharding suite: window plans, state handoff, bit identity.

The sharding contract (:mod:`repro.engine.sharding`): splitting one
(benchmark, predictor) pair into windows with predictor-state handoff must
be *bit-identical* to the unsharded run — the same stitched shard dicts,
the same pair-level cache entries (byte for byte) and the same
``SIMULATION_COUNTER`` accounting — because sharding only decides how the
work is cut, never what it computes.  Driven over every registered
predictor configuration (the state codec must cover each one), synthetic
traces engineered to put window boundaries mid hot-PC run, and all local
backends plus an in-process remote worker pair.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.registry import available_predictors, create_predictor
from repro.engine import ExecutionEngine
from repro.engine.codecs import shard_from_dict, shard_to_dict, simulation_to_dict
from repro.engine.remote import WorkerServer
from repro.engine.sharding import (
    concat_packed_bits,
    merge_window_shards,
    normalize_shard_window,
    plan_shard_windows,
    plan_windows,
    resolve_shard_window,
)
from repro.engine.sweeps import SweepSpec
from repro.engine.worker import execute_replay_task, execute_simulate_window_task
from repro.errors import SimulationError
from repro.isa.opcodes import CATEGORY_OF, Opcode
from repro.simulation.simulator import (
    SIMULATION_COUNTER,
    pack_outcomes,
    simulate_shard,
)
from repro.simulation.state import (
    replay_records,
    restore_predictor,
    snapshot_predictor,
)
from repro.trace.record import TraceRecord
from repro.trace.stream import ValueTrace

SCALE = 0.05
PREDICTORS = ("l", "s2", "fcm2")

#: Every statically registered name plus dynamic-suffix names, so the
#: state codec and window stitching are proven over each configuration.
ALL_NAMES = tuple(available_predictors()) + (
    "fcm0",
    "fcm4",
    "fcm2-single",
    "fcm2-small",
    "fcm2-full",
)


def synthetic_trace(seed: int, length: int, pcs: int) -> ValueTrace:
    """A seeded random trace mixing strides, repeats, cycles and noise.

    With ``pcs == 1`` every record is one hot PC, so any window boundary
    lands mid-run of that PC — the handoff-sensitive case.
    """
    opcodes = (Opcode.ADD, Opcode.LW, Opcode.AND, Opcode.SLL, Opcode.MULT, Opcode.LUI)
    rng = random.Random(seed)
    pc_pool = [0x400000 + 4 * index for index in range(pcs)]
    opcode_of = {pc: rng.choice(opcodes) for pc in pc_pool}
    behaviour_of = {pc: rng.choice(("stride", "repeat", "cycle", "noisy")) for pc in pc_pool}
    state: dict[int, object] = {}
    records = []
    for index in range(length):
        pc = pc_pool[min(int(rng.random() ** 2 * pcs), pcs - 1)]
        behaviour = behaviour_of[pc]
        if behaviour == "stride":
            value = state.get(pc, rng.randint(-500, 500))
            state[pc] = value + rng.choice((1, 1, 1, 4))
        elif behaviour == "repeat":
            value = state.setdefault(pc, rng.randint(-50, 50))
            if rng.random() < 0.1:
                state[pc] = rng.randint(-50, 50)
        elif behaviour == "cycle":
            value = (index // 3) % 5
        else:
            value = rng.randrange(-(2**31), 2**31)
        opcode = opcode_of[pc]
        records.append(
            TraceRecord(
                serial=index + 1,
                pc=pc,
                opcode=opcode,
                category=CATEGORY_OF[opcode],
                value=value,
            )
        )
    return ValueTrace(f"shard-synthetic-{seed}-{length}-{pcs}", records)


def _entry_bytes(cache_dir, exclude_kinds=()):
    """Map of relative entry path -> file contents, optionally per-kind filtered."""
    return {
        str(path.relative_to(cache_dir)): path.read_bytes()
        for path in cache_dir.glob("*/*/*")
        if path.is_file() and path.relative_to(cache_dir).parts[0] not in exclude_kinds
    }


# --------------------------------------------------------------------------- #
# Window planning
# --------------------------------------------------------------------------- #
class TestPlanning:
    def test_normalize(self):
        assert normalize_shard_window(None) is None
        assert normalize_shard_window(0) is None
        assert normalize_shard_window("0") is None
        assert normalize_shard_window("auto") == "auto"
        assert normalize_shard_window(7) == 7
        assert normalize_shard_window("12") == 12

    @pytest.mark.parametrize("bad", ("bogus", -3, "-1", "2.5"))
    def test_normalize_rejects(self, bad):
        with pytest.raises(ValueError):
            normalize_shard_window(bad)

    def test_resolve_disables_when_pointless(self):
        # Window >= trace length, a trace too short to split, an empty
        # trace, and auto on a single-slot backend all mean "unsharded".
        assert resolve_shard_window(100, 100, 4) is None
        assert resolve_shard_window(500, 100, 4) is None
        assert resolve_shard_window(10, 1, 4) is None
        assert resolve_shard_window(10, 0, 4) is None
        assert resolve_shard_window("auto", 100, 1) is None
        assert resolve_shard_window(None, 100, 4) is None

    def test_resolve_auto_divides_by_slots(self):
        assert resolve_shard_window("auto", 10, 4) == 3
        assert resolve_shard_window("auto", 1000, 4) == 250

    def test_plan_covers_trace_exactly(self):
        assert plan_windows(10, 3) == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert plan_windows(6, 3) == [(0, 3), (3, 6)]
        assert plan_windows(5, 1) == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]

    def test_plan_shard_windows_end_to_end(self):
        assert plan_shard_windows(None, 100, 4) is None
        assert plan_shard_windows(200, 100, 4) is None
        windows = plan_shard_windows("auto", 10, 4)
        assert windows == [(0, 3), (3, 6), (6, 9), (9, 10)]


# --------------------------------------------------------------------------- #
# Correctness-bit concatenation
# --------------------------------------------------------------------------- #
class TestConcatPackedBits:
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_matches_single_pack(self, seed):
        rng = random.Random(seed)
        outcomes = [rng.random() < 0.5 for _ in range(rng.randint(1, 300))]
        cuts = sorted(rng.sample(range(len(outcomes) + 1), rng.randint(0, 6)))
        bounds = [0, *cuts, len(outcomes)]
        chunks = [
            (pack_outcomes(outcomes[a:b]), b - a)
            for a, b in zip(bounds, bounds[1:])
        ]
        assert concat_packed_bits(chunks) == pack_outcomes(outcomes)

    def test_empty(self):
        assert concat_packed_bits([]) == b""
        assert concat_packed_bits([(b"", 0), (b"", 0)]) == b""

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            concat_packed_bits([(b"\x01", -1)])


# --------------------------------------------------------------------------- #
# Predictor state codec
# --------------------------------------------------------------------------- #
class TestStateCodec:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_replay_restore_continues_identically(self, name):
        # update()-only replay to a boundary, snapshot, restore into a
        # fresh predictor: the continuation must produce the exact
        # per-record outcomes of the uninterrupted run.
        trace = synthetic_trace(11, 240, 6)
        split = 117
        continuous = create_predictor(name)
        expected = [
            continuous.observe(r.pc, r.value, r.category) for r in trace.records
        ]
        replayed = create_predictor(name)
        replay_records(replayed, trace.records[:split])
        state = snapshot_predictor(replayed)
        resumed = create_predictor(name)
        restore_predictor(resumed, state)
        tail = [
            resumed.observe(r.pc, r.value, r.category)
            for r in trace.records[split:]
        ]
        assert tail == expected[split:]

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_snapshot_round_trips(self, name):
        trace = synthetic_trace(12, 150, 4)
        source = create_predictor(name)
        replay_records(source, trace.records)
        state = snapshot_predictor(source)
        # JSON round-trip: the remote wire ships states as JSON, so the
        # codec must survive tuples-become-lists and string keys.
        state = json.loads(json.dumps(state))
        target = create_predictor(name)
        restore_predictor(target, state)
        assert snapshot_predictor(target) == snapshot_predictor(source)

    def test_unknown_predictor_type_rejected(self):
        class Mystery:
            pass

        with pytest.raises(SimulationError):
            snapshot_predictor(Mystery())
        with pytest.raises(SimulationError):
            restore_predictor(Mystery(), {})


# --------------------------------------------------------------------------- #
# Window workers + stitching (every predictor, no engine)
# --------------------------------------------------------------------------- #
def stitched_shard(trace: ValueTrace, name: str, window: int):
    """Replay + window-simulate + stitch, via the real worker functions."""
    windows = plan_windows(len(trace), window)
    boundaries = [start for start, _ in windows if start > 0]
    states: dict[str, dict] = {}
    if boundaries:
        outcome = execute_replay_task(
            {"predictor": name, "trace": trace, "boundaries": boundaries}
        )
        states = outcome["states"]
    shards = []
    for start, stop in windows:
        payload = {
            "predictor": name,
            "trace": trace[start:stop],
            "window": [start, stop],
            "state": json.loads(json.dumps(states[str(start)])) if start else None,
        }
        shards.append(
            shard_from_dict(execute_simulate_window_task(payload)["shard"])
        )
    return merge_window_shards(name, shards)


class TestWindowStitching:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_every_predictor_bit_identical(self, name):
        trace = synthetic_trace(21, 260, 7)
        whole = simulate_shard(trace, name)
        merged = stitched_shard(trace, name, window=37)
        assert json.dumps(shard_to_dict(merged)) == json.dumps(shard_to_dict(whole))

    def test_boundary_mid_hot_pc_run(self):
        # One hot PC: every boundary interrupts its run, so any handoff
        # state drift (hysteresis counters, stride transients, FCM
        # histories) breaks bit identity here first.
        trace = synthetic_trace(4, 256, 1)
        for name in ("lv-counter", "lv-consecutive", "s2", "stride-counter", "fcm3"):
            whole = simulate_shard(trace, name)
            merged = stitched_shard(trace, name, window=100)
            assert json.dumps(shard_to_dict(merged)) == json.dumps(
                shard_to_dict(whole)
            ), name

    def test_window_of_one(self):
        trace = synthetic_trace(5, 48, 3)
        for name in ("l", "fcm2"):
            whole = simulate_shard(trace, name)
            merged = stitched_shard(trace, name, window=1)
            assert json.dumps(shard_to_dict(merged)) == json.dumps(shard_to_dict(whole))

    def test_counter_incremented_once_per_pair(self):
        trace = synthetic_trace(6, 90, 3)
        before = SIMULATION_COUNTER.count
        stitched_shard(trace, "l", window=30)
        assert SIMULATION_COUNTER.count == before + 1


# --------------------------------------------------------------------------- #
# Engine-level parity (campaigns, sweeps, backends, cache)
# --------------------------------------------------------------------------- #
def _campaign(tmp_path, tag, **engine_kwargs):
    cache_dir = tmp_path / f"cache-{tag}"
    with ExecutionEngine(cache_dir=cache_dir, **engine_kwargs) as engine:
        result = engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=("compress",))
    return result, engine.stats, cache_dir


def _dump(result):
    return {
        benchmark: json.dumps(simulation_to_dict(simulation), sort_keys=True)
        for benchmark, simulation in result.simulations.items()
    }


class TestEngineSharding:
    def test_serial_sharded_matches_unsharded_and_cache_bytes(self, tmp_path):
        reference, _, serial_dir = _campaign(tmp_path, "plain", jobs=1)
        sharded, stats, sharded_dir = _campaign(
            tmp_path, "sharded", jobs=1, shard_window=400
        )
        assert _dump(sharded) == _dump(reference)
        assert stats.windows_computed > 0
        assert stats.simulations_computed == len(PREDICTORS)
        # Identical pair-level entries, byte for byte; only the extra
        # simulate-window kind distinguishes the sharded cache.
        assert _entry_bytes(sharded_dir, exclude_kinds=("simulate-window",)) == (
            _entry_bytes(serial_dir)
        )

    @pytest.mark.parametrize("backend", ("pool", "persistent"))
    def test_process_backends_bit_identical(self, tmp_path, backend):
        reference, _, _ = _campaign(tmp_path, "ref", jobs=1)
        sharded, stats, _ = _campaign(
            tmp_path, backend, jobs=2, backend=backend, shard_window="auto"
        )
        assert _dump(sharded) == _dump(reference)
        assert stats.windows_computed > 0

    def test_remote_backend_bit_identical(self, tmp_path):
        reference, _, serial_dir = _campaign(tmp_path, "ref", jobs=1)
        with WorkerServer() as first, WorkerServer() as second:
            sharded, stats, remote_dir = _campaign(
                tmp_path,
                "remote",
                jobs=1,
                backend="remote",
                workers=[first.address, second.address],
                shard_window="auto",
            )
        assert _dump(sharded) == _dump(reference)
        assert stats.windows_computed > 0
        assert _entry_bytes(remote_dir, exclude_kinds=("simulate-window",)) == (
            _entry_bytes(serial_dir)
        )

    def test_sharded_cold_warms_unsharded_and_vice_versa(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with ExecutionEngine(jobs=1, cache_dir=cache_dir, shard_window=300) as engine:
            engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=("compress",))
        with ExecutionEngine(jobs=1, cache_dir=cache_dir) as engine:
            engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=("compress",))
            assert engine.stats.simulations_computed == 0
        other_dir = tmp_path / "other"
        with ExecutionEngine(jobs=1, cache_dir=other_dir) as engine:
            engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=("compress",))
        with ExecutionEngine(jobs=1, cache_dir=other_dir, shard_window=300) as engine:
            engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=("compress",))
            assert engine.stats.simulations_computed == 0
            assert engine.stats.windows_computed == 0

    def test_warm_windows_resume_interrupted_shard(self, tmp_path):
        # Window entries persist individually, so a rerun after losing the
        # pair-level entry re-stitches from warm windows without
        # re-simulating any of them.
        cache_dir = tmp_path / "cache"
        with ExecutionEngine(jobs=1, cache_dir=cache_dir, shard_window=300) as engine:
            reference = engine.run(
                scale=SCALE, predictors=PREDICTORS, benchmarks=("compress",)
            )
        for kind in ("simulate", "merge"):
            for path in (cache_dir / kind).glob("**/*"):
                if path.is_file():
                    path.unlink()
        with ExecutionEngine(jobs=1, cache_dir=cache_dir, shard_window=300) as engine:
            rerun = engine.run(
                scale=SCALE, predictors=PREDICTORS, benchmarks=("compress",)
            )
            assert engine.stats.windows_computed == 0
            assert engine.stats.windows_cached > 0
        assert _dump(rerun) == _dump(reference)

    def test_mixed_sharded_and_unsharded_benchmarks(self, tmp_path):
        # A window between the two trace lengths shards one benchmark and
        # leaves the other on the pair-level path within the same run.
        benchmarks = ("compress", "m88ksim")
        with ExecutionEngine(jobs=1) as engine:
            reference = engine.run(
                scale=SCALE, predictors=PREDICTORS, benchmarks=benchmarks
            )
        lengths = sorted(len(reference.traces[name]) for name in benchmarks)
        assert lengths[0] < lengths[1], "fixture needs distinct trace lengths"
        window = lengths[0] + (lengths[1] - lengths[0]) // 2
        with ExecutionEngine(jobs=1, shard_window=window) as engine:
            mixed = engine.run(
                scale=SCALE, predictors=PREDICTORS, benchmarks=benchmarks
            )
            assert engine.stats.windows_computed > 0
        assert _dump(mixed) == _dump(reference)

    def test_sharded_vector_matches_unsharded_scalar_cache_bytes(self, tmp_path):
        # The acceptance bar for vector-windowed execution: a sharded run
        # on the vector kernel writes the same pair-level (and merge)
        # entries, byte for byte, as an unsharded scalar run.
        pytest.importorskip("numpy")
        reference, _, scalar_dir = _campaign(tmp_path, "scalar", jobs=1, kernel="scalar")
        sharded, stats, vector_dir = _campaign(
            tmp_path, "vector-sharded", jobs=1, kernel="vector", shard_window=400
        )
        assert _dump(sharded) == _dump(reference)
        assert stats.windows_computed > 0
        assert _entry_bytes(vector_dir, exclude_kinds=("simulate-window",)) == (
            _entry_bytes(scalar_dir)
        )

    def test_window_entries_bit_identical_across_kernels(self, tmp_path):
        # Same sharding, different kernels: every cache kind — the
        # per-window entries included — must match byte for byte.
        pytest.importorskip("numpy")
        _, _, scalar_dir = _campaign(
            tmp_path, "win-scalar", jobs=1, kernel="scalar", shard_window=400
        )
        _, stats, vector_dir = _campaign(
            tmp_path, "win-vector", jobs=1, kernel="vector", shard_window=400
        )
        assert stats.windows_computed > 0
        assert _entry_bytes(vector_dir) == _entry_bytes(scalar_dir)

    def test_sweep_sharded_parity(self, tmp_path):
        spec = SweepSpec(benchmark="compress", scale=SCALE, predictors=PREDICTORS)
        with ExecutionEngine(jobs=1) as engine:
            reference = engine.run_sweep(spec)
        with ExecutionEngine(jobs=1, shard_window=400) as engine:
            sharded = engine.run_sweep(spec)
            assert engine.stats.windows_computed > 0
        for expected, actual in zip(reference.points, sharded.points):
            assert expected.point == actual.point
            assert json.dumps(shard_to_dict_like(actual.result)) == json.dumps(
                shard_to_dict_like(expected.result)
            )


def shard_to_dict_like(result):
    """Stable rendering of a PredictorResult for equality assertions."""
    return {
        "predictor": result.predictor,
        "total": result.total,
        "correct": result.correct,
        "category_total": {str(k): v for k, v in result.category_total.items()},
        "category_correct": {str(k): v for k, v in result.category_correct.items()},
        "pc_correct": {str(k): v for k, v in result.pc_correct.items()},
    }
