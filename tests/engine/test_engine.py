"""Correctness tests for the parallel campaign execution engine.

The engine's contract: any ``jobs`` value and any cache temperature must
produce results bit-identical to the lockstep serial loop — accuracies,
category breakdowns and the joint ``subset_counts`` — and a warm cache run
must perform zero simulations.
"""

from __future__ import annotations

import pytest

from repro.core.last_value import LastValuePredictor
from repro.core.registry import _REGISTRY, register_predictor
from repro.core.stride import TwoDeltaStridePredictor
from repro.engine import ExecutionEngine, predictor_signature
from repro.simulation.campaign import clear_campaign_cache, run_campaign
from repro.simulation.simulator import (
    SIMULATION_COUNTER,
    merge_shards,
    simulate_shard,
    simulate_trace,
)

#: Small but non-trivial configuration: two benchmarks, three predictor
#: families, enough records that every predictor leaves warm-up.
SCALE = 0.05
BENCHMARKS = ("compress", "m88ksim")
PREDICTORS = ("l", "s2", "fcm2")


def _assert_identical_campaigns(first, second):
    assert first.benchmarks() == second.benchmarks()
    assert first.predictor_names == second.predictor_names
    for benchmark in first.benchmarks():
        assert first.statistics[benchmark] == second.statistics[benchmark]
        left, right = first.simulations[benchmark], second.simulations[benchmark]
        assert left == right
        for name in first.predictor_names:
            assert left.results[name].accuracy == right.results[name].accuracy


class TestShardMerge:
    def test_merge_matches_lockstep(self, compress_trace):
        lockstep = simulate_trace(compress_trace, PREDICTORS)
        shards = {name: simulate_shard(compress_trace, name) for name in PREDICTORS}
        merged = merge_shards(compress_trace, shards)
        assert merged == lockstep

    def test_merge_rejects_record_count_mismatch(self, compress_trace):
        from repro.errors import SimulationError

        shard = simulate_shard(compress_trace, "l")
        shard.record_count += 1
        with pytest.raises(SimulationError):
            merge_shards(compress_trace, {"l": shard})


class TestParallelIdentity:
    def test_parallel_results_bit_identical_to_serial(self):
        serial = ExecutionEngine(jobs=1).run(
            scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS
        )
        parallel = ExecutionEngine(jobs=4).run(
            scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS
        )
        _assert_identical_campaigns(serial, parallel)
        for benchmark in BENCHMARKS:
            assert (
                serial.simulations[benchmark].subset_counts
                == parallel.simulations[benchmark].subset_counts
            )
            assert (
                serial.simulations[benchmark].subset_counts_by_category
                == parallel.simulations[benchmark].subset_counts_by_category
            )


class TestPersistentCache:
    def test_warm_cache_performs_zero_simulations(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold_engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        cold = cold_engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert cold_engine.stats.traces_computed == len(BENCHMARKS)
        assert cold_engine.stats.simulations_computed == len(BENCHMARKS) * len(PREDICTORS)

        SIMULATION_COUNTER.reset()
        warm_engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        warm = warm_engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert SIMULATION_COUNTER.count == 0
        assert warm_engine.stats.simulations_computed == 0
        assert warm_engine.stats.traces_computed == 0
        assert warm_engine.stats.simulations_cached == len(BENCHMARKS) * len(PREDICTORS)
        _assert_identical_campaigns(cold, warm)

    def test_no_cache_flag_recomputes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        ExecutionEngine(jobs=1, cache_dir=cache_dir).run(
            scale=SCALE, predictors=("l",), benchmarks=("compress",)
        )
        engine = ExecutionEngine(jobs=1, cache_dir=cache_dir, use_cache=False)
        engine.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
        assert engine.stats.simulations_computed == 1
        assert engine.stats.simulations_cached == 0

    def test_cache_distinguishes_scales(self, tmp_path):
        cache_dir = tmp_path / "cache"
        ExecutionEngine(jobs=1, cache_dir=cache_dir).run(
            scale=SCALE, predictors=("l",), benchmarks=("compress",)
        )
        other = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        other.run(scale=6 * SCALE, predictors=("l",), benchmarks=("compress",))
        assert other.stats.traces_computed == 1
        assert other.stats.simulations_computed == 1

    def test_identical_traces_share_simulations_across_scales(self, tmp_path):
        # Simulations are keyed by trace *content*: two scales that clamp
        # to the same loop counts produce the same trace, so the shard is
        # reused even though the trace task itself reruns.
        cache_dir = tmp_path / "cache"
        ExecutionEngine(jobs=1, cache_dir=cache_dir).run(
            scale=0.05, predictors=("l",), benchmarks=("compress",)
        )
        other = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        other.run(scale=0.1, predictors=("l",), benchmarks=("compress",))
        assert other.stats.traces_computed == 1
        assert other.stats.simulations_cached == 1


class TestPredictorConfigurationKeys:
    NAME = "engine-test-rebindable"

    def teardown_method(self):
        _REGISTRY.pop(self.NAME, None)
        clear_campaign_cache()

    def test_signature_tracks_rebinding(self):
        register_predictor(self.NAME, LastValuePredictor)
        before = predictor_signature(self.NAME)
        register_predictor(self.NAME, TwoDeltaStridePredictor, overwrite=True)
        after = predictor_signature(self.NAME)
        assert before != after

    def test_signature_tracks_parameters(self):
        register_predictor(self.NAME, LastValuePredictor)
        plain = predictor_signature(self.NAME)
        register_predictor(
            self.NAME, lambda: LastValuePredictor(hysteresis="counter"), overwrite=True
        )
        assert predictor_signature(self.NAME) != plain

    def test_campaign_memo_not_fooled_by_rebinding(self):
        # Regression: the in-process campaign memo used to key on predictor
        # *names* only, so re-binding a name to a different configuration
        # served the stale result.
        clear_campaign_cache()
        register_predictor(self.NAME, LastValuePredictor)
        first = run_campaign(
            scale=SCALE, predictors=(self.NAME,), benchmarks=("compress",)
        )
        register_predictor(self.NAME, TwoDeltaStridePredictor, overwrite=True)
        second = run_campaign(
            scale=SCALE, predictors=(self.NAME,), benchmarks=("compress",)
        )
        first_accuracy = first.simulations["compress"].results[self.NAME].accuracy
        second_accuracy = second.simulations["compress"].results[self.NAME].accuracy
        assert first_accuracy != second_accuracy

    def test_disk_cache_not_fooled_by_rebinding(self, tmp_path):
        cache_dir = tmp_path / "cache"
        register_predictor(self.NAME, LastValuePredictor)
        ExecutionEngine(jobs=1, cache_dir=cache_dir).run(
            scale=SCALE, predictors=(self.NAME,), benchmarks=("compress",)
        )
        register_predictor(self.NAME, TwoDeltaStridePredictor, overwrite=True)
        engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        engine.run(scale=SCALE, predictors=(self.NAME,), benchmarks=("compress",))
        assert engine.stats.simulations_computed == 1
        assert engine.stats.traces_cached == 1
