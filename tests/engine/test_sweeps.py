"""Correctness tests for the engine-backed parameter-sweep layer.

The sweep layer's contract mirrors the campaign engine's: any ``jobs``
value and any cache temperature must reproduce the historical serial
sensitivity loops bit-identically, shared trace work must be deduplicated
before scheduling, and a fully warm sweep must perform zero trace or
simulate computation.
"""

from __future__ import annotations

import pytest

from repro.engine import ExecutionEngine
from repro.engine.sweeps import SweepSpec, clear_sweep_cache, run_sweep
from repro.engine.tasks import SimulateTask
from repro.engine.worker import execute_simulate_task
from repro.errors import SweepError, WorkloadError
from repro.simulation.sensitivity import (
    flag_sensitivity,
    input_sensitivity,
    order_sensitivity,
)
from repro.simulation.simulator import SIMULATION_COUNTER, simulate_trace
from repro.workloads.suite import get_workload

SCALE = 0.05


# --------------------------------------------------------------------------- #
# Reference implementations: the pre-refactor serial loops, verbatim
# --------------------------------------------------------------------------- #
def _serial_input_points(benchmark="gcc", predictor="fcm2", scale=SCALE, inputs=None):
    workload = get_workload(benchmark)
    names = inputs if inputs is not None else workload.input_sets
    points = []
    for input_name in names:
        trace = workload.trace(scale=scale, input_name=input_name)
        result = simulate_trace(trace, (predictor,))
        points.append((input_name, len(trace), result.results[predictor].accuracy))
    return points


def _serial_flag_points(benchmark="gcc", predictor="fcm2", scale=SCALE):
    workload = get_workload(benchmark)
    points = []
    for flag_setting in workload.flag_sets:
        trace = workload.trace(scale=scale, flags=flag_setting)
        result = simulate_trace(trace, (predictor,))
        points.append((flag_setting, len(trace), result.results[predictor].accuracy))
    return points


def _serial_orders(benchmark="gcc", orders=(1, 2, 3), scale=SCALE):
    trace = get_workload(benchmark).trace(scale=scale)
    accuracies = {}
    for order in orders:
        name = f"fcm{order}"
        accuracies[order] = simulate_trace(trace, (name,)).results[name].accuracy
    return accuracies


class TestSerialEquivalence:
    """Engine-backed sensitivity is bit-identical to the serial loops."""

    def test_input_axis_bit_identical(self):
        engine_points = [
            (point.setting, point.predictions, point.accuracy)
            for point in input_sensitivity(scale=SCALE)
        ]
        assert engine_points == _serial_input_points(scale=SCALE)

    def test_flag_axis_bit_identical(self):
        engine_points = [
            (point.setting, point.predictions, point.accuracy)
            for point in flag_sensitivity(scale=SCALE)
        ]
        assert engine_points == _serial_flag_points(scale=SCALE)

    def test_order_axis_bit_identical(self):
        assert order_sensitivity(orders=(1, 2, 3), scale=SCALE) == _serial_orders(
            orders=(1, 2, 3), scale=SCALE
        )

    def test_full_shard_accounting_matches_lockstep(self):
        # Beyond accuracy: category breakdowns and per-PC counts match too.
        spec = SweepSpec.input_study(benchmark="compress", predictor="fcm1", scale=SCALE)
        sweep = ExecutionEngine(jobs=1).run_sweep(spec)
        workload = get_workload("compress")
        for entry in sweep.points:
            trace = workload.trace(scale=SCALE, input_name=entry.point.input_name)
            reference = simulate_trace(trace, ("fcm1",)).results["fcm1"]
            assert entry.result == reference


class TestJobsParity:
    def test_jobs_1_and_jobs_4_bit_identical(self):
        spec = SweepSpec(
            benchmark="gcc",
            scale=SCALE,
            inputs=("gcc.i", "jump.i"),
            predictors=("l", "fcm2"),
        )
        serial = ExecutionEngine(jobs=1).run_sweep(spec)
        parallel = ExecutionEngine(jobs=4).run_sweep(spec)
        assert len(serial.points) == len(parallel.points) == 4
        for left, right in zip(serial.points, parallel.points):
            assert left.point == right.point
            assert left.record_count == right.record_count
            assert left.statistics == right.statistics
            assert left.result == right.result


class TestDeduplication:
    def test_repeated_axis_values_trace_once(self):
        spec = SweepSpec(
            benchmark="compress", scale=SCALE, inputs=("ref", "ref"), predictors=("l",)
        )
        engine = ExecutionEngine(jobs=1)
        sweep = engine.run_sweep(spec)
        assert len(sweep.points) == 2
        assert engine.stats.traces_computed == 1
        assert engine.stats.simulations_computed == 1
        assert sweep.points[0].result == sweep.points[1].result

    def test_order_study_shares_one_trace(self):
        engine = ExecutionEngine(jobs=1)
        engine.run_sweep(SweepSpec.order_study(orders=(1, 2, 3), scale=SCALE))
        assert engine.stats.benchmarks == 1
        assert engine.stats.traces_computed == 1
        assert engine.stats.simulations_computed == 3

    def test_identical_trace_content_shares_simulations(self, tmp_path):
        # Two scales that clamp to the same loop counts produce the same
        # trace bytes; simulations are keyed by content, so the second
        # sweep re-traces but never re-simulates.
        cache_dir = tmp_path / "cache"
        first = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        first.run_sweep(SweepSpec(benchmark="compress", scale=0.05, predictors=("l",)))
        second = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        second.run_sweep(SweepSpec(benchmark="compress", scale=0.1, predictors=("l",)))
        assert second.stats.traces_computed == 1
        assert second.stats.simulations_cached == 1
        assert second.stats.simulations_computed == 0


class TestPersistentCache:
    def test_warm_sweep_is_zero_compute(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = SweepSpec.input_study(scale=SCALE)
        cold_engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        cold = cold_engine.run_sweep(spec)
        assert cold_engine.stats.traces_computed == len(spec.inputs)
        assert cold_engine.stats.simulations_computed == len(spec.inputs)

        SIMULATION_COUNTER.reset()
        warm_engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        warm = warm_engine.run_sweep(spec)
        assert SIMULATION_COUNTER.count == 0
        assert warm_engine.stats.traces_computed == 0
        assert warm_engine.stats.simulations_computed == 0
        assert warm_engine.stats.traces_cached == len(spec.inputs)
        assert warm_engine.stats.simulations_cached == len(spec.inputs)
        for left, right in zip(cold.points, warm.points):
            assert left.point == right.point
            assert left.record_count == right.record_count
            assert left.result == right.result

    def test_campaign_and_sweep_share_trace_entries(self, tmp_path):
        # The sweep's default-configuration point addresses the same cache
        # entry a campaign writes for that benchmark, and vice versa.
        cache_dir = tmp_path / "cache"
        campaign_engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        campaign_engine.run(scale=SCALE, predictors=("l",), benchmarks=("gcc",))

        sweep_engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        sweep_engine.run_sweep(SweepSpec(benchmark="gcc", scale=SCALE, predictors=("l",)))
        assert sweep_engine.stats.traces_cached == 1
        assert sweep_engine.stats.traces_computed == 0
        assert sweep_engine.stats.simulations_cached == 1

    def test_corrupt_cached_trace_is_repaired_and_accounted(self, tmp_path):
        # A stamped entry can pass the cheap warm probe (digest and
        # statistics readable) while its trace body is corrupt.  The sweep
        # must re-trace, report the work honestly (not as a cache hit) and
        # overwrite the bad entry so the repair sticks.
        from repro.engine.codecs import encode_cache_entry
        from repro.engine.tasks import TraceTask

        cache_dir = tmp_path / "cache"
        spec = SweepSpec(benchmark="compress", scale=SCALE, predictors=("l",))
        cold = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        cold_result = cold.run_sweep(spec)

        task = TraceTask.for_workload("compress", SCALE)
        path = cold.cache.path_for("trace", task.cache_key(), format="binary")
        assert path.exists()
        entry = cold.cache.get("trace", task.cache_key())
        entry["trace_binary"] = b"\x00garbage"
        path.write_bytes(encode_cache_entry(task.cache_key(), entry))
        for shard_path in list(cold.cache.entry_paths()):
            if shard_path.parent.parent.name == "simulate":
                shard_path.unlink()

        engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        result = engine.run_sweep(spec)
        assert engine.stats.traces_computed == 1
        assert engine.stats.traces_cached == 0
        assert result.points[0].result == cold_result.points[0].result
        assert cold.cache.verify().ok  # the bad entry was overwritten

    def test_text_cache_format_round_trips(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = SweepSpec(benchmark="compress", scale=SCALE, predictors=("l",))
        text_engine = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_format="text")
        cold = text_engine.run_sweep(spec)
        assert all(path.suffix == ".json" for path in text_engine.cache.entry_paths())
        warm_engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        warm = warm_engine.run_sweep(spec)
        assert warm_engine.stats.simulations_computed == 0
        assert warm.points[0].result == cold.points[0].result


class TestSpecValidation:
    def test_empty_predictors_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(predictors=()).points()

    def test_unknown_input_rejected(self):
        with pytest.raises(WorkloadError):
            SweepSpec(benchmark="gcc", inputs=("no-such-input.i",)).points()

    def test_points_resolve_defaults(self):
        points = SweepSpec(benchmark="gcc", predictors=("l",)).points()
        assert len(points) == 1
        assert points[0].input_name == "gcc.i"
        assert points[0].flags == "ref"


class TestRunSweepFacade:
    def teardown_method(self):
        clear_sweep_cache()

    def test_memoises_by_spec(self):
        spec = SweepSpec(benchmark="compress", scale=SCALE, predictors=("l",))
        first = run_sweep(spec)
        second = run_sweep(spec)
        assert second is first

    def test_use_cache_false_bypasses_memo(self):
        spec = SweepSpec(benchmark="compress", scale=SCALE, predictors=("l",))
        first = run_sweep(spec)
        second = run_sweep(spec, use_cache=False)
        assert second is not first
        assert second.points[0].result == first.points[0].result


class TestBenchmarkAxis:
    """benchmark is a fourth sweep axis (multi-benchmark specs)."""

    def test_multi_benchmark_expansion_order(self):
        spec = SweepSpec(
            benchmarks=("compress", "m88ksim"), scale=SCALE, predictors=("l", "s2")
        )
        points = spec.points()
        assert [point.benchmark for point in points] == [
            "compress", "compress", "m88ksim", "m88ksim",
        ]
        assert [point.predictor for point in points] == ["l", "s2", "l", "s2"]

    def test_benchmarks_override_single_benchmark(self):
        spec = SweepSpec(benchmark="gcc", benchmarks=("compress",), predictors=("l",))
        assert spec.benchmark_axis() == ("compress",)
        assert [point.benchmark for point in spec.points()] == ["compress"]

    def test_defaults_resolve_per_benchmark(self):
        spec = SweepSpec(benchmarks=("gcc", "compress"), predictors=("l",))
        points = spec.points()
        assert points[0].input_name == "gcc.i"  # gcc's declared default
        assert points[1].input_name == "ref"  # compress's declared default

    def test_all_expands_per_benchmark(self):
        spec = SweepSpec(
            benchmarks=("gcc", "compress"), inputs=("all",), predictors=("l",)
        )
        points = spec.points()
        gcc_inputs = [p.input_name for p in points if p.benchmark == "gcc"]
        compress_inputs = [p.input_name for p in points if p.benchmark == "compress"]
        assert tuple(gcc_inputs) == get_workload("gcc").input_sets
        assert tuple(compress_inputs) == get_workload("compress").input_sets

    def test_duplicate_benchmarks_share_trace_and_simulation(self):
        engine = ExecutionEngine(jobs=1)
        sweep = engine.run_sweep(
            SweepSpec(benchmarks=("compress", "compress"), scale=SCALE, predictors=("l",))
        )
        assert len(sweep.points) == 2
        assert engine.stats.traces_computed == 1
        assert engine.stats.simulations_computed == 1
        assert sweep.points[0].result == sweep.points[1].result

    def test_multi_benchmark_matches_single_benchmark_sweeps(self):
        joint = ExecutionEngine(jobs=1).run_sweep(
            SweepSpec(benchmarks=("compress", "m88ksim"), scale=SCALE, predictors=("l",))
        )
        for benchmark in ("compress", "m88ksim"):
            single = ExecutionEngine(jobs=1).run_sweep(
                SweepSpec(benchmark=benchmark, scale=SCALE, predictors=("l",))
            )
            (joint_point,) = joint.by_benchmark(benchmark)
            assert joint_point.point == single.points[0].point
            assert joint_point.result == single.points[0].result
            assert joint_point.record_count == single.points[0].record_count

    def test_multi_benchmark_shares_cache_with_campaign(self, tmp_path):
        cache_dir = tmp_path / "cache"
        ExecutionEngine(jobs=1, cache_dir=cache_dir).run(
            scale=SCALE, predictors=("l",), benchmarks=("compress", "m88ksim")
        )
        engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        engine.run_sweep(
            SweepSpec(benchmarks=("compress", "m88ksim"), scale=SCALE, predictors=("l",))
        )
        assert engine.stats.traces_computed == 0
        assert engine.stats.simulations_computed == 0
        assert engine.stats.traces_cached == 2
        assert engine.stats.simulations_cached == 2

    def test_empty_benchmark_axis_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(benchmarks=(), benchmark="", predictors=("l",)).points()


class TestTraceWireFormat:
    """execute_trace_task returns v3 binary bytes + digest over the wire."""

    def test_trace_outcome_carries_v3_bytes_and_digest(self):
        from hashlib import sha256

        from repro.engine.codecs import payload_trace, payload_trace_digest
        from repro.engine.tasks import TraceTask
        from repro.engine.worker import execute_trace_task
        from repro.trace.io import dumps_trace

        outcome = execute_trace_task(TraceTask.for_workload("compress", SCALE).payload())
        assert "trace_text" not in outcome
        assert isinstance(outcome["trace_binary"], bytes)
        trace = payload_trace(outcome)
        text = dumps_trace(trace)
        assert outcome["digest"] == sha256(text.encode("utf-8")).hexdigest()
        assert payload_trace_digest(outcome) == outcome["digest"]
        reference = get_workload("compress").trace(scale=SCALE)
        assert len(trace) == len(reference)

    def test_binary_outcome_smaller_than_text_form(self):
        from repro.engine.tasks import TraceTask
        from repro.engine.worker import execute_trace_task
        from repro.trace.io import dumps_trace

        outcome = execute_trace_task(TraceTask.for_workload("compress", SCALE).payload())
        reference = get_workload("compress").trace(scale=SCALE)
        assert len(outcome["trace_binary"]) < len(dumps_trace(reference).encode("utf-8")) // 5

    def test_text_payloads_still_accepted_as_fallback(self, tmp_path):
        # A cache entry written by older code (canonical text) still
        # probes, decodes and simulates; see payload_trace's fallback.
        from repro.engine.codecs import payload_trace
        from repro.engine.tasks import TraceTask
        from repro.engine.worker import execute_trace_task
        from repro.trace.io import dumps_trace, loads_trace_binary

        outcome = execute_trace_task(TraceTask.for_workload("compress", SCALE).payload())
        trace = loads_trace_binary(outcome["trace_binary"])
        legacy = {
            "trace_text": dumps_trace(trace),
            "statistics": outcome["statistics"],
        }
        assert dumps_trace(payload_trace(legacy)) == legacy["trace_text"]

        cache_dir = tmp_path / "cache"
        spec = SweepSpec(benchmark="compress", scale=SCALE, predictors=("l",))
        engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        cold = engine.run_sweep(spec)
        # Rewrite the trace entry the way pre-v3-wire code would have.
        task = TraceTask.for_workload("compress", SCALE)
        engine.cache.put("trace", task.cache_key(), legacy, format="json")
        warm = ExecutionEngine(jobs=1, cache_dir=cache_dir)
        result = warm.run_sweep(spec)
        assert warm.stats.traces_computed == 0
        assert result.points[0].result == cold.points[0].result


class TestBinaryWireFormat:
    def test_pool_payload_carries_v3_bytes(self, compress_trace):
        task = SimulateTask(
            benchmark="compress",
            predictor="l",
            trace_digest="d",
            predictor_signature="sig",
        )
        payload = task.payload(compress_trace, inline=False)
        assert "trace_text" not in payload
        assert isinstance(payload["trace_bytes"], bytes)

    def test_worker_decodes_binary_text_and_inline_identically(self, compress_trace):
        from repro.engine.codecs import shard_from_dict
        from repro.engine.fingerprint import predictor_signature
        from repro.trace.io import dumps_trace, dumps_trace_binary

        signature = predictor_signature("s2")
        base = {"predictor": "s2", "signature": signature}
        inline = execute_simulate_task({**base, "trace": compress_trace})
        binary = execute_simulate_task(
            {**base, "trace_bytes": dumps_trace_binary(compress_trace)}
        )
        text = execute_simulate_task({**base, "trace_text": dumps_trace(compress_trace)})
        assert shard_from_dict(inline["shard"]) == shard_from_dict(binary["shard"])
        assert shard_from_dict(inline["shard"]) == shard_from_dict(text["shard"])

    def test_binary_payload_smaller_than_text(self, compress_trace):
        from repro.trace.io import dumps_trace

        task = SimulateTask(
            benchmark="compress", predictor="l", trace_digest="d", predictor_signature="s"
        )
        payload = task.payload(compress_trace, inline=False)
        text = dumps_trace(compress_trace)
        assert len(payload["trace_bytes"]) < len(text.encode("utf-8")) // 10
