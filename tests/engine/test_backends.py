"""Backend-parity suite for the pluggable executor backends.

The backend contract: serial, pool and persistent-worker execution must
produce bit-identical campaign and sweep results — the same cache entries
(same digests, hence same filenames) and the same joint ``subset_counts``
merges — because a backend only decides *where* a work unit executes,
never what it computes.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import ExecutionEngine
from repro.engine.backends import (
    ExecutorBackend,
    PersistentWorkerBackend,
    PoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.engine.sweeps import SweepSpec

SCALE = 0.05
BENCHMARKS = ("compress", "m88ksim")
PREDICTORS = ("l", "s2", "fcm2")
BACKENDS = ("serial", "pool", "persistent")


def _pid_worker(payload: dict) -> dict:
    return {"pid": os.getpid(), "echo": payload.get("value")}


def _entry_names(cache_dir):
    """Relative entry paths of a cache directory (digest-addressed)."""
    return sorted(
        str(path.relative_to(cache_dir))
        for path in cache_dir.glob("*/*/*")
        if path.is_file()
    )


def _campaign_with(backend, tmp_path):
    cache_dir = tmp_path / f"cache-{backend}"
    with ExecutionEngine(jobs=2, cache_dir=cache_dir, backend=backend) as engine:
        result = engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
    return result, cache_dir


class TestCampaignParity:
    def test_backends_bit_identical_and_same_cache_entries(self, tmp_path):
        results = {}
        entries = {}
        for backend in BACKENDS:
            results[backend], cache_dir = _campaign_with(backend, tmp_path)
            entries[backend] = _entry_names(cache_dir)
        reference = results["serial"]
        for backend in ("pool", "persistent"):
            other = results[backend]
            assert other.benchmarks() == reference.benchmarks()
            for benchmark in BENCHMARKS:
                assert other.statistics[benchmark] == reference.statistics[benchmark]
                assert other.simulations[benchmark] == reference.simulations[benchmark]
                assert (
                    other.simulations[benchmark].subset_counts
                    == reference.simulations[benchmark].subset_counts
                )
                assert (
                    other.simulations[benchmark].subset_counts_by_category
                    == reference.simulations[benchmark].subset_counts_by_category
                )
            assert entries[backend] == entries["serial"]

    def test_cache_written_by_one_backend_warms_another(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with ExecutionEngine(jobs=2, cache_dir=cache_dir, backend="persistent") as engine:
            cold = engine.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
        warm_engine = ExecutionEngine(jobs=1, cache_dir=cache_dir, backend="serial")
        warm = warm_engine.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
        assert warm_engine.stats.simulations_computed == 0
        assert warm_engine.stats.traces_computed == 0
        assert warm.simulations["compress"] == cold.simulations["compress"]


class TestKernelParity:
    """Cross-kernel cache identity: the kernel never changes what is cached.

    Cache entries written under ``--kernel vector`` must be byte-identical
    to the scalar ones (same digest-addressed filenames, same bytes), and
    a warm rerun on the *other* kernel must serve everything from cache —
    the kernel is not part of any cache key.
    """

    @staticmethod
    def _campaign(cache_dir, backend, kernel):
        pytest.importorskip("numpy")
        with ExecutionEngine(
            jobs=2, cache_dir=cache_dir, backend=backend, kernel=kernel
        ) as engine:
            result = engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        return result, engine.stats

    @pytest.mark.parametrize("backend", ("serial", "persistent"))
    def test_vector_cache_byte_identical_to_scalar(self, tmp_path, backend):
        caches = {}
        for kernel in ("scalar", "vector"):
            caches[kernel] = tmp_path / f"cache-{backend}-{kernel}"
            self._campaign(caches[kernel], backend, kernel)
        names = _entry_names(caches["scalar"])
        assert names == _entry_names(caches["vector"])
        assert names  # non-vacuous: the campaign wrote entries
        for name in names:
            assert (caches["scalar"] / name).read_bytes() == (
                caches["vector"] / name
            ).read_bytes(), name

    @pytest.mark.parametrize("backend", ("serial", "persistent"))
    @pytest.mark.parametrize(
        "cold_kernel,warm_kernel", (("scalar", "vector"), ("vector", "scalar"))
    )
    def test_cross_kernel_rerun_fully_cached(
        self, tmp_path, backend, cold_kernel, warm_kernel
    ):
        cache_dir = tmp_path / "cache"
        cold, _ = self._campaign(cache_dir, backend, cold_kernel)
        warm, stats = self._campaign(cache_dir, backend, warm_kernel)
        assert stats.simulations_computed == 0
        assert stats.traces_computed == 0
        for benchmark in BENCHMARKS:
            assert warm.simulations[benchmark] == cold.simulations[benchmark]

    def test_invalid_kernel_rejected_at_construction(self):
        with pytest.raises(Exception, match="unknown simulation kernel"):
            ExecutionEngine(kernel="turbo")


class TestSweepParity:
    SPEC = SweepSpec(
        benchmark="gcc",
        scale=SCALE,
        inputs=("gcc.i", "jump.i"),
        predictors=("l", "fcm2"),
    )

    def test_backends_bit_identical_and_same_cache_entries(self, tmp_path):
        results = {}
        entries = {}
        for backend in BACKENDS:
            cache_dir = tmp_path / f"cache-{backend}"
            with ExecutionEngine(jobs=2, cache_dir=cache_dir, backend=backend) as engine:
                results[backend] = engine.run_sweep(self.SPEC)
            entries[backend] = _entry_names(cache_dir)
        reference = results["serial"]
        for backend in ("pool", "persistent"):
            other = results[backend]
            assert len(other.points) == len(reference.points) == 4
            for left, right in zip(other.points, reference.points):
                assert left.point == right.point
                assert left.record_count == right.record_count
                assert left.statistics == right.statistics
                assert left.result == right.result
            assert entries[backend] == entries["serial"]


class TestPersistentWorkers:
    def test_workers_stay_warm_across_dispatches(self):
        with PersistentWorkerBackend(jobs=2) as backend:
            spawned = {process.pid for process in backend._ensure_pool()._pool}
            first = backend.map(_pid_worker, [{"value": i} for i in range(4)])
            second = backend.map(_pid_worker, [{"value": i} for i in range(4)])
        first_pids = {outcome["pid"] for outcome in first}
        second_pids = {outcome["pid"] for outcome in second}
        # No fresh processes between dispatches: every unit of both
        # dispatches ran on one of the originally spawned (warm) workers.
        assert first_pids | second_pids <= spawned
        assert os.getpid() not in spawned
        assert [outcome["echo"] for outcome in first] == [0, 1, 2, 3]

    def test_close_then_reuse_spawns_fresh_workers(self):
        backend = PersistentWorkerBackend(jobs=1)
        first = backend.map(_pid_worker, [{}])
        backend.close()
        second = backend.map(_pid_worker, [{}])
        backend.close()
        assert first[0]["pid"] != os.getpid()
        assert second[0]["pid"] != os.getpid()

    def test_single_task_still_goes_to_workers(self):
        with PersistentWorkerBackend(jobs=1) as backend:
            assert backend.inline_payloads(1) is False
            outcome = backend.map(_pid_worker, [{}])
        assert outcome[0]["pid"] != os.getpid()


class TestBackendSelection:
    def test_default_is_serial_for_one_job(self):
        assert isinstance(ExecutionEngine(jobs=1).backend, SerialBackend)

    def test_default_is_pool_for_many_jobs(self):
        engine = ExecutionEngine(jobs=4)
        assert isinstance(engine.backend, PoolBackend)
        assert engine.backend.jobs == 4

    def test_names_select_backends(self):
        assert isinstance(ExecutionEngine(jobs=4, backend="serial").backend, SerialBackend)
        assert isinstance(ExecutionEngine(jobs=1, backend="pool").backend, PoolBackend)
        assert isinstance(
            ExecutionEngine(jobs=1, backend="persistent").backend,
            PersistentWorkerBackend,
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            ExecutionEngine(backend="distributed")

    def test_instance_is_shared_not_owned(self):
        shared = SerialBackend()
        engine = ExecutionEngine(backend=shared)
        assert engine.backend is shared
        engine.close()  # must not close the caller-owned backend

    def test_engine_owns_backend_built_from_name(self, tmp_path):
        engine = ExecutionEngine(jobs=1, backend="persistent")
        engine.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
        pool = engine.backend._pool
        assert pool is not None
        engine.close()
        assert engine.backend._pool is None

    def test_resolve_backend_passthrough(self):
        backend = PoolBackend(3)
        assert resolve_backend(backend, jobs=1) is backend
        assert isinstance(resolve_backend(None, jobs=1), SerialBackend)
        assert isinstance(resolve_backend(None, jobs=2), PoolBackend)


class TestInlinePayloadPolicy:
    def test_serial_always_inline(self):
        assert SerialBackend().inline_payloads(0) is True
        assert SerialBackend().inline_payloads(100) is True

    def test_pool_inline_only_for_tiny_dispatches(self):
        backend = PoolBackend(4)
        assert backend.inline_payloads(1) is True
        assert backend.inline_payloads(2) is False
        assert PoolBackend(1).inline_payloads(10) is True

    def test_abstract_backend_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ExecutorBackend().inline_payloads(1)
        with pytest.raises(NotImplementedError):
            ExecutorBackend().map(_pid_worker, [{}])
