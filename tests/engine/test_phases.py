"""Unit and equivalence tests for the shared phase executor.

``run_phase`` is the single implementation of the probe → dispatch → put
protocol both the campaign scheduler and the sweep layer configure.  The
unit tests drive it directly with toy specs; the equivalence pins assert
that the phase-executor-backed campaign and sweep paths still reproduce
the pre-refactor goldens — the lockstep simulation loop — bit-identically.
"""

from __future__ import annotations

from repro.engine import ExecutionEngine
from repro.engine.phases import PhaseSpec, PhaseTask, run_phase
from repro.engine.sweeps import SweepSpec
from repro.simulation.simulator import simulate_trace
from repro.workloads.suite import get_workload

SCALE = 0.05


def _echo_worker(payload: dict) -> dict:
    return {"value": payload["value"] * 10}


class _Recorder:
    """Progress listener recording every event in order."""

    def __init__(self):
        self.events = []

    def phase_started(self, phase, total, cached):
        self.events.append(("started", phase, total, cached))

    def task_finished(self, phase, label, cached):
        self.events.append(("finished", phase, label, cached))

    def campaign_finished(self, stats):
        self.events.append(("done",))


def _spec(tasks, seen, accept_cached=None, **overrides):
    def default_accept(uid, payload):
        seen[uid] = payload["value"]
        return True

    def accept_fresh(uid, outcome):
        seen[uid] = outcome["value"]

    options = dict(
        name="trace",
        kind="trace",
        counter="traces",
        tasks=tasks,
        worker=_echo_worker,
        accept_cached=accept_cached or default_accept,
        accept_fresh=accept_fresh,
    )
    options.update(overrides)
    return PhaseSpec(**options)


def _task(uid, value, built=None):
    def build(inline):
        if built is not None:
            built.append((uid, inline))
        return {"value": value}

    return PhaseTask(
        uid=uid, label=f"unit-{uid}", cache_key={"kind": "trace", "unit": uid}, build_payload=build
    )


class TestRunPhase:
    def test_cold_phase_computes_and_populates_cache(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        seen: dict = {}
        computed = run_phase(engine, _spec([_task("a", 1), _task("b", 2)], seen))
        assert [task.uid for task in computed] == ["a", "b"]
        assert seen == {"a": 10, "b": 20}
        assert engine.stats.traces_computed == 2
        assert engine.stats.traces_cached == 0
        assert engine.cache.entry_count() == 2

    def test_warm_phase_serves_from_cache_without_building_payloads(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        run_phase(engine, _spec([_task("a", 1)], {}))

        warm = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        built: list = []
        seen: dict = {}
        computed = run_phase(warm, _spec([_task("a", 1, built)], seen))
        assert computed == []
        assert built == []  # payloads are lazy: never built on the warm path
        assert seen == {"a": 10}
        assert warm.stats.traces_cached == 1
        assert warm.stats.traces_computed == 0

    def test_declined_probe_turns_hit_into_miss(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        run_phase(engine, _spec([_task("a", 1)], {}))

        picky = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        seen: dict = {}
        computed = run_phase(
            picky, _spec([_task("a", 1)], seen, accept_cached=lambda uid, payload: False)
        )
        assert [task.uid for task in computed] == ["a"]
        assert picky.stats.traces_computed == 1
        assert picky.stats.traces_cached == 0

    def test_raising_probe_counts_as_miss(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        run_phase(engine, _spec([_task("a", 1)], {}))

        def explode(uid, payload):
            raise KeyError("corrupt entry")

        again = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        computed = run_phase(again, _spec([_task("a", 1)], {}, accept_cached=explode))
        assert [task.uid for task in computed] == ["a"]
        assert again.stats.traces_computed == 1

    def test_no_cache_everything_computes(self):
        engine = ExecutionEngine(jobs=1)
        seen: dict = {}
        run_phase(engine, _spec([_task("a", 1), _task("b", 2)], seen))
        assert seen == {"a": 10, "b": 20}
        assert engine.stats.traces_computed == 2

    def test_progress_events_and_presatisfied_accounting(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache")
        run_phase(engine, _spec([_task("a", 1)], {}))

        recorder = _Recorder()
        warm = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache", progress=recorder)
        run_phase(
            warm,
            _spec(
                [_task("a", 1), _task("b", 2)],
                {},
                total=5,
                presatisfied_count=2,
                presatisfied_labels=("pre:*",),
            ),
        )
        assert recorder.events[0] == ("started", "trace", 5, 3)  # 2 presatisfied + 1 hit
        assert ("finished", "trace", "pre:*", True) in recorder.events
        assert ("finished", "trace", "unit-a", True) in recorder.events
        assert ("finished", "trace", "unit-b", False) in recorder.events

    def test_inline_flag_follows_backend(self, tmp_path):
        built: list = []
        serial = ExecutionEngine(jobs=1)
        run_phase(serial, _spec([_task("a", 1, built)], {}))
        assert built == [("a", True)]

        built.clear()
        with ExecutionEngine(jobs=2, backend="persistent") as persistent:
            run_phase(persistent, _spec([_task("a", 1, built), _task("b", 2, built)], {}))
        assert built == [("a", False), ("b", False)]

    def test_put_respects_engine_cache_format(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path / "cache", cache_format="text")
        run_phase(engine, _spec([_task("a", 1)], {}))
        paths = list(engine.cache.entry_paths())
        assert paths and all(path.suffix == ".json" for path in paths)


class TestPreRefactorGoldens:
    """The refactored phases still reproduce the lockstep loop exactly."""

    def test_campaign_phases_match_lockstep_goldens(self):
        engine = ExecutionEngine(jobs=1)
        result = engine.run(scale=SCALE, predictors=("l", "fcm2"), benchmarks=("compress",))
        golden_trace = get_workload("compress").trace(scale=SCALE)
        golden = simulate_trace(golden_trace, ("l", "fcm2"))
        assert result.simulations["compress"] == golden

    def test_sweep_phases_match_lockstep_goldens(self):
        spec = SweepSpec(benchmark="gcc", scale=SCALE, inputs=("gcc.i",), predictors=("fcm1",))
        sweep = ExecutionEngine(jobs=1).run_sweep(spec)
        golden_trace = get_workload("gcc").trace(scale=SCALE, input_name="gcc.i")
        golden = simulate_trace(golden_trace, ("fcm1",))
        assert sweep.points[0].result == golden.results["fcm1"]
        assert sweep.points[0].record_count == len(golden_trace)
