"""Remote-backend suite: parity with the local backends and failure paths.

Extends the backend contract of ``tests/engine/test_backends.py`` to the
distributed executor: a two-worker remote run must produce bit-identical
campaign and sweep results — and byte-identical cache entries — to the
serial reference, because a backend only decides *where* a work unit
executes.  On top of parity, this file pins the worker protocol's failure
semantics: handshake rejection on version mismatch, re-dispatch after a
worker dies mid-task, a clean error (never a hang) when every worker is
lost, and robustness to truncated or garbage frames on both sides.
"""

from __future__ import annotations

import os
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine import ExecutionEngine
from repro.engine.backends import resolve_backend
from repro.engine.remote import (
    PROTOCOL_VERSION,
    RemoteBackend,
    WorkerServer,
    decode_wire_value,
    encode_wire_value,
    parse_worker_address,
    recv_frame,
    send_frame,
)
from repro.engine.codecs import CACHE_ENTRY_VERSION
from repro.engine.sweeps import SweepSpec
from repro.engine.tasks import TASK_FORMAT_VERSION
from repro.engine.worker import WORKER_FUNCTIONS, execute_trace_task, worker_function_name
from repro.errors import (
    DispatchError,
    RemoteProtocolError,
    RemoteTaskError,
    RemoteWorkerError,
)

SCALE = 0.05
BENCHMARKS = ("compress", "m88ksim")
PREDICTORS = ("l", "s2", "fcm2")


def _entry_names(cache_dir):
    """Relative entry paths of a cache directory (digest-addressed)."""
    return sorted(
        str(path.relative_to(cache_dir))
        for path in cache_dir.glob("*/*/*")
        if path.is_file()
    )


def _entry_bytes(cache_dir):
    """Map of relative entry path -> file contents."""
    return {
        str(path.relative_to(cache_dir)): path.read_bytes()
        for path in cache_dir.glob("*/*/*")
        if path.is_file()
    }


@pytest.fixture
def worker_pair():
    """Two live in-process worker servers on ephemeral loopback ports."""
    with WorkerServer() as first, WorkerServer() as second:
        yield first, second


# --------------------------------------------------------------------------- #
# Parity with the serial reference
# --------------------------------------------------------------------------- #
class TestRemoteParity:
    def test_campaign_bit_identical_and_same_cache_bytes(self, tmp_path, worker_pair):
        serial_dir = tmp_path / "cache-serial"
        remote_dir = tmp_path / "cache-remote"
        with ExecutionEngine(jobs=1, cache_dir=serial_dir, backend="serial") as engine:
            reference = engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        addresses = [server.address for server in worker_pair]
        with ExecutionEngine(
            jobs=2, cache_dir=remote_dir, backend="remote", workers=addresses
        ) as engine:
            remote = engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
        assert remote.benchmarks() == reference.benchmarks()
        for benchmark in BENCHMARKS:
            assert remote.statistics[benchmark] == reference.statistics[benchmark]
            assert remote.simulations[benchmark] == reference.simulations[benchmark]
            assert (
                remote.simulations[benchmark].subset_counts
                == reference.simulations[benchmark].subset_counts
            )
        # Byte-identical entries under identical names: what a remote
        # worker computed is indistinguishable from local work.
        assert _entry_bytes(remote_dir) == _entry_bytes(serial_dir)
        # Both workers actually participated.
        assert all(server.tasks_served > 0 for server in worker_pair)

    def test_sweep_bit_identical_and_same_cache_entries(self, tmp_path, worker_pair):
        spec = SweepSpec(
            benchmark="gcc", scale=SCALE, inputs=("gcc.i", "jump.i"), predictors=("l", "fcm2")
        )
        serial_dir = tmp_path / "cache-serial"
        remote_dir = tmp_path / "cache-remote"
        with ExecutionEngine(jobs=1, cache_dir=serial_dir, backend="serial") as engine:
            reference = engine.run_sweep(spec)
        addresses = [server.address for server in worker_pair]
        with ExecutionEngine(
            jobs=2, cache_dir=remote_dir, backend="remote", workers=addresses
        ) as engine:
            remote = engine.run_sweep(spec)
        assert len(remote.points) == len(reference.points) == 4
        for left, right in zip(remote.points, reference.points):
            assert left.point == right.point
            assert left.record_count == right.record_count
            assert left.statistics == right.statistics
            assert left.result == right.result
        assert _entry_names(remote_dir) == _entry_names(serial_dir)

    def test_cache_written_by_remote_workers_warms_local_backend(self, tmp_path, worker_pair):
        cache_dir = tmp_path / "cache"
        addresses = [server.address for server in worker_pair]
        with ExecutionEngine(
            jobs=2, cache_dir=cache_dir, backend="remote", workers=addresses
        ) as engine:
            cold = engine.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
        warm_engine = ExecutionEngine(jobs=1, cache_dir=cache_dir, backend="serial")
        warm = warm_engine.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
        assert warm_engine.stats.traces_computed == 0
        assert warm_engine.stats.simulations_computed == 0
        assert warm.simulations["compress"] == cold.simulations["compress"]

    def test_fully_warm_remote_run_never_dials_workers(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with ExecutionEngine(jobs=1, cache_dir=cache_dir) as engine:
            engine.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
        # No worker is listening on this port; a fully warm run must not care.
        warm = ExecutionEngine(
            jobs=1, cache_dir=cache_dir, backend="remote", workers=["127.0.0.1:1"]
        )
        result = warm.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
        assert warm.stats.tasks_computed == 0
        assert set(result.simulations) == {"compress"}


# --------------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------------- #
class TestWireFormat:
    def test_bytes_roundtrip_anywhere_in_payload(self):
        payload = {
            "trace_bytes": b"\x00\x01\xfe",
            "nested": {"blob": b"abc", "text": "abc"},
            "list": [b"", 1, None, ["x", b"y"]],
        }
        assert decode_wire_value(encode_wire_value(payload)) == payload

    def test_frame_roundtrip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"type": "task", "id": 7, "payload": encode_wire_value(b"hi")})
            frame = recv_frame(right)
            assert frame["id"] == 7
            assert decode_wire_value(frame["payload"]) == b"hi"
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_truncated_header_and_body_raise(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00")  # half a length prefix
            left.close()
            with pytest.raises(RemoteProtocolError, match="mid-frame"):
                recv_frame(right)
        finally:
            right.close()
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 100) + b"short")
            left.close()
            with pytest.raises(RemoteProtocolError):
                recv_frame(right)
        finally:
            right.close()

    def test_garbage_length_prefix_rejected_without_huge_read(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(RemoteProtocolError, match="exceeds"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_json_and_non_object_frames_raise(self):
        for body in (b"\xc3(", b"[1, 2]"):
            left, right = socket.socketpair()
            try:
                left.sendall(struct.pack(">I", len(body)) + body)
                with pytest.raises(RemoteProtocolError):
                    recv_frame(right)
            finally:
                left.close()
                right.close()

    def test_parse_worker_address(self):
        assert parse_worker_address("localhost:8750") == ("localhost", 8750)
        assert parse_worker_address("127.0.0.1:0", allow_ephemeral=True) == ("127.0.0.1", 0)
        for bad in ("no-port", ":8750", "host:", "host:notaport", "host:0", "host:70000"):
            with pytest.raises(ValueError):
                parse_worker_address(bad)

    def test_worker_function_names_roundtrip(self):
        for name, function in WORKER_FUNCTIONS.items():
            assert worker_function_name(function) == name
        with pytest.raises(ValueError, match="not a registered worker function"):
            worker_function_name(lambda payload: payload)


# --------------------------------------------------------------------------- #
# Handshake
# --------------------------------------------------------------------------- #
def _dial(server: WorkerServer) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=5.0)
    sock.settimeout(5.0)
    return sock


class TestHandshake:
    def test_version_mismatch_is_rejected(self, worker_pair):
        server, _ = worker_pair
        sock = _dial(server)
        try:
            send_frame(
                sock,
                {
                    "type": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "task_format": TASK_FORMAT_VERSION + 1,
                    "cache_entry": 999,
                },
            )
            reply = recv_frame(sock)
            assert reply["type"] == "reject"
            assert "task_format" in reply["reason"]
            assert "cache_entry" in reply["reason"]
            # The server then closes the connection.
            assert recv_frame(sock) is None
        finally:
            sock.close()
        assert server.handshakes_rejected == 1

    def test_rejected_backend_raises_protocol_error(self, worker_pair, monkeypatch):
        server, _ = worker_pair
        # Skew only the *client's* view of the task format; the in-process
        # server compares against the true module constant.
        import repro.engine.remote as remote_module

        real_versions = remote_module._versions

        def skewed_versions():
            versions = real_versions()
            versions["task_format"] += 1
            return versions

        monkeypatch.setattr(
            remote_module._WorkerLink,
            "connect",
            _patched_connect_with(skewed_versions),
        )
        backend = RemoteBackend([server.address])
        with pytest.raises(RemoteProtocolError, match="rejected the handshake"):
            backend.map(execute_trace_task, [_trace_payload()])
        backend.close()

    def test_mismatch_is_dispatch_error_with_phase_context(self, worker_pair, monkeypatch):
        server, _ = worker_pair
        import repro.engine.remote as remote_module

        real_versions = remote_module._versions

        def skewed_versions():
            versions = real_versions()
            versions["cache_entry"] += 1
            return versions

        monkeypatch.setattr(
            remote_module._WorkerLink,
            "connect",
            _patched_connect_with(skewed_versions),
        )
        engine = ExecutionEngine(jobs=1, backend="remote", workers=[server.address])
        with pytest.raises(DispatchError, match="trace phase"):
            engine.run(scale=SCALE, predictors=("l",), benchmarks=("compress",))
        engine.close()

    def test_non_hello_first_frame_drops_connection(self, worker_pair):
        server, _ = worker_pair
        sock = _dial(server)
        try:
            send_frame(sock, {"type": "task", "id": 1, "function": "trace", "payload": {}})
            assert recv_frame(sock) is None
        finally:
            sock.close()
        _assert_still_serving(server)


def _patched_connect_with(versions_factory):
    """A ``_WorkerLink.connect`` sending versions from ``versions_factory``."""
    import repro.engine.remote as remote_module

    def connect(self, timeout):
        sock = socket.create_connection((self.host, self.port), timeout=timeout)
        sock.settimeout(timeout)
        send_frame(sock, {"type": "hello", "pid": os.getpid(), **versions_factory()})
        reply = recv_frame(sock)
        if reply is None or reply.get("type") == "reject":
            sock.close()
            reason = "closed" if reply is None else reply.get("reason")
            raise RemoteProtocolError(
                f"worker {self.label} rejected the handshake: {reason}"
            )
        sock.settimeout(None)
        self._sock = sock

    return connect


def _trace_payload(benchmark: str = "compress") -> dict:
    return {"benchmark": benchmark, "scale": SCALE, "input": None, "flags": None}


def _assert_still_serving(server: WorkerServer) -> None:
    """The server must keep serving proper clients after a bad one."""
    backend = RemoteBackend([server.address])
    try:
        outcomes = backend.map(execute_trace_task, [_trace_payload()])
        assert "digest" in outcomes[0]
    finally:
        backend.close()


# --------------------------------------------------------------------------- #
# Worker loss and task failure
# --------------------------------------------------------------------------- #
class _RogueWorker:
    """A protocol-speaking server that misbehaves after the handshake.

    ``mode="die-after-task"`` accepts the handshake and the first task
    frame, then drops the connection without answering — the shape of a
    worker process killed mid-task.  ``mode="garbage"`` answers the first
    task frame with bytes that are not a frame at all.
    ``mode="bad-base64"`` answers with a well-framed result whose outcome
    carries an undecodable ``__b64__`` wrapper.
    """

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self.tasks_taken = 0
        self._stopped = threading.Event()
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)  # lets _serve poll the stop flag
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self.port}"

    def _serve(self) -> None:
        while not self._stopped.is_set():
            try:
                sock, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            sock.settimeout(None)
            try:
                hello = recv_frame(sock)
                if hello is None:
                    continue
                send_frame(
                    sock,
                    {
                        "type": "welcome",
                        "pid": os.getpid(),
                        "protocol": hello.get("protocol"),
                        "task_format": hello.get("task_format"),
                        "cache_entry": hello.get("cache_entry"),
                    },
                )
                frame = recv_frame(sock)
                if frame is not None and frame.get("type") == "task":
                    self.tasks_taken += 1
                    if self.mode == "garbage":
                        sock.sendall(b"this is not a frame and never will be")
                    elif self.mode == "bad-base64":
                        send_frame(
                            sock,
                            {
                                "type": "result",
                                "id": frame.get("id"),
                                "outcome": {"__b64__": "!not base64!"},
                            },
                        )
                # die-after-task: fall through and close without replying.
            except (RemoteProtocolError, OSError):
                pass
            finally:
                sock.close()

    def close(self) -> None:
        self._stopped.set()
        self._thread.join(timeout=5.0)
        self._listener.close()


class TestWorkerLoss:
    def test_worker_killed_mid_task_redispatches_to_survivor(self, worker_pair):
        survivor, _ = worker_pair
        rogue = _RogueWorker("die-after-task")
        try:
            backend = RemoteBackend([rogue.address, survivor.address], in_flight=1)
            payloads = [_trace_payload("compress"), _trace_payload("m88ksim")] * 2
            reported = []
            outcomes = backend.map(
                execute_trace_task, payloads, on_result=reported.append
            )
            assert len(outcomes) == len(payloads)
            assert all("digest" in outcome for outcome in outcomes)
            # Duplicate payloads must produce identical outcomes whichever
            # worker (or re-dispatch) computed them.
            assert outcomes[0]["digest"] == outcomes[2]["digest"]
            assert reported == list(range(len(payloads)))
            # The rogue actually took work that then had to be re-dispatched.
            assert rogue.tasks_taken >= 1
            assert rogue.address in backend.lost_workers
            backend.close()
        finally:
            rogue.close()

    def test_undecodable_outcome_counts_as_worker_loss_not_hang(self, worker_pair):
        survivor, _ = worker_pair
        rogue = _RogueWorker("bad-base64")
        try:
            backend = RemoteBackend([rogue.address, survivor.address], in_flight=1)
            outcomes = backend.map(execute_trace_task, [_trace_payload()] * 4)
            assert len(outcomes) == 4
            assert rogue.address in backend.lost_workers
            assert "undecodable outcome" in backend.lost_workers[rogue.address]
            backend.close()
        finally:
            rogue.close()

    def test_raising_progress_callback_propagates_instead_of_hanging(self, worker_pair):
        server, _ = worker_pair
        backend = RemoteBackend([server.address])

        def explode(index):
            raise RuntimeError("listener bug")

        started = time.monotonic()
        with pytest.raises(RuntimeError, match="listener bug"):
            backend.map(execute_trace_task, [_trace_payload()] * 2, on_result=explode)
        assert time.monotonic() - started < 30.0
        backend.close()

    def test_duplicate_worker_addresses_are_deduplicated(self, worker_pair):
        server, _ = worker_pair
        backend = RemoteBackend([server.address, server.address], in_flight=1)
        assert len(backend.addresses) == 1
        outcomes = backend.map(execute_trace_task, [_trace_payload()] * 3)
        assert len(outcomes) == 3
        assert not backend.lost_workers
        backend.close()

    def test_garbage_reply_counts_as_worker_loss(self, worker_pair):
        survivor, _ = worker_pair
        rogue = _RogueWorker("garbage")
        try:
            backend = RemoteBackend([rogue.address, survivor.address], in_flight=1)
            outcomes = backend.map(execute_trace_task, [_trace_payload()] * 4)
            assert len(outcomes) == 4
            assert rogue.address in backend.lost_workers
            backend.close()
        finally:
            rogue.close()

    def test_all_workers_dead_is_clean_error_not_hang(self):
        first = _RogueWorker("die-after-task")
        second = _RogueWorker("die-after-task")
        try:
            backend = RemoteBackend([first.address, second.address], in_flight=1)
            started = time.monotonic()
            with pytest.raises(RemoteWorkerError, match="left unexecuted"):
                backend.map(execute_trace_task, [_trace_payload()] * 4)
            assert time.monotonic() - started < 30.0
            assert set(backend.lost_workers) == {first.address, second.address}
            backend.close()
        finally:
            first.close()
            second.close()

    def test_unreachable_workers_fail_cleanly(self):
        backend = RemoteBackend(["127.0.0.1:1"], connect_timeout=0.5)
        with pytest.raises(RemoteWorkerError, match="no remote workers reachable"):
            backend.map(execute_trace_task, [_trace_payload()])
        backend.close()

    def test_lost_worker_stays_excluded_but_survivors_serve_next_dispatch(
        self, worker_pair
    ):
        survivor, _ = worker_pair
        rogue = _RogueWorker("die-after-task")
        try:
            backend = RemoteBackend([rogue.address, survivor.address], in_flight=1)
            backend.map(execute_trace_task, [_trace_payload()] * 3)
            assert rogue.address in backend.lost_workers
            # Second dispatch runs entirely on the survivor.
            outcomes = backend.map(execute_trace_task, [_trace_payload("m88ksim")])
            assert "digest" in outcomes[0]
            backend.close()
        finally:
            rogue.close()


class TestTaskErrors:
    def test_task_exception_propagates_with_remote_traceback(self, worker_pair, monkeypatch):
        server, _ = worker_pair

        def boom(payload):
            raise ValueError("synthetic task failure")

        monkeypatch.setitem(WORKER_FUNCTIONS, "boom", boom)
        backend = RemoteBackend([server.address])
        with pytest.raises(RemoteTaskError, match="synthetic task failure") as excinfo:
            backend.map(boom, [{"value": 1}])
        assert "ValueError" in (excinfo.value.remote_traceback or "")
        backend.close()

    def test_unknown_function_is_task_error(self, worker_pair):
        server, _ = worker_pair
        sock = _dial(server)
        try:
            send_frame(
                sock,
                {
                    "type": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "task_format": TASK_FORMAT_VERSION,
                    "cache_entry": CACHE_ENTRY_VERSION,
                },
            )
            assert recv_frame(sock)["type"] == "welcome"
            send_frame(sock, {"type": "task", "id": 1, "function": "nope", "payload": {}})
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert "unknown worker function" in reply["error"]
        finally:
            sock.close()


# --------------------------------------------------------------------------- #
# Backend selection / plumbing
# --------------------------------------------------------------------------- #
class TestRemoteSelection:
    def test_resolve_backend_builds_remote(self):
        backend = resolve_backend("remote", jobs=3, workers=["127.0.0.1:8750"])
        assert isinstance(backend, RemoteBackend)
        assert backend.name == "remote"
        assert backend.in_flight == 3
        assert backend.inline_payloads(1) is False
        backend.close()

    def test_resolve_backend_requires_workers(self):
        with pytest.raises(ValueError, match="--workers"):
            resolve_backend("remote", jobs=1)

    def test_engine_accepts_workers_argument(self):
        engine = ExecutionEngine(jobs=2, backend="remote", workers=["127.0.0.1:8750"])
        assert isinstance(engine.backend, RemoteBackend)
        engine.close()

    def test_remote_backend_rejects_empty_addresses(self):
        with pytest.raises(ValueError, match="at least one worker"):
            RemoteBackend([])


# --------------------------------------------------------------------------- #
# CLI: worker serve end to end
# --------------------------------------------------------------------------- #
class TestWorkerServeCli:
    def test_serve_campaign_and_graceful_shutdown(self, tmp_path):
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = repo_src + (os.pathsep + existing if existing else "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "serve", "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            ready = process.stdout.readline()
            assert "worker listening on " in ready
            address = ready.strip().rpartition(" ")[2]
            from repro.cli import main

            cache_dir = tmp_path / "cache"
            exit_code = main(
                [
                    "campaign",
                    "--scale",
                    str(SCALE),
                    "--benchmarks",
                    "compress",
                    "--predictors",
                    "l",
                    "--backend",
                    "remote",
                    "--workers",
                    address,
                    "--cache-dir",
                    str(cache_dir),
                ]
            )
            assert exit_code == 0
            assert _entry_names(cache_dir)  # remote worker populated the cache
            process.terminate()
            output, _ = process.communicate(timeout=10)
            assert process.returncode == 0
            assert "worker stopped" in output
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

    def test_unreachable_fleet_exits_cleanly_with_phase_context(self, capsys):
        from repro.cli import main

        code = main(
            [
                "campaign",
                "--scale",
                str(SCALE),
                "--benchmarks",
                "compress",
                "--predictors",
                "l",
                "--workers",
                "127.0.0.1:1",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "trace phase" in err
        assert "no remote workers reachable" in err

    def test_experiments_unreachable_fleet_exits_cleanly(self, capsys):
        from repro.cli import main
        from repro.simulation.campaign import clear_campaign_cache, reset_campaign_defaults

        clear_campaign_cache()  # a memoised campaign would never dispatch
        try:
            code = main(
                ["experiments", "table2", "--scale", "0.11", "--workers", "127.0.0.1:1"]
            )
        finally:
            reset_campaign_defaults()
            clear_campaign_cache()
        assert code == 1
        assert "no remote workers reachable" in capsys.readouterr().err

    def test_workers_flag_implies_remote_and_requires_pairing(self, capsys):
        from repro.cli import main

        # --backend remote without --workers is a usage error.
        assert main(["campaign", "--quick", "--backend", "remote"]) == 2
        assert "--workers" in capsys.readouterr().err
        # --workers with a non-remote backend is a usage error.
        assert (
            main(
                [
                    "campaign",
                    "--quick",
                    "--backend",
                    "serial",
                    "--workers",
                    "127.0.0.1:8750",
                ]
            )
            == 2
        )
        assert "--workers" in capsys.readouterr().err
