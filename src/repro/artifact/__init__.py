"""One-command reproduction of the paper's deliverables.

The package behind ``repro-vp reproduce``: a committed manifest
(``artifact/manifest.json``) enumerates every table and figure of
Sazeides & Smith (MICRO-30, 1997) with the experiment entry point,
exact parameters, and expected-result digest; :func:`reproduce`
regenerates them through the engine's phase executor into an isolated
``results/<run-id>/`` directory, and ``--check`` diffs the regenerated
numbers cell by cell against the committed goldens under
``artifact/expected/``.
"""

from repro.artifact.check import (
    CellDiff,
    CheckReport,
    DeliverableCheck,
    check_deliverable,
    diff_payloads,
    load_expected,
)
from repro.artifact.manifest import (
    MANIFEST_VERSION,
    ArtifactManifest,
    Deliverable,
    canonical_json,
    default_manifest_path,
    load_manifest,
    payload_digest,
)
from repro.artifact.runner import DeliverableRun, ReproductionReport, reproduce, result_payload
from repro.errors import ArtifactError

__all__ = [
    "MANIFEST_VERSION",
    "ArtifactError",
    "ArtifactManifest",
    "CellDiff",
    "CheckReport",
    "Deliverable",
    "DeliverableCheck",
    "DeliverableRun",
    "ReproductionReport",
    "canonical_json",
    "check_deliverable",
    "default_manifest_path",
    "diff_payloads",
    "load_expected",
    "load_manifest",
    "payload_digest",
    "reproduce",
    "result_payload",
]
