"""Golden checking: diff regenerated deliverables against committed results.

``repro-vp reproduce --check`` regenerates every selected deliverable and
compares its canonical payload against the committed golden under
``artifact/expected/``.  The comparison is digest-first (one SHA-256 over
the canonical JSON — a match proves bit-identical numbers), and on
mismatch it degrades into a **per-cell diff** naming the table, the row
and the column of every differing value, so a drifted result reads like a
review comment rather than a hash soup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.artifact.manifest import Deliverable, payload_digest
from repro.errors import ArtifactError

#: Cap on rendered cell diffs per deliverable; a wholesale divergence
#: (e.g. a different scale) would otherwise print every cell of every grid.
MAX_RENDERED_DIFFS = 20


@dataclass(frozen=True)
class CellDiff:
    """One differing cell, addressed the way a reader finds it."""

    deliverable: str
    grid: str
    row: str
    column: str
    expected: object
    actual: object

    def render(self) -> str:
        return (
            f"{self.deliverable} [{self.grid}] row {self.row!r}, column {self.column!r}: "
            f"expected {self.expected!r}, got {self.actual!r}"
        )


@dataclass
class DeliverableCheck:
    """Outcome of checking one deliverable against its golden.

    ``status`` is ``"ok"`` (digests match), ``"mismatch"`` (numbers
    differ — ``diffs``/``messages`` carry the detail), or
    ``"missing-expected"`` (no committed golden to compare against).
    """

    identifier: str
    status: str
    expected_digest: str | None = None
    actual_digest: str | None = None
    diffs: list[CellDiff] = field(default_factory=list)
    messages: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_payload(self) -> dict:
        return {
            "identifier": self.identifier,
            "status": self.status,
            "expected_digest": self.expected_digest,
            "actual_digest": self.actual_digest,
            "cell_diffs": [diff.render() for diff in self.diffs],
            "messages": list(self.messages),
        }


@dataclass
class CheckReport:
    """All deliverable checks of one reproduction run."""

    checks: list[DeliverableCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> list[DeliverableCheck]:
        return [check for check in self.checks if not check.ok]

    def render(self) -> str:
        """The human report the CLI prints on failure (one line per problem)."""
        lines: list[str] = []
        for check in self.failures():
            lines.append(f"check failed: {check.identifier} ({check.status})")
            for message in check.messages:
                lines.append(f"  {message}")
            shown = check.diffs[:MAX_RENDERED_DIFFS]
            for diff in shown:
                lines.append(f"  {diff.render()}")
            hidden = len(check.diffs) - len(shown)
            if hidden > 0:
                lines.append(f"  ... and {hidden} more differing cell(s)")
        if not lines:
            lines.append(f"check passed: {len(self.checks)} deliverable(s) match the goldens")
        return "\n".join(lines)


def _grid_cell_diffs(identifier: str, expected: Mapping, actual: Mapping) -> list[CellDiff]:
    """Cell-level diff of one grid payload pair.

    Rows are addressed by their first cell (every experiment grid's first
    column is the row label: benchmark, category, sequence class, x value)
    and columns by the header, so a diff line names what the paper's
    reader would point at.
    """
    title = str(expected.get("title") or actual.get("title") or "?")
    expected_columns = list(expected.get("columns", []))
    actual_columns = list(actual.get("columns", []))
    columns = expected_columns if len(expected_columns) >= len(actual_columns) else actual_columns
    diffs: list[CellDiff] = []
    expected_rows = list(expected.get("rows", []))
    actual_rows = list(actual.get("rows", []))
    for row_index in range(max(len(expected_rows), len(actual_rows))):
        expected_row = expected_rows[row_index] if row_index < len(expected_rows) else []
        actual_row = actual_rows[row_index] if row_index < len(actual_rows) else []
        label = str((expected_row or actual_row or ["?"])[0])
        for column_index in range(max(len(expected_row), len(actual_row))):
            expected_cell = (
                expected_row[column_index] if column_index < len(expected_row) else "<absent>"
            )
            actual_cell = actual_row[column_index] if column_index < len(actual_row) else "<absent>"
            if expected_cell != actual_cell:
                column = (
                    str(columns[column_index]) if column_index < len(columns) else f"#{column_index}"
                )
                diffs.append(
                    CellDiff(identifier, title, label, column, expected_cell, actual_cell)
                )
    return diffs


def diff_payloads(identifier: str, expected: Mapping, actual: Mapping) -> DeliverableCheck:
    """Compare two canonical result payloads cell by cell."""
    check = DeliverableCheck(
        identifier=identifier,
        status="ok",
        expected_digest=payload_digest(_digestable(expected)),
        actual_digest=payload_digest(_digestable(actual)),
    )
    if check.expected_digest == check.actual_digest:
        return check
    check.status = "mismatch"
    expected_grids = list(expected.get("grids", []))
    actual_grids = list(actual.get("grids", []))
    if len(expected_grids) != len(actual_grids):
        check.messages.append(
            f"grid count differs: expected {len(expected_grids)}, got {len(actual_grids)}"
        )
    for index in range(min(len(expected_grids), len(actual_grids))):
        check.diffs.extend(_grid_cell_diffs(identifier, expected_grids[index], actual_grids[index]))
    if not check.diffs and not check.messages:
        # Same numbers, different metadata (title/column rename): still a
        # mismatch — the golden pins the whole canonical payload.
        check.messages.append("payload metadata differs (titles or columns)")
    return check


def _digestable(payload: Mapping) -> dict:
    """The digest-covered subset of a result payload (drops 'digest' itself)."""
    return {key: value for key, value in payload.items() if key != "digest"}


def load_expected(manifest_dir: Path, deliverable: Deliverable) -> Mapping | None:
    """Load a committed golden payload; ``None`` when it does not exist."""
    path = manifest_dir / f"{deliverable.identifier}.json"
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"unreadable golden {path}: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise ArtifactError(f"golden {path} is not a JSON object")
    return payload


def check_deliverable(
    deliverable: Deliverable, actual_payload: Mapping, expected_payload: Mapping | None
) -> DeliverableCheck:
    """Check one regenerated payload against its golden (and the manifest).

    Also cross-checks the manifest's ``expected_digest`` against the golden
    file itself, so a manifest/golden skew (edited one, forgot the other)
    is reported rather than silently trusted.
    """
    if expected_payload is None:
        return DeliverableCheck(
            identifier=deliverable.identifier,
            status="missing-expected",
            expected_digest=deliverable.expected_digest,
            actual_digest=payload_digest(_digestable(actual_payload)),
            messages=[
                f"no committed golden artifact/expected/{deliverable.identifier}.json; "
                "record one with 'repro-vp reproduce --update-expected'"
            ],
        )
    check = diff_payloads(deliverable.identifier, _digestable(expected_payload), actual_payload)
    if (
        deliverable.expected_digest is not None
        and deliverable.expected_digest != check.expected_digest
    ):
        check.messages.append(
            f"manifest expected_digest {deliverable.expected_digest} does not match the "
            f"committed golden's digest {check.expected_digest} (manifest/golden skew)"
        )
        if check.status == "ok":
            check.status = "mismatch"
    return check
