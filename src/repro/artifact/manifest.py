"""The committed artifact manifest: every paper deliverable, enumerated.

``artifact/manifest.json`` at the repository root is the single source of
truth for what "reproducing the paper" means: one entry per deliverable
(Tables 1–7, Figures 1–11 including the 4–7 panel, the Section 4.4
sensitivity sweeps) naming the experiment entry point that regenerates it,
the exact parameters (scale — the substrate is otherwise fully
deterministic), and the SHA-256 digest of the canonical result the
committed golden under ``artifact/expected/`` records.

:func:`load_manifest` resolves the committed manifest from any working
directory (explicit path → ``$PWD/artifact/manifest.json`` → the copy next
to this installed package's source tree), and :meth:`ArtifactManifest.select`
implements the CLI's ``--only`` filtering (exact identifiers, the ``tables``
/ ``figures`` groups, or shell-style globs like ``table*``).
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.errors import ArtifactError

#: Bump when the manifest or golden payload layout changes incompatibly.
MANIFEST_VERSION = 1

#: Repository-root directory holding the committed manifest and goldens.
ARTIFACT_DIRNAME = "artifact"
MANIFEST_FILENAME = "manifest.json"
EXPECTED_DIRNAME = "expected"

_KINDS = ("table", "figure")


def canonical_json(payload: object) -> str:
    """The canonical JSON encoding digests are computed over.

    Sorted keys, no whitespace, full float precision (``repr``-exact, so a
    digest match means bit-identical numbers, the same property the engine
    cache pins across backends/kernels/sharding).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: object) -> str:
    """SHA-256 hex digest of a payload's canonical JSON form."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Deliverable:
    """One reproducible paper deliverable (a table or a figure).

    Attributes
    ----------
    identifier:
        The paper's name for it (``"table2"``, ``"figure3"``, ``"figure4_7"``).
    kind:
        ``"table"`` or ``"figure"`` (what ``--only tables``/``figures`` selects).
    title:
        Human-readable caption (mirrors the experiment artifact's title).
    experiment:
        Key into :data:`repro.reporting.experiments.ALL_EXPERIMENTS`.
    params:
        Keyword arguments for the experiment entry point (``{"scale": 1.0}``
        for the campaign/sweep-backed deliverables, ``{}`` for the
        micro-experiments).
    expected_digest:
        SHA-256 of the canonical result payload, matching the committed
        golden under ``artifact/expected/<identifier>.json``; ``None``
        until goldens have been recorded (``reproduce --update-expected``).
    """

    identifier: str
    kind: str
    title: str
    experiment: str
    params: Mapping[str, object] = field(default_factory=dict)
    expected_digest: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ArtifactError(
                f"deliverable {self.identifier!r}: kind must be one of {_KINDS}, got {self.kind!r}"
            )

    def to_payload(self) -> dict:
        payload: dict = {
            "identifier": self.identifier,
            "kind": self.kind,
            "title": self.title,
            "experiment": self.experiment,
            "params": dict(self.params),
        }
        if self.expected_digest is not None:
            payload["expected_digest"] = self.expected_digest
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "Deliverable":
        try:
            identifier = payload["identifier"]
            kind = payload["kind"]
            title = payload["title"]
            experiment = payload["experiment"]
        except (KeyError, TypeError) as exc:
            raise ArtifactError(f"malformed deliverable entry: {payload!r}") from exc
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise ArtifactError(f"deliverable {identifier!r}: params must be an object")
        return cls(
            identifier=str(identifier),
            kind=str(kind),
            title=str(title),
            experiment=str(experiment),
            params=dict(params),
            expected_digest=payload.get("expected_digest"),
        )


@dataclass
class ArtifactManifest:
    """The parsed ``artifact/manifest.json``.

    ``path`` records where the manifest was loaded from (``None`` for
    manifests built in memory); the committed goldens live in the
    ``expected/`` directory next to it (:meth:`expected_dir`).
    """

    paper: str
    deliverables: tuple[Deliverable, ...]
    version: int = MANIFEST_VERSION
    path: Path | None = None

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for deliverable in self.deliverables:
            if deliverable.identifier in seen:
                raise ArtifactError(f"duplicate deliverable {deliverable.identifier!r}")
            seen.add(deliverable.identifier)

    def identifiers(self) -> tuple[str, ...]:
        return tuple(deliverable.identifier for deliverable in self.deliverables)

    def get(self, identifier: str) -> Deliverable:
        for deliverable in self.deliverables:
            if deliverable.identifier == identifier:
                return deliverable
        raise ArtifactError(
            f"unknown deliverable {identifier!r}; known: {', '.join(self.identifiers())}"
        )

    def select(self, only: Sequence[str] | None = None) -> tuple[Deliverable, ...]:
        """Resolve ``--only`` selectors to deliverables, in manifest order.

        Each selector is matched case-insensitively as an exact identifier,
        a kind group (``table``/``tables``/``figure``/``figures``) or a
        shell-style glob over identifiers (``table*``).  A selector that
        matches nothing is an error — a typo must not silently reproduce
        an empty artifact.
        """
        if not only:
            return self.deliverables
        chosen: dict[str, Deliverable] = {}
        for selector in only:
            token = selector.strip().lower()
            if token in ("table", "tables", "figure", "figures"):
                matches = [d for d in self.deliverables if d.kind == token.rstrip("s")]
            else:
                matches = [
                    d
                    for d in self.deliverables
                    if d.identifier.lower() == token
                    or fnmatch.fnmatchcase(d.identifier.lower(), token)
                ]
            if not matches:
                raise ArtifactError(
                    f"--only {selector!r} matches no deliverable; "
                    f"known: {', '.join(self.identifiers())} (or tables/figures)"
                )
            for match in matches:
                chosen[match.identifier] = match
        return tuple(d for d in self.deliverables if d.identifier in chosen)

    def with_digests(self, digests: Mapping[str, str]) -> "ArtifactManifest":
        """A copy whose deliverables carry the given expected digests."""
        updated = tuple(
            replace(d, expected_digest=digests.get(d.identifier, d.expected_digest))
            for d in self.deliverables
        )
        return ArtifactManifest(
            paper=self.paper, deliverables=updated, version=self.version, path=self.path
        )

    def expected_dir(self) -> Path:
        if self.path is None:
            raise ArtifactError("manifest has no path; cannot locate expected/ goldens")
        return self.path.parent / EXPECTED_DIRNAME

    def to_payload(self) -> dict:
        return {
            "version": self.version,
            "paper": self.paper,
            "deliverables": [d.to_payload() for d in self.deliverables],
        }

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, object], path: Path | None = None
    ) -> "ArtifactManifest":
        if not isinstance(payload, Mapping):
            raise ArtifactError("manifest must be a JSON object")
        version = payload.get("version")
        if version != MANIFEST_VERSION:
            raise ArtifactError(
                f"unsupported manifest version {version!r} (this build reads {MANIFEST_VERSION})"
            )
        entries = payload.get("deliverables")
        if not isinstance(entries, Iterable) or isinstance(entries, (str, bytes)):
            raise ArtifactError("manifest 'deliverables' must be a list")
        deliverables = tuple(Deliverable.from_payload(entry) for entry in entries)
        if not deliverables:
            raise ArtifactError("manifest lists no deliverables")
        return cls(
            paper=str(payload.get("paper", "")),
            deliverables=deliverables,
            version=MANIFEST_VERSION,
            path=path,
        )

    def save(self, path: Path | None = None) -> Path:
        """Write the manifest as stable, reviewable JSON; returns the path."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ArtifactError("manifest has no path; pass one to save()")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )
        self.path = target
        return target


def default_manifest_path() -> Path:
    """Locate the committed manifest from any working directory.

    Preference order: ``$PWD/artifact/manifest.json`` (and upward, so the
    CLI works from a subdirectory of a clone), then the copy that ships
    next to this package's source tree (``src/repro/../../artifact``).
    """
    current = Path.cwd()
    for directory in (current, *current.parents):
        candidate = directory / ARTIFACT_DIRNAME / MANIFEST_FILENAME
        if candidate.is_file():
            return candidate
    packaged = Path(__file__).resolve().parents[3] / ARTIFACT_DIRNAME / MANIFEST_FILENAME
    if packaged.is_file():
        return packaged
    raise ArtifactError(
        f"no {ARTIFACT_DIRNAME}/{MANIFEST_FILENAME} found from {current} upward "
        "(run from a clone, or pass --manifest PATH)"
    )


def load_manifest(path: str | Path | None = None) -> ArtifactManifest:
    """Load and validate a manifest (the committed one when ``path`` is None)."""
    manifest_path = Path(path) if path is not None else default_manifest_path()
    try:
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise ArtifactError(f"manifest not found: {manifest_path}") from exc
    except (OSError, ValueError) as exc:
        raise ArtifactError(f"unreadable manifest {manifest_path}: {exc}") from exc
    return ArtifactManifest.from_payload(payload, path=manifest_path)
