"""The reproduction runner: manifest in, isolated results directory out.

:func:`reproduce` drives every selected deliverable of the committed
artifact manifest through the existing experiment entry points — and
therefore through the engine's phase executor, so the configured
``--backend``/``--jobs``/``--kernel``/``--shard-window``/``--cache-dir``
defaults apply and a warm cache makes the whole reproduction ~free — and
writes one isolated results directory per run::

    results/<run-id>/
    ├── manifest.json     run manifest (argv, python/platform/package and
    │                     protocol versions, artifact annotations) — the
    │                     PR-6 telemetry layer's manifest
    ├── metrics.jsonl     telemetry spans/counters for the whole run
    ├── summary.json      per-deliverable digests, timings, check results,
    │                     aggregated engine stats
    └── tables/
        ├── <id>.json     canonical payload + digest (golden format)
        ├── <id>.csv      machine-readable cells, full precision
        └── <id>.md       GitHub-Markdown rendering

With ``check=True`` the regenerated payloads are diffed against the
committed goldens under ``artifact/expected/`` (see
:mod:`repro.artifact.check`); with ``update_expected=True`` the goldens
and the manifest's ``expected_digest`` fields are rewritten from this run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Sequence

from repro.artifact.check import CheckReport, DeliverableCheck, check_deliverable, load_expected
from repro.artifact.manifest import (
    ArtifactManifest,
    Deliverable,
    load_manifest,
    payload_digest,
)
from repro.errors import ArtifactError
from repro.reporting.experiments import ALL_EXPERIMENTS, ExperimentArtifact, run_experiment

TABLES_DIRNAME = "tables"
SUMMARY_NAME = "summary.json"

#: EngineStats fields summed across the engine runs one reproduction makes
#: (the suite campaign plus one sweep per sensitivity deliverable).
_STATS_FIELDS = (
    "benchmarks",
    "predictors",
    "traces_computed",
    "traces_cached",
    "simulations_computed",
    "simulations_cached",
    "windows_computed",
    "windows_cached",
    "total_seconds",
    "trace_seconds",
    "simulate_seconds",
    "cache_hit_bytes",
    "cache_write_bytes",
)


def result_payload(deliverable: Deliverable, artifact: ExperimentArtifact) -> dict:
    """The canonical (digest-covered) payload of one regenerated deliverable."""
    return {
        "identifier": deliverable.identifier,
        "title": artifact.title,
        "grids": [grid.to_payload() for grid in artifact.grids],
    }


@dataclass
class DeliverableRun:
    """One deliverable's regeneration within a reproduction run."""

    deliverable: Deliverable
    artifact: ExperimentArtifact
    payload: dict
    digest: str
    seconds: float
    files: dict[str, str] = field(default_factory=dict)
    check: DeliverableCheck | None = None

    def to_payload(self) -> dict:
        return {
            "identifier": self.deliverable.identifier,
            "kind": self.deliverable.kind,
            "title": self.artifact.title,
            "experiment": self.deliverable.experiment,
            "params": dict(self.deliverable.params),
            "digest": self.digest,
            "expected_digest": self.deliverable.expected_digest,
            "seconds": self.seconds,
            "files": dict(self.files),
            "check": self.check.to_payload() if self.check is not None else None,
        }


@dataclass
class ReproductionReport:
    """Everything one :func:`reproduce` call produced."""

    run_id: str
    run_dir: Path
    manifest: ArtifactManifest
    manifest_digest: str
    runs: list[DeliverableRun]
    stats: object | None
    check_report: CheckReport | None
    summary: dict

    @property
    def ok(self) -> bool:
        return self.check_report is None or self.check_report.ok


def _allocate_run_dir(out_dir: str | Path, run_id: str | None) -> tuple[Path, str]:
    """Create ``out_dir/<run-id>/`` (suffixing on the rare collision)."""
    from repro.engine.telemetry import default_run_id

    root = Path(out_dir)
    base = run_id or default_run_id()
    candidate, suffix = base, 1
    while (root / candidate).exists():
        suffix += 1
        candidate = f"{base}-{suffix}"
    run_dir = root / candidate
    run_dir.mkdir(parents=True)
    return run_dir, candidate


def _resolved_params(deliverable: Deliverable, scale: float | None) -> dict:
    """The experiment kwargs, with an optional whole-run scale override."""
    factory = ALL_EXPERIMENTS.get(deliverable.experiment)
    if factory is None:
        raise ArtifactError(
            f"deliverable {deliverable.identifier!r} names unknown experiment "
            f"{deliverable.experiment!r}; known: {', '.join(sorted(ALL_EXPERIMENTS))}"
        )
    params = dict(deliverable.params)
    if scale is not None and "scale" in factory.__code__.co_varnames:
        params["scale"] = scale
    return params


def _aggregate_stats(stats_list: Sequence[object]) -> object | None:
    """Sum EngineStats across the distinct engine runs one reproduction made."""
    if not stats_list:
        return None
    from repro.engine.scheduler import EngineStats

    total = EngineStats()
    for stats in stats_list:
        for name in _STATS_FIELDS:
            setattr(total, name, getattr(total, name) + getattr(stats, name, 0))
    return total


def _stats_payload(stats: object | None) -> dict | None:
    if stats is None:
        return None
    return {name: getattr(stats, name) for name in _STATS_FIELDS}


def _write_deliverable_files(
    run_dir: Path, run: DeliverableRun
) -> None:
    """Write tables/<id>.{json,csv,md}; records relative paths on the run."""
    tables_dir = run_dir / TABLES_DIRNAME
    tables_dir.mkdir(exist_ok=True)
    identifier = run.deliverable.identifier
    json_path = tables_dir / f"{identifier}.json"
    json_path.write_text(
        json.dumps({**run.payload, "digest": run.digest}, indent=2) + "\n", encoding="utf-8"
    )
    csv_parts = []
    for grid in run.artifact.grids:
        if grid.title:
            csv_parts.append(f"# {grid.title}\n")
        csv_parts.append(grid.to_csv())
    (tables_dir / f"{identifier}.csv").write_text("".join(csv_parts), encoding="utf-8")
    markdown = "\n\n".join(grid.to_markdown() for grid in run.artifact.grids) + "\n"
    (tables_dir / f"{identifier}.md").write_text(markdown, encoding="utf-8")
    run.files = {
        "json": f"{TABLES_DIRNAME}/{identifier}.json",
        "csv": f"{TABLES_DIRNAME}/{identifier}.csv",
        "markdown": f"{TABLES_DIRNAME}/{identifier}.md",
    }


def _update_expected(manifest: ArtifactManifest, runs: Sequence[DeliverableRun]) -> Path:
    """Rewrite the committed goldens and manifest digests from this run."""
    expected_dir = manifest.expected_dir()
    expected_dir.mkdir(parents=True, exist_ok=True)
    digests: dict[str, str] = {}
    for run in runs:
        path = expected_dir / f"{run.deliverable.identifier}.json"
        path.write_text(
            json.dumps({**run.payload, "digest": run.digest}, indent=2) + "\n", encoding="utf-8"
        )
        digests[run.deliverable.identifier] = run.digest
    updated = manifest.with_digests(digests)
    updated.save()
    manifest.deliverables = updated.deliverables
    return expected_dir


def reproduce(
    manifest: ArtifactManifest | str | Path | None = None,
    *,
    only: Sequence[str] | None = None,
    out_dir: str | Path = "results",
    check: bool = False,
    update_expected: bool = False,
    scale: float | None = None,
    run_id: str | None = None,
    argv: list[str] | None = None,
) -> ReproductionReport:
    """Regenerate the manifest's deliverables into ``out_dir/<run-id>/``.

    Engine configuration (backend, jobs, kernel, shard window, cache)
    comes from the process-wide defaults
    (:func:`repro.simulation.campaign.set_campaign_defaults` — the CLI's
    engine flags); telemetry for the run is recorded into the results
    directory itself, never a separate ``--telemetry-dir``.

    ``scale`` overrides every scale-taking deliverable's parameter — for
    exploratory runs only, so it refuses to combine with ``check`` or
    ``update_expected`` (goldens pin the manifest's own parameters).
    """
    import repro.simulation.campaign as campaign
    from repro.engine.telemetry import RunTelemetry

    if scale is not None and (check or update_expected):
        raise ArtifactError("--scale overrides the manifest; it cannot combine with --check or --update-expected")
    if not isinstance(manifest, ArtifactManifest):
        manifest = load_manifest(manifest)
    deliverables = manifest.select(only)
    manifest_digest = payload_digest(manifest.to_payload())

    run_dir, run_id = _allocate_run_dir(out_dir, run_id)
    telemetry = RunTelemetry(run_dir, run_id=run_id, command="reproduce", argv=argv)
    telemetry.annotate(
        artifact_manifest=str(manifest.path) if manifest.path else None,
        artifact_manifest_digest=manifest_digest,
        artifact_deliverables=[d.identifier for d in deliverables],
        artifact_scale_override=scale,
        artifact_check=check,
        # The substrate is fully deterministic: workloads and traces are
        # functions of (benchmark, scale, input, flags) alone, with no
        # free-running RNG seed to record.
        deterministic=True,
    )
    prior_telemetry = campaign._ENGINE_DEFAULTS.telemetry
    campaign.set_campaign_defaults(telemetry=telemetry)

    runs: list[DeliverableRun] = []
    check_report = CheckReport() if check else None
    expected_dir = manifest.expected_dir() if check else None
    stats_seen: list[object] = []
    stats_ids: set[int] = set()
    try:
        with telemetry.span("reproduce", deliverables=len(deliverables)):
            for deliverable in deliverables:
                params = _resolved_params(deliverable, scale)
                started = perf_counter()
                with telemetry.span(
                    "artifact.deliverable",
                    deliverable=deliverable.identifier,
                    experiment=deliverable.experiment,
                ):
                    artifact = run_experiment(deliverable.experiment, **params)
                seconds = perf_counter() - started
                payload = result_payload(deliverable, artifact)
                run = DeliverableRun(
                    deliverable=deliverable,
                    artifact=artifact,
                    payload=payload,
                    digest=payload_digest(payload),
                    seconds=seconds,
                )
                _write_deliverable_files(run_dir, run)
                if check_report is not None:
                    expected = load_expected(expected_dir, deliverable)
                    run.check = check_deliverable(deliverable, payload, expected)
                    check_report.checks.append(run.check)
                telemetry.count("artifact.deliverables")
                runs.append(run)
                stats = campaign.last_engine_stats()
                if stats is not None and id(stats) not in stats_ids:
                    stats_ids.add(id(stats))
                    stats_seen.append(stats)
        if update_expected:
            _update_expected(manifest, runs)
        stats = _aggregate_stats(stats_seen)
        summary = {
            "run_id": run_id,
            "artifact_manifest": str(manifest.path) if manifest.path else None,
            "artifact_manifest_digest": manifest_digest,
            "paper": manifest.paper,
            "scale_override": scale,
            "checked": check,
            "ok": check_report.ok if check_report is not None else True,
            "deliverables": [run.to_payload() for run in runs],
            "engine_stats": _stats_payload(stats),
        }
        (run_dir / SUMMARY_NAME).write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        telemetry.annotate(
            artifact_summary=SUMMARY_NAME,
            artifact_ok=summary["ok"],
        )
    finally:
        telemetry.close()
        # Later engine runs in this process must not write into this run's
        # (now closed) sink — restore whatever default was active before.
        campaign._ENGINE_DEFAULTS.telemetry = prior_telemetry

    return ReproductionReport(
        run_id=run_id,
        run_dir=run_dir,
        manifest=manifest,
        manifest_digest=manifest_digest,
        runs=runs,
        stats=stats,
        check_report=check_report,
        summary=summary,
    )
