"""The shared probe → dispatch → put protocol of every engine phase.

Campaign phases (:class:`~repro.engine.scheduler.ExecutionEngine`) and
sweep phases (:mod:`repro.engine.sweeps`) execute the same three-step
protocol per batch of work units:

1. **probe** — look each unit up in the persistent cache and hand the
   stored payload to the caller's *materialisation policy*; a policy that
   declines (corrupt or unusable entry) turns the hit back into a miss;
2. **dispatch** — build payloads for the remaining units (lazily, so warm
   runs never pay for them) and execute them on the engine's
   :class:`~repro.engine.backends.ExecutorBackend`, in input order;
3. **put** — decode each fresh outcome and write it back to the cache in
   the engine's configured storage format.

:func:`run_phase` is that protocol, once; :class:`PhaseSpec` carries
everything that varies between phases — cache kind, cache-key builder
(already baked into each :class:`PhaseTask`), payload builder, worker
function, materialisation policy and result decoder.  The campaign's
phases materialise cached traces eagerly (a corrupt embedded trace is
re-traced immediately); the sweep's trace phase probes cheaply and defers
decoding (lazy-with-repair, see :class:`repro.engine.sweeps._LazyTrace`).
Both are just different ``accept_cached`` callables over the same
executor, so protocol changes — a distributed backend, a new cache
envelope — land here once instead of once per code path.

Progress accounting: ``phase_started`` reports ``total`` units (defaults
to ``len(tasks)``) of which ``presatisfied_count + cache hits`` were warm;
one ``task_finished`` event fires per presatisfied label, per cache hit
and — from inside the backend dispatch — per computed unit, always in
input order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from repro.engine.telemetry import TELEMETRY_KEY
from repro.errors import DispatchError


@dataclass(frozen=True)
class PhaseTask:
    """One work unit of a phase.

    ``uid`` is the caller's identity for the unit (a benchmark name, a
    ``(benchmark, predictor)`` pair, a sweep trace-config tuple, ...) and
    is what the materialisation policy and result decoder receive.
    ``build_payload`` is called only when the unit actually has to run,
    with ``inline=True`` when the backend executes in-process (the payload
    may then carry live objects and skip serialisation).
    """

    uid: Hashable
    label: str
    cache_key: Mapping
    build_payload: Callable[[bool], dict]


@dataclass
class PhaseSpec:
    """Everything that varies between phases of the shared protocol.

    Parameters
    ----------
    name:
        Progress phase name (``"trace"`` / ``"simulate"``).
    kind:
        Cache kind the units read and write.
    counter:
        Which :class:`~repro.engine.scheduler.EngineStats` counter pair
        the phase accounts to (``"traces"`` or ``"simulations"``).
    tasks:
        The work units, in dispatch order.
    worker:
        Worker function executed per pending payload (module-level, so
        every backend can pickle it by reference).
    accept_cached:
        Materialisation policy: given ``(uid, stored payload)`` decide
        whether the entry is usable — decoding eagerly (campaign) or
        merely probing (sweep) — and record whatever the caller needs.
        Returning ``False`` (or raising) turns the hit into a miss, so a
        corrupt cache degrades to recomputation, never failure.
    accept_fresh:
        Result decoder: given ``(uid, worker outcome)`` record the result.
        Runs before the outcome is written back to the cache; exceptions
        propagate (a fresh outcome that does not decode is a bug, not a
        cache problem).
    total / presatisfied_count / presatisfied_labels:
        Progress-accounting overrides for phases where some units were
        satisfied before the phase began (the campaign's merge-level hits
        cover whole benchmarks): ``total`` defaults to ``len(tasks)``,
        the presatisfied units are reported warm with the given labels.
    """

    name: str
    kind: str
    counter: str
    tasks: Sequence[PhaseTask]
    worker: Callable[[dict], dict]
    accept_cached: Callable[[Hashable, dict], bool]
    accept_fresh: Callable[[Hashable, dict], None]
    total: int | None = None
    presatisfied_count: int = 0
    presatisfied_labels: Sequence[str] = field(default_factory=tuple)


def run_phase(engine, spec: PhaseSpec) -> list[PhaseTask]:
    """Execute one phase on ``engine``; returns the tasks actually computed.

    ``engine`` supplies the shared machinery: ``cache`` (may be ``None``),
    ``cache_format``, ``progress``, ``stats``, ``telemetry`` and the
    ``backend`` the dispatch runs on (via ``ExecutionEngine._run_tasks``).
    The whole phase runs under a ``phase`` telemetry span; each computed
    unit's worker-side sidecar (:data:`~repro.engine.telemetry.TELEMETRY_KEY`)
    is stripped from the outcome — before decoding and caching, so entries
    stay byte-identical whether telemetry is on or off — and re-emitted as
    a ``task`` span carrying the worker's own execute time.  Results are
    bit-identical for every backend and cache temperature: the protocol
    only decides *where* each unit executes and *which* units execute at
    all, never what they compute.
    """
    cache = engine.cache
    telemetry = engine.telemetry
    phase_started_perf = time.perf_counter()
    with telemetry.span(
        "phase", phase=spec.name, backend=engine.backend.name
    ) as phase_span:
        pending: list[PhaseTask] = []
        hits: list[PhaseTask] = []
        for task in spec.tasks:
            cached = cache.get(spec.kind, task.cache_key) if cache else None
            usable = False
            if cached is not None:
                try:
                    usable = spec.accept_cached(task.uid, cached)
                except Exception:
                    usable = False
            if usable:
                engine.stats.record(spec.counter, cached=True)
                hits.append(task)
            else:
                pending.append(task)

        total = len(spec.tasks) if spec.total is None else spec.total
        phase_span.set(
            total=total,
            cached=spec.presatisfied_count + len(hits),
            computed=len(pending),
        )
        engine.progress.phase_started(
            spec.name, total, spec.presatisfied_count + len(hits)
        )
        for label in spec.presatisfied_labels:
            engine.progress.task_finished(spec.name, label, cached=True)
        for task in hits:
            engine.progress.task_finished(spec.name, task.label, cached=True)

        inline = engine.backend.inline_payloads(len(pending))
        try:
            outcomes = engine._run_tasks(
                spec.worker,
                spec.name,
                [task.label for task in pending],
                [task.build_payload(inline) for task in pending],
            )
        except DispatchError as error:
            # Backend-infrastructure failures (remote workers lost, protocol
            # violations) get the phase context stamped on before they reach
            # the caller; the cache is untouched for the undispatched units,
            # so a rerun resumes exactly where this phase stopped.
            raise type(error)(
                f"{spec.name} phase failed to dispatch {len(pending)} pending "
                f"unit(s) on the {engine.backend.name!r} backend: {error}"
            ) from error
        for task, outcome in zip(pending, outcomes):
            # The observability sidecar never reaches the decoder or the
            # cache: entries stay byte-identical with telemetry on or off.
            sidecar = outcome.pop(TELEMETRY_KEY, None) if isinstance(outcome, dict) else None
            if sidecar:
                extra = {}
                if sidecar.get("kernel") is not None:
                    # Simulation tasks report which kernel actually ran;
                    # a vector request that degraded to the scalar loop is
                    # counted per predictor so `repro-vp inspect` can name
                    # the configurations behind a mystery slowdown.
                    extra["kernel"] = sidecar["kernel"]
                    extra["kernel_fallback"] = bool(sidecar.get("kernel_fallback"))
                telemetry.span_record(
                    "task",
                    sidecar.get("execute_seconds", 0.0),
                    phase=spec.name,
                    label=task.label,
                    worker_pid=sidecar.get("pid"),
                    function=sidecar.get("function"),
                    **extra,
                )
                if sidecar.get("kernel_fallback"):
                    telemetry.count("kernel.fallback")
                    predictor = sidecar.get("predictor")
                    if predictor:
                        telemetry.count(f"kernel.fallback.{predictor}")
            spec.accept_fresh(task.uid, outcome)
            engine.stats.record(spec.counter, cached=False)
            if cache:
                cache.put(spec.kind, task.cache_key, outcome, format=engine.cache_format)
    engine.stats.record_seconds(spec.counter, time.perf_counter() - phase_started_perf)
    return pending
