"""Parallel campaign execution engine with a persistent result cache.

A campaign ("trace every benchmark, simulate every predictor over every
trace") decomposes into independent work units:

* **trace tasks** — run one workload at one scale into a value trace;
* **simulate tasks** — run one predictor over one trace into a
  :class:`~repro.simulation.simulator.PredictorShard`;
* **merge** — recombine the per-predictor shards of one trace into the
  joint :class:`~repro.simulation.simulator.SimulationResult`.

The :class:`ExecutionEngine` schedules those units through the shared
phase executor (:mod:`repro.engine.phases` — one probe → dispatch → put
protocol for campaigns and sweeps alike) onto a pluggable
:class:`ExecutorBackend` (:mod:`repro.engine.backends`: in-process serial,
per-dispatch ``multiprocessing`` pool, or persistent warm workers), and
backs both task kinds with a content-addressed on-disk cache keyed by
(workload, scale, trace digest, predictor configuration), so warm reruns
skip tracing and simulation entirely — across processes, not just within
one.  Entries are stored either as plain JSON or as compressed binary
envelopes carrying v3 binary traces (:mod:`repro.engine.codecs`; the
default), and :class:`ResultCache` provides size accounting, LRU/age
garbage collection and integrity checking over both — surfaced on the
command line as ``repro-vp cache``.  ``docs/architecture.md`` maps the
package; ``repro.simulation.campaign.run_campaign`` is a thin façade over
it.
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    ExecutorBackend,
    PersistentWorkerBackend,
    PoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.engine.cache import (
    CacheStats,
    GCReport,
    KindStats,
    ResultCache,
    VerifyReport,
)
from repro.engine.codecs import decode_cache_entry, encode_cache_entry
from repro.engine.fingerprint import (
    key_digest,
    predictor_signature,
    predictors_fingerprint,
    trace_digest,
)
from repro.engine.phases import PhaseSpec, PhaseTask, run_phase
from repro.engine.progress import ConsoleProgress, NullProgress, ProgressListener
from repro.engine.remote import RemoteBackend, WorkerServer, parse_worker_address
from repro.engine.scheduler import EngineStats, ExecutionEngine
from repro.engine.sharding import (
    WindowedUnit,
    merge_window_shards,
    normalize_shard_window,
    plan_shard_windows,
    plan_windows,
    resolve_shard_window,
    run_windowed_simulations,
)
from repro.engine.sweeps import (
    SweepPoint,
    SweepPointResult,
    SweepResult,
    SweepSpec,
    clear_sweep_cache,
    execute_sweep,
    run_sweep,
)
from repro.engine.tasks import SimulateTask, SimulateWindowTask, TraceTask
from repro.engine.telemetry import (
    NULL_TELEMETRY,
    TELEMETRY_KEY,
    NullTelemetry,
    RunTelemetry,
    Telemetry,
    read_manifest,
    read_metrics,
    summarize_run,
)

__all__ = [
    "BACKEND_NAMES",
    "CacheStats",
    "ConsoleProgress",
    "EngineStats",
    "ExecutionEngine",
    "ExecutorBackend",
    "GCReport",
    "KindStats",
    "NULL_TELEMETRY",
    "NullProgress",
    "NullTelemetry",
    "PersistentWorkerBackend",
    "PhaseSpec",
    "PhaseTask",
    "PoolBackend",
    "ProgressListener",
    "RemoteBackend",
    "ResultCache",
    "SerialBackend",
    "SimulateTask",
    "SimulateWindowTask",
    "SweepPoint",
    "SweepPointResult",
    "SweepResult",
    "SweepSpec",
    "TELEMETRY_KEY",
    "Telemetry",
    "RunTelemetry",
    "TraceTask",
    "VerifyReport",
    "WindowedUnit",
    "WorkerServer",
    "clear_sweep_cache",
    "execute_sweep",
    "merge_window_shards",
    "normalize_shard_window",
    "plan_shard_windows",
    "plan_windows",
    "resolve_shard_window",
    "run_windowed_simulations",
    "parse_worker_address",
    "read_manifest",
    "read_metrics",
    "resolve_backend",
    "run_phase",
    "run_sweep",
    "summarize_run",
    "decode_cache_entry",
    "encode_cache_entry",
    "key_digest",
    "predictor_signature",
    "predictors_fingerprint",
    "trace_digest",
]
