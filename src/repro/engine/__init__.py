"""Parallel campaign execution engine with a persistent result cache.

A campaign ("trace every benchmark, simulate every predictor over every
trace") decomposes into independent work units:

* **trace tasks** — run one workload at one scale into a value trace;
* **simulate tasks** — run one predictor over one trace into a
  :class:`~repro.simulation.simulator.PredictorShard`;
* **merge** — recombine the per-predictor shards of one trace into the
  joint :class:`~repro.simulation.simulator.SimulationResult`.

The :class:`ExecutionEngine` schedules those units across a
``multiprocessing`` worker pool (``jobs=1`` runs everything in-process) and
backs both task kinds with a content-addressed on-disk cache keyed by
(workload, scale, trace digest, predictor configuration), so warm reruns
skip tracing and simulation entirely — across processes, not just within
one.  ``repro.simulation.campaign.run_campaign`` is a thin façade over this
package.
"""

from repro.engine.cache import ResultCache
from repro.engine.fingerprint import (
    key_digest,
    predictor_signature,
    predictors_fingerprint,
    trace_digest,
)
from repro.engine.progress import ConsoleProgress, NullProgress, ProgressListener
from repro.engine.scheduler import EngineStats, ExecutionEngine
from repro.engine.tasks import SimulateTask, TraceTask

__all__ = [
    "ConsoleProgress",
    "EngineStats",
    "ExecutionEngine",
    "NullProgress",
    "ProgressListener",
    "ResultCache",
    "SimulateTask",
    "TraceTask",
    "key_digest",
    "predictor_signature",
    "predictors_fingerprint",
    "trace_digest",
]
