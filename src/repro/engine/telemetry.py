"""Run telemetry: structured spans, counters and per-run manifests.

Every engine run so far has been observable only through
:mod:`repro.engine.progress`'s console lines — nothing machine-readable
survives the process.  This module is the persistent counterpart: a
:class:`RunTelemetry` sink that records **spans** (named durations with a
run id, wall-clock start, monotonic duration, parent span and structured
attributes), **events** (point-in-time records) and **counters**
(aggregated totals, flushed on close) as JSON Lines, plus a
``manifest.json`` describing the run itself (argv, package and protocol
versions, backend, workers).  ``repro-vp inspect RUN_DIR`` renders the
pair back into a human summary; every layer of the engine — phases,
backends, the remote fleet, the result cache — emits into it.

Design constraints, in order:

1. **Off means free.**  The library default is :data:`NULL_TELEMETRY`,
   whose every method is a no-op returning shared singletons; hot paths
   may call it unconditionally.  Results and cache entries are
   bit-identical with telemetry on or off — telemetry only *observes*
   (worker-side timings ride back in a reserved sidecar key,
   :data:`TELEMETRY_KEY`, that the phase executor strips before results
   are decoded or cached).
2. **One run, one directory.**  Constructing a :class:`RunTelemetry`
   truncates ``metrics.jsonl`` and rewrites ``manifest.json`` in its
   directory, so a run directory always describes exactly one run.
3. **Thread-safe.**  The remote backend's driver threads and the worker
   server's connection threads emit concurrently; all sink state is
   guarded by one lock and records are written as whole lines.

JSONL record schema (one JSON object per line; also documented with
examples in ``docs/observability.md``):

``{"run": run_id, "type": "span",    "name": ..., "id": N, "parent": N|null,
   "t": wall_seconds, "dt": duration_seconds, "attrs": {...}}``
``{"run": run_id, "type": "event",   "name": ..., "t": wall_seconds,
   "attrs": {...}}``
``{"run": run_id, "type": "counter", "name": ..., "value": total}``

``t`` is a wall-clock timestamp (for humans and cross-host correlation);
``dt`` is always measured with :func:`time.perf_counter`, so clock jumps
can never skew a duration.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import threading
import time
from pathlib import Path
from typing import Iterator, TextIO

#: Bump when the JSONL record schema or manifest layout changes
#: incompatibly; stamped into every manifest.
TELEMETRY_VERSION = 1

#: Reserved top-level key of a worker outcome carrying observability
#: sidecar data (worker-side execute seconds, worker pid).  The phase
#: executor pops it before the outcome is decoded or cached, so cache
#: entries and results are byte-identical with telemetry on or off.
TELEMETRY_KEY = "__telemetry__"

MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.jsonl"


def default_run_id() -> str:
    """A fresh run identifier: wall-clock tag plus pid (``20260808-142501-12345``).

    Shared by :class:`RunTelemetry` and the reproduction artifact's
    results-directory allocation (``results/<run-id>/``), so a run's
    directory name and the ``run`` field of every record in its
    ``metrics.jsonl`` agree by construction.
    """
    return time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"


class _NullSpan:
    """Shared inert span; every operation is a no-op."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Telemetry:
    """The telemetry interface — and, as the base class, its null sink.

    Instrumented code holds some ``Telemetry`` and calls it
    unconditionally; :class:`NullTelemetry` (the library default) keeps
    every call allocation-free, :class:`RunTelemetry` persists them.
    """

    #: Whether records actually go anywhere (lets hot paths skip building
    #: expensive attributes; cheap attributes need no guard).
    enabled = False
    #: Identifier stamped on every record; ``None`` for the null sink.
    run_id: str | None = None

    def span(self, name: str, **attrs) -> "_NullSpan | Span":
        """Open a live span (context manager); duration measured on exit."""
        return _NULL_SPAN

    def span_record(self, name: str, seconds: float, **attrs) -> None:
        """Record a span whose duration was measured elsewhere.

        Used for worker-side timings: the worker measured ``seconds`` with
        its own monotonic clock and shipped the number back, so the parent
        records it as a completed span instead of re-timing anything.
        """

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event."""

    def count(self, name: str, value: int | float = 1) -> None:
        """Accumulate into a named counter (flushed as records on close)."""

    def annotate(self, **fields) -> None:
        """Merge fields into the run manifest."""

    def close(self) -> None:
        """Flush counters and finalise the manifest; idempotent."""

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullTelemetry(Telemetry):
    """The always-cheap default sink: records vanish, nothing touches disk."""


#: Shared null sink instance (the default everywhere a telemetry is held).
NULL_TELEMETRY = NullTelemetry()


class Span:
    """One live span of a :class:`RunTelemetry`; use as a context manager.

    Attributes may be added mid-flight with :meth:`set` (e.g. counts known
    only after the work ran).  The record is emitted on ``__exit__``, with
    ``dt`` measured by :func:`time.perf_counter`; an exception escaping the
    block stamps an ``error`` attribute before the record is written.
    """

    __slots__ = (
        "_telemetry",
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "started_wall",
        "_started_perf",
    )

    def __init__(
        self,
        telemetry: "RunTelemetry",
        name: str,
        span_id: int,
        parent_id: int | None,
        attrs: dict,
    ) -> None:
        self._telemetry = telemetry
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.started_wall = time.time()
        self._started_perf = time.perf_counter()

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, exc_tb) -> None:
        if exc is not None:
            self.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        self._telemetry._finish_span(self, time.perf_counter() - self._started_perf)
        return None


def _engine_versions() -> dict:
    """The protocol/schema versions a manifest pins (imported lazily:
    the engine modules this reads from themselves import this module)."""
    from repro.engine.codecs import CACHE_ENTRY_VERSION
    from repro.engine.remote import PROTOCOL_VERSION
    from repro.engine.tasks import TASK_FORMAT_VERSION

    return {
        "protocol_version": PROTOCOL_VERSION,
        "task_format_version": TASK_FORMAT_VERSION,
        "cache_entry_version": CACHE_ENTRY_VERSION,
    }


def _package_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro-vp")
    except Exception:
        return "unknown"


class RunTelemetry(Telemetry):
    """Telemetry sink persisting one run into one directory.

    Parameters
    ----------
    directory:
        Run directory; created if missing.  ``metrics.jsonl`` is truncated
        and ``manifest.json`` rewritten, so the directory describes
        exactly one run.
    run_id:
        Identifier stamped on every record; defaults to a
        wall-clock-plus-pid tag (``20260808-142501-12345``).
    argv:
        Command line recorded in the manifest (defaults to ``sys.argv``).
    command:
        Logical command name (``"campaign"``, ``"sweep"``, ...), if any.
    """

    enabled = True

    def __init__(
        self,
        directory: str | Path,
        run_id: str | None = None,
        argv: list[str] | None = None,
        command: str | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id or default_run_id()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_span_id = 0
        self._counters: dict[str, int | float] = {}
        self._closed = False
        self._manifest: dict = {
            "telemetry_version": TELEMETRY_VERSION,
            "run_id": self.run_id,
            "created_wall": time.time(),
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "command": command,
            "argv": list(sys.argv if argv is None else argv),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "package_version": _package_version(),
            **_engine_versions(),
        }
        self._stream: TextIO = open(self.directory / METRICS_NAME, "w", encoding="utf-8")
        self._write_manifest()

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def _emit(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._closed:
                return
            self._stream.write(line + "\n")
            self._stream.flush()

    def _span_stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _allocate_span_id(self) -> int:
        with self._lock:
            self._next_span_id += 1
            return self._next_span_id

    def span(self, name: str, **attrs) -> Span:
        stack = self._span_stack()
        span = Span(
            self,
            name,
            span_id=self._allocate_span_id(),
            parent_id=stack[-1] if stack else None,
            attrs=attrs,
        )
        stack.append(span.span_id)
        return span

    def _finish_span(self, span: Span, duration: float) -> None:
        stack = self._span_stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        self._emit(
            {
                "run": self.run_id,
                "type": "span",
                "name": span.name,
                "id": span.span_id,
                "parent": span.parent_id,
                "t": span.started_wall,
                "dt": duration,
                "attrs": span.attrs,
            }
        )

    def span_record(self, name: str, seconds: float, **attrs) -> None:
        stack = self._span_stack()
        self._emit(
            {
                "run": self.run_id,
                "type": "span",
                "name": name,
                "id": self._allocate_span_id(),
                "parent": stack[-1] if stack else None,
                "t": time.time(),
                "dt": seconds,
                "attrs": attrs,
            }
        )

    def event(self, name: str, **attrs) -> None:
        self._emit(
            {
                "run": self.run_id,
                "type": "event",
                "name": name,
                "t": time.time(),
                "attrs": attrs,
            }
        )

    def count(self, name: str, value: int | float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counters(self) -> dict[str, int | float]:
        """Snapshot of the accumulated counters (mainly for tests)."""
        with self._lock:
            return dict(self._counters)

    # ------------------------------------------------------------------ #
    # Manifest
    # ------------------------------------------------------------------ #
    def annotate(self, **fields) -> None:
        with self._lock:
            if self._closed:
                return
            self._manifest.update(fields)
        self._write_manifest()

    def _write_manifest(self) -> None:
        path = self.directory / MANIFEST_NAME
        temporary = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with self._lock:
            body = json.dumps(self._manifest, indent=2, sort_keys=False, default=str)
        temporary.write_text(body + "\n", encoding="utf-8")
        os.replace(temporary, path)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            for name in sorted(self._counters):
                self._stream.write(
                    json.dumps(
                        {
                            "run": self.run_id,
                            "type": "counter",
                            "name": name,
                            "value": self._counters[name],
                        },
                        separators=(",", ":"),
                    )
                    + "\n"
                )
            self._stream.flush()
            self._stream.close()
            self._manifest["finished_wall"] = time.time()
            self._closed = True
        self._write_manifest()


# --------------------------------------------------------------------------- #
# Reading a recorded run back
# --------------------------------------------------------------------------- #
def read_manifest(directory: str | Path) -> dict:
    """Load a run directory's ``manifest.json``."""
    with open(Path(directory) / MANIFEST_NAME, "r", encoding="utf-8") as handle:
        return json.load(handle)


def read_metrics(directory: str | Path) -> Iterator[dict]:
    """Yield every record of a run directory's ``metrics.jsonl``.

    Skips blank and truncated trailing lines (a run killed mid-write
    still inspects cleanly) but raises on structurally bad files.
    """
    path = Path(directory) / METRICS_NAME
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated final line from a killed writer
            if isinstance(record, dict):
                yield record


def _collect_metrics(directory: Path, problems: list[str]) -> list[dict]:
    """Read ``metrics.jsonl`` tolerantly, describing damage in ``problems``.

    A missing or unreadable file and malformed lines become one-line
    problem descriptions instead of exceptions, so ``summarize_run`` can
    still render whatever part of the run *was* recorded.  Raises
    :class:`FileNotFoundError` only when the file is absent — the caller
    decides whether that alone makes the directory "not a run".
    """
    records: list[dict] = []
    malformed = 0
    with open(directory / METRICS_NAME, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                malformed += 1
    if malformed:
        problems.append(
            f"{METRICS_NAME} is damaged: skipped {malformed} malformed line(s) "
            "(truncated or interleaved write?)"
        )
    return records


def summarize_run(directory: str | Path) -> dict:
    """Aggregate a run directory into the structure ``repro-vp inspect`` renders.

    Returns a plain dict (JSON-renderable) with the manifest, per-phase
    breakdown, per-task spans sorted slowest-first, cache counters with a
    derived hit ratio, per-worker utilization records, the raw counter
    totals and a ``problems`` list describing any damage tolerated along
    the way (missing or truncated files).  A directory with *neither*
    manifest nor metrics raises :class:`FileNotFoundError` — that is not a
    run directory at all; anything less makes a partial summary.
    """
    directory = Path(directory)
    problems: list[str] = []
    manifest: dict = {}
    try:
        manifest = read_manifest(directory)
    except FileNotFoundError:
        problems.append(f"missing {MANIFEST_NAME}")
    except (OSError, ValueError) as error:
        problems.append(f"unreadable {MANIFEST_NAME}: {error}")
    records: list[dict] = []
    try:
        records = _collect_metrics(directory, problems)
    except FileNotFoundError:
        if f"missing {MANIFEST_NAME}" in problems:
            raise FileNotFoundError(
                f"{directory} contains neither {MANIFEST_NAME} nor {METRICS_NAME}"
            ) from None
        problems.append(f"missing {METRICS_NAME}: no metrics were recorded")
    except OSError as error:
        problems.append(f"unreadable {METRICS_NAME}: {error}")
    phases: list[dict] = []
    tasks: list[dict] = []
    runs: list[dict] = []
    dispatches: list[dict] = []
    workers: list[dict] = []
    redispatches: list[dict] = []
    counters: dict[str, int | float] = {}
    for record in records:
        kind, name = record.get("type"), record.get("name")
        attrs = record.get("attrs") or {}
        if kind == "counter":
            counters[name] = counters.get(name, 0) + record.get("value", 0)
        elif kind == "span" and name == "phase":
            phases.append({**attrs, "seconds": record.get("dt", 0.0)})
        elif kind == "span" and name == "task":
            tasks.append({**attrs, "seconds": record.get("dt", 0.0)})
        elif kind == "span" and name == "run":
            runs.append({**attrs, "seconds": record.get("dt", 0.0)})
        elif kind == "span" and name == "dispatch":
            dispatches.append({**attrs, "seconds": record.get("dt", 0.0)})
        elif kind == "event" and name == "remote.worker":
            workers.append(attrs)
        elif kind == "event" and name == "remote.redispatch":
            redispatches.append(attrs)
    tasks.sort(key=lambda task: task.get("seconds", 0.0), reverse=True)
    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    probes = hits + misses
    kernel_tasks: dict[str, int] = {}
    for task in tasks:
        kernel = task.get("kernel")
        if kernel:
            kernel_tasks[kernel] = kernel_tasks.get(kernel, 0) + 1
    fallback_prefix = "kernel.fallback."
    kernel_fallbacks = {
        name[len(fallback_prefix) :]: value
        for name, value in sorted(counters.items())
        if name.startswith(fallback_prefix)
    }
    return {
        "manifest": manifest,
        "problems": problems,
        "runs": runs,
        "phases": phases,
        "tasks": tasks,
        "dispatches": dispatches,
        "workers": workers,
        "redispatches": redispatches,
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / probes) if probes else None,
            "hit_bytes": counters.get("cache.hit_bytes", 0),
            "writes": counters.get("cache.write", 0),
            "write_bytes": counters.get("cache.write_bytes", 0),
            "gc_removed": counters.get("cache.gc_removed", 0),
            "gc_freed_bytes": counters.get("cache.gc_freed_bytes", 0),
        },
        "kernels": {
            # How many computed simulation tasks each kernel actually ran,
            # and which predictors fell back to the scalar loop (per the
            # workers' own sidecar reports).
            "tasks": kernel_tasks,
            "fallback_total": counters.get("kernel.fallback", 0),
            "fallbacks_by_predictor": kernel_fallbacks,
        },
        "counters": counters,
    }
