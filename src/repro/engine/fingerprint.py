"""Deterministic identities for work units and their inputs.

Cache correctness hinges on keys capturing everything a task's output
depends on: a predictor is identified by its *configuration signature*
(not just its registry name, which can be re-bound), a trace by the digest
of its canonical serialised form, and every composite key by the SHA-256 of
its canonical JSON rendering.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

from repro.core.registry import create_predictor
from repro.trace.io import dumps_trace
from repro.trace.stream import ValueTrace


def predictor_signature(name: str) -> str:
    """Configuration signature of the predictor currently bound to ``name``.

    Instantiates a fresh predictor on every call on purpose: the registry
    allows re-binding a name (``overwrite=True``), and a memoised signature
    would keep serving the old configuration.
    """
    return create_predictor(name).config_signature()


def predictors_fingerprint(names: tuple[str, ...] | list[str]) -> tuple[tuple[str, str], ...]:
    """(name, signature) pairs identifying an ordered predictor line-up."""
    return tuple((name, predictor_signature(name)) for name in names)


def trace_digest(trace: ValueTrace) -> str:
    """Content digest of a trace's canonical serialised form."""
    return hashlib.sha256(dumps_trace(trace).encode("utf-8")).hexdigest()


def key_digest(key: Mapping) -> str:
    """SHA-256 of a JSON-serialisable mapping, independent of key order."""
    canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
