"""Intra-trace sharding: window planning, state handoff, window merging.

Campaigns and sweeps parallelise across (benchmark, predictor) pairs, so a
single long trace still binds one pair's latency to one core.  This module
splits a trace into fixed-size windows and runs each window as an
independent work unit through the existing phase executor, with the
composed result **bit-identical** to the monolithic simulation:

1. **plan** — :func:`plan_shard_windows` cuts ``[0, len(trace))`` into
   ``[start, stop)`` windows from the engine's ``shard_window`` setting
   (``"auto"`` divides the trace over the backend's parallel slots);
2. **replay** — a window starting at record ``start > 0`` must begin from
   exactly the predictor state records ``[0, start)`` would have produced.
   One *replay task* per pending pair advances a fresh predictor over that
   prefix with update-only replay (:mod:`repro.simulation.state`) and
   snapshots the state at every needed boundary.  Replay runs on the
   engine's backend — pairs replay in parallel — and costs roughly half a
   simulation pass, so the sharded critical path stays well under the
   monolithic one;
3. **windows** — each window runs as a ``simulate-window`` unit (cached
   under its own kind), restoring the handed-off state and simulating its
   slice on the engine's kernel: the vector kernel seeds its plan from
   the restored snapshot (:mod:`repro.simulation.vectorized`), the scalar
   kernel — or a plan that declines — runs the reference observe loop;
4. **stitch** — :func:`merge_window_shards` concatenates the window shards
   back into one :class:`~repro.simulation.simulator.PredictorShard`,
   reproducing the unsharded shard exactly — including the dict insertion
   orders the cache serialises — so the pair-level ``simulate`` cache
   entry written for the merged shard is byte-identical to what an
   unsharded run would have written.  A sharded run therefore warms an
   unsharded rerun and vice versa.

Window cache keys carry no state digest: the state at ``start`` is a pure
function of (trace content, predictor configuration, ``start``), all of
which the key already pins — so runs with different window sizes can even
share entries for coinciding boundaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.engine.codecs import shard_from_dict, shard_to_dict
from repro.engine.phases import PhaseSpec, PhaseTask, run_phase
from repro.engine.tasks import SimulateTask, SimulateWindowTask
from repro.engine.telemetry import TELEMETRY_KEY
from repro.errors import DispatchError
from repro.simulation.simulator import PredictorResult, PredictorShard

#: Progress/telemetry phase names of the sharded simulate path.
REPLAY_PHASE = "replay"
WINDOW_PHASE = "simulate-windows"


# --------------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------------- #
def normalize_shard_window(setting) -> "int | str | None":
    """Validate an engine's ``shard_window`` setting at construction time.

    ``None`` (or 0) disables sharding, ``"auto"`` sizes windows from the
    backend's parallel slots at plan time, and a positive integer fixes
    the window length in records.
    """
    if setting is None:
        return None
    if setting == "auto":
        return "auto"
    try:
        window = int(setting)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid shard window {setting!r} (expected a positive integer, 'auto' or None)"
        ) from None
    if window < 0:
        raise ValueError(f"shard window must be non-negative, got {window}")
    return window or None


def resolve_shard_window(setting, length: int, slots: int) -> int | None:
    """Resolve a setting to a concrete window length for one trace.

    Returns ``None`` whenever sharding would not help: the setting is off,
    the trace fits a single window, or (for ``"auto"``) the backend has no
    parallelism to feed.
    """
    setting = normalize_shard_window(setting)
    if setting is None or length <= 1:
        return None
    if setting == "auto":
        if slots <= 1:
            return None
        window = -(-length // slots)  # ceil division
    else:
        window = setting
    if window >= length:
        return None
    return max(1, window)


def plan_windows(length: int, window: int) -> list[tuple[int, int]]:
    """Cut ``[0, length)`` into consecutive ``[start, stop)`` windows."""
    return [(start, min(start + window, length)) for start in range(0, length, window)]


def plan_shard_windows(setting, length: int, slots: int) -> "list[tuple[int, int]] | None":
    """Plan one trace's windows; ``None`` means run unsharded."""
    window = resolve_shard_window(setting, length, slots)
    if window is None:
        return None
    return plan_windows(length, window)


# --------------------------------------------------------------------------- #
# Stitching
# --------------------------------------------------------------------------- #
def concat_packed_bits(chunks: Sequence[tuple[bytes, int]]) -> bytes:
    """Concatenate LSB-first packed bit sequences, as ``(bytes, bit_count)``.

    Equivalent to re-packing the concatenated outcome sequence with
    :func:`~repro.simulation.simulator.pack_outcomes`: safe because that
    packer zero-pads the trailing partial byte, so shifting a chunk in by
    ``filled % 8`` bits never drags stale bits along.
    """
    out = bytearray()
    filled = 0
    for packed, count in chunks:
        if count < 0:
            raise ValueError(f"negative bit count {count}")
        nbytes = (count + 7) >> 3
        shift = filled & 7
        if shift == 0:
            out.extend(packed[:nbytes])
        else:
            low = 8 - shift
            for byte in packed[:nbytes]:
                out[-1] |= (byte << shift) & 0xFF
                out.append(byte >> low)
        filled += count
        del out[(filled + 7) >> 3 :]
    return bytes(out)


def merge_window_shards(
    predictor_name: str, window_shards: Sequence[PredictorShard]
) -> PredictorShard:
    """Stitch consecutive window shards back into the whole-trace shard.

    Aggregates are folded in window order, which reproduces the unsharded
    loop's dict insertion orders exactly: a category (or PC) first seen in
    window *k* cannot appear in any earlier window, so appending window
    *k*'s first-occurrences after window *k-1*'s yields the global
    first-occurrence order the monolithic pass would have produced.
    """
    result = PredictorResult(predictor=predictor_name)
    chunks: list[tuple[bytes, int]] = []
    record_count = 0
    for shard in window_shards:
        part = shard.result
        result.total += part.total
        result.correct += part.correct
        for category, count in part.category_total.items():
            result.category_total[category] = result.category_total.get(category, 0) + count
        for category, count in part.category_correct.items():
            result.category_correct[category] = (
                result.category_correct.get(category, 0) + count
            )
        for pc, count in part.pc_correct.items():
            result.pc_correct[pc] = result.pc_correct.get(pc, 0) + count
        chunks.append((shard.correctness, shard.record_count))
        record_count += shard.record_count
    return PredictorShard(
        result=result,
        correctness=concat_packed_bits(chunks),
        record_count=record_count,
    )


# --------------------------------------------------------------------------- #
# Orchestration
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WindowedUnit:
    """One (trace, predictor) pair scheduled as windows with state handoff.

    ``get_trace`` defers materialisation: fully warm units (pair-level or
    all-windows cache hits) never decode the trace at all, matching the
    sweep layer's lazy policy.
    """

    uid: object
    label: str
    benchmark: str
    predictor: str
    trace_digest: str
    predictor_signature: str
    windows: tuple[tuple[int, int], ...]
    get_trace: Callable[[], object]


def run_windowed_simulations(engine, units: Sequence[WindowedUnit]) -> dict:
    """Run windowed units on ``engine``; returns ``{unit.uid: PredictorShard}``.

    The full pass per pending pair: probe the pair-level ``simulate``
    entry (a sharded run is warmed by an unsharded one), probe each
    window's ``simulate-window`` entry, replay boundary states for the
    windows that miss, dispatch those windows through the shared phase
    executor, stitch, and write the pair-level entry back (an unsharded
    rerun is warmed by this sharded one).
    """
    # Imported lazily: the worker module and this one are peers under the
    # engine package, and worker functions must stay importable on their
    # own for every backend to pickle them by reference.
    from repro.engine.worker import execute_simulate_window_task
    from repro.trace.io import dumps_trace_binary

    stats = engine.stats
    cache = engine.cache
    shards: dict = {}

    # ---- pair-level probe: a warm "simulate" entry satisfies the unit ---- #
    pending: list[WindowedUnit] = []
    warm_pairs: list[WindowedUnit] = []
    for unit in units:
        length = unit.windows[-1][1]
        shard = None
        if cache:
            pair_key = _pair_task(unit).cache_key()
            cached = cache.get("simulate", pair_key)
            if cached is not None:
                try:
                    candidate = shard_from_dict(cached["shard"])
                except Exception:
                    candidate = None
                if candidate is not None and candidate.record_count == length:
                    shard = candidate
        if shard is not None:
            shards[unit.uid] = shard
            stats.record("simulations", cached=True)
            warm_pairs.append(unit)
        else:
            pending.append(unit)

    # ---- window-level probe: stash usable per-window entries ------------- #
    stashed: dict[tuple, PredictorShard] = {}  # (unit.uid, start, stop) -> shard
    stashed_labels: list[str] = []
    needed: list[tuple[WindowedUnit, int, int]] = []
    for unit in pending:
        for start, stop in unit.windows:
            shard = None
            if cache:
                key = _window_task(unit, start, stop).cache_key()
                cached = cache.get("simulate-window", key)
                if cached is not None:
                    try:
                        candidate = shard_from_dict(cached["shard"])
                    except Exception:
                        candidate = None
                    if candidate is not None and candidate.record_count == stop - start:
                        shard = candidate
            if shard is not None:
                stashed[(unit.uid, start, stop)] = shard
                stashed_labels.append(f"{unit.label}[{start}:{stop}]")
                stats.record("windows", cached=True)
            else:
                needed.append((unit, start, stop))

    # ---- replay: boundary states for the windows that actually run ------ #
    boundaries: dict = {}  # unit.uid -> sorted starts > 0
    by_uid: dict = {}
    for unit, start, stop in needed:
        by_uid[unit.uid] = unit
        if start > 0:
            boundaries.setdefault(unit.uid, set()).add(start)
    replay_states = _replay_boundary_states(
        engine, [(by_uid[uid], sorted(starts)) for uid, starts in boundaries.items()]
    )

    # ---- window phase: the shared probe -> dispatch -> put protocol ------ #
    # Encode each distinct window slice for the wire at most once, however
    # many predictors are pending over it.
    slice_bytes: dict[tuple[str, int, int], bytes] = {}

    def build_window_payload(
        unit: WindowedUnit, start: int, stop: int, inline: bool
    ) -> dict:
        state = replay_states.get(unit.uid, {}).get(start) if start > 0 else None
        payload: dict = {
            "predictor": unit.predictor,
            "signature": unit.predictor_signature,
            "window": [start, stop],
            "state": state,
        }
        if engine.kernel is not None:
            payload["kernel"] = engine.kernel
        if inline:
            payload["trace"] = unit.get_trace()[start:stop]
        else:
            key = (unit.trace_digest, start, stop)
            if key not in slice_bytes:
                slice_bytes[key] = dumps_trace_binary(
                    unit.get_trace()[start:stop], compress=True
                )
            payload["trace_bytes"] = slice_bytes[key]
        return payload

    def accept_window(uid: tuple, payload: dict) -> bool:
        unit_uid, start, stop = uid
        shard = shard_from_dict(payload["shard"])
        if shard.record_count != stop - start:
            return False
        stashed[(unit_uid, start, stop)] = shard
        return True

    run_phase(
        engine,
        PhaseSpec(
            name=WINDOW_PHASE,
            kind="simulate-window",
            counter="windows",
            tasks=[
                PhaseTask(
                    uid=(unit.uid, start, stop),
                    label=f"{unit.label}[{start}:{stop}]",
                    cache_key=_window_task(unit, start, stop).cache_key(),
                    build_payload=lambda inline, unit=unit, start=start, stop=stop: (
                        build_window_payload(unit, start, stop, inline)
                    ),
                )
                for unit, start, stop in needed
            ],
            worker=execute_simulate_window_task,
            accept_cached=accept_window,
            accept_fresh=accept_window,
            total=sum(len(unit.windows) for unit in pending) + len(warm_pairs),
            presatisfied_count=len(stashed) + len(warm_pairs),
            presatisfied_labels=[f"{unit.label}:*" for unit in warm_pairs]
            + stashed_labels,
        ),
    )

    # ---- stitch + write the pair-level entry back ------------------------ #
    for unit in pending:
        merged = merge_window_shards(
            unit.predictor,
            [stashed[(unit.uid, start, stop)] for start, stop in unit.windows],
        )
        shards[unit.uid] = merged
        stats.record("simulations", cached=False)
        if cache:
            cache.put(
                "simulate",
                _pair_task(unit).cache_key(),
                {"shard": shard_to_dict(merged)},
                format=engine.cache_format,
            )
    return shards


def _pair_task(unit: WindowedUnit) -> SimulateTask:
    return SimulateTask(
        benchmark=unit.benchmark,
        predictor=unit.predictor,
        trace_digest=unit.trace_digest,
        predictor_signature=unit.predictor_signature,
    )


def _window_task(unit: WindowedUnit, start: int, stop: int) -> SimulateWindowTask:
    return SimulateWindowTask(
        benchmark=unit.benchmark,
        predictor=unit.predictor,
        trace_digest=unit.trace_digest,
        predictor_signature=unit.predictor_signature,
        start=start,
        stop=stop,
    )


def _replay_boundary_states(engine, replay_units: list) -> dict:
    """Compute ``{unit.uid: {start: state}}`` for every needed boundary.

    One replay task per pair, dispatched on the engine's backend so pairs
    replay concurrently.  Replay outcomes are derived scratch data — fully
    determined by entries the cache already holds — and are never cached
    themselves.
    """
    from repro.engine.worker import execute_replay_task
    from repro.trace.io import dumps_trace_binary

    if not replay_units:
        return {}
    started_perf = time.perf_counter()
    telemetry = engine.telemetry
    states: dict = {}
    with telemetry.span(
        "phase", phase=REPLAY_PHASE, backend=engine.backend.name
    ) as phase_span:
        phase_span.set(total=len(replay_units), cached=0, computed=len(replay_units))
        engine.progress.phase_started(REPLAY_PHASE, len(replay_units), 0)
        inline = engine.backend.inline_payloads(len(replay_units))
        labels = [unit.label for unit, _ in replay_units]
        payloads = []
        # Encode each distinct replay prefix for the wire at most once.
        prefix_bytes: dict[tuple[str, int], bytes] = {}
        for unit, starts in replay_units:
            payload: dict = {
                "predictor": unit.predictor,
                "signature": unit.predictor_signature,
                "boundaries": list(starts),
            }
            # Only the prefix up to the last boundary is ever replayed.
            longest = starts[-1]
            if inline:
                payload["trace"] = unit.get_trace()[:longest]
            else:
                key = (unit.trace_digest, longest)
                if key not in prefix_bytes:
                    prefix_bytes[key] = dumps_trace_binary(
                        unit.get_trace()[:longest], compress=True
                    )
                payload["trace_bytes"] = prefix_bytes[key]
            payloads.append(payload)
        try:
            outcomes = engine._run_tasks(execute_replay_task, REPLAY_PHASE, labels, payloads)
        except DispatchError as error:
            raise type(error)(
                f"{REPLAY_PHASE} phase failed to dispatch {len(payloads)} pending "
                f"unit(s) on the {engine.backend.name!r} backend: {error}"
            ) from error
        for (unit, _), outcome in zip(replay_units, outcomes):
            sidecar = outcome.pop(TELEMETRY_KEY, None) if isinstance(outcome, dict) else None
            if sidecar:
                telemetry.span_record(
                    "task",
                    sidecar.get("execute_seconds", 0.0),
                    phase=REPLAY_PHASE,
                    label=unit.label,
                    worker_pid=sidecar.get("pid"),
                    function=sidecar.get("function"),
                )
            states[unit.uid] = {
                int(start): state for start, state in outcome["states"].items()
            }
    engine.stats.record_seconds("windows", time.perf_counter() - started_perf)
    return states
