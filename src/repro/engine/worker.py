"""Worker-side protocol of the execution engine.

These module-level functions are the only code that runs inside pool
workers, so they must stay importable (picklable by reference) and accept
plain-dict payloads built by :mod:`repro.engine.tasks`.  Results are
returned as JSON-compatible dicts — the exact representation the cache
stores — so the parent handles pool output and cache hits identically.
"""

from __future__ import annotations

import os
import time
from hashlib import sha256

from repro.core.registry import create_predictor
from repro.engine.codecs import shard_to_dict, statistics_to_dict
from repro.engine.telemetry import TELEMETRY_KEY
from repro.errors import SimulationError
from repro.trace.io import dumps_trace, dumps_trace_binary, loads_trace, loads_trace_binary
from repro.simulation.simulator import simulate_shard
from repro.simulation.vectorized import resolve_kernel
from repro.workloads.suite import get_workload


def _telemetry_sidecar(
    function: str,
    started_perf: float,
    kernel: str | None = None,
    fallback: bool | None = None,
    predictor: str | None = None,
) -> dict:
    """The observability sidecar every worker outcome carries.

    Worker-side execute time is measured here — on the worker's own
    monotonic clock, whichever process or host that is — and travels back
    inside the outcome under the reserved :data:`TELEMETRY_KEY`.  The
    phase executor strips the key before the outcome is decoded or
    cached, so cache entries and results never contain it.

    Simulation tasks also report ``kernel`` — the kernel that *actually*
    ran, after any scalar fallback — and ``kernel_fallback``, true when
    the vector kernel was requested but this task ran the scalar loop.
    An ``--kernel auto`` run silently degrading to scalar is a mystery
    slowdown without this.
    """
    sidecar = {
        "function": function,
        "execute_seconds": time.perf_counter() - started_perf,
        "pid": os.getpid(),
    }
    if kernel is not None:
        sidecar["kernel"] = kernel
        sidecar["kernel_fallback"] = bool(fallback)
    if predictor is not None:
        sidecar["predictor"] = predictor
    return sidecar


def execute_trace_task(payload: dict) -> dict:
    """Run one benchmark into a trace; returns v3 bytes plus statistics.

    ``input``/``flags`` select the workload configuration (absent means the
    workload's default, as resolved by :meth:`TraceTask.for_workload`).
    The trace travels as compressed v3 binary bytes (``trace_binary``) —
    roughly an order of magnitude smaller on the pool wire than the
    canonical text, and exactly what the binary cache envelope embeds, so
    the parent never renders or re-parses text for a cold trace.  The
    canonical text form still exists transiently in the worker because the
    ``digest`` that keys the simulate phase is defined over it (see
    ``docs/trace-format.md``); consumers accept ``trace_text`` payloads as
    a decode fallback for entries and wire formats produced by older code
    (:func:`repro.engine.codecs.payload_trace`).
    """
    started = time.perf_counter()
    workload = get_workload(payload["benchmark"])
    trace = workload.trace(
        scale=payload["scale"],
        input_name=payload.get("input"),
        flags=payload.get("flags"),
    )
    text = dumps_trace(trace)
    return {
        "trace_binary": dumps_trace_binary(trace, compress=True),
        "digest": sha256(text.encode("utf-8")).hexdigest(),
        "statistics": statistics_to_dict(trace.statistics()),
        TELEMETRY_KEY: _telemetry_sidecar("trace", started),
    }


def execute_simulate_task(payload: dict) -> dict:
    """Simulate one predictor over one trace; returns the encoded shard.

    The trace arrives either inline (``trace``, in-process dispatch), as
    v3 binary bytes (``trace_bytes``, the pool wire format) or — for
    compatibility with payloads built by older code — as canonical text
    (``trace_text``).  All three decode to the same records.

    ``kernel`` selects the simulation kernel; it is resolved against
    *this* worker's environment (see
    :func:`repro.simulation.vectorized.resolve_kernel`), and under the
    vector kernel binary wire bytes decode straight into numpy columns —
    no ``TraceRecord`` objects are ever materialised on the hot path.
    """
    started = time.perf_counter()
    kernel = resolve_kernel(payload.get("kernel"))
    name = payload["predictor"]
    expected_signature = payload.get("signature")
    if expected_signature is not None:
        local_signature = create_predictor(name).config_signature()
        if local_signature != expected_signature:
            # A worker whose registry binds `name` differently than the
            # scheduler's (possible under the spawn start method, where
            # dynamic re-bindings are not inherited) must not produce a
            # shard that would be cached under the scheduler's signature.
            raise SimulationError(
                f"predictor {name!r} is configured differently in this worker: "
                f"expected signature {expected_signature!r}, got {local_signature!r}"
            )
    shard = None
    trace = payload.get("trace")
    trace_bytes = payload.get("trace_bytes") if trace is None else None
    if kernel == "vector":
        from repro.simulation.vectorized import simulate_shard_vector
        from repro.trace.io import decode_trace_columns, trace_columns

        columns = None
        if trace is None and trace_bytes is not None:
            columns = decode_trace_columns(trace_bytes)
        if columns is None:
            trace = _payload_records(payload)
            columns = trace_columns(trace)
        if columns is not None:
            shard = simulate_shard_vector(columns, name)
    fallback = kernel == "vector" and shard is None
    if shard is None:
        if trace is None:
            trace = _payload_records(payload)
        shard = simulate_shard(trace, name, kernel="scalar")
    return {
        "shard": shard_to_dict(shard),
        TELEMETRY_KEY: _telemetry_sidecar(
            "simulate",
            started,
            kernel="scalar" if fallback else kernel,
            fallback=fallback,
            predictor=name,
        ),
    }


def _check_signature(payload: dict) -> str:
    """Validate the payload's expected predictor signature; returns the name."""
    name = payload["predictor"]
    expected_signature = payload.get("signature")
    if expected_signature is not None:
        local_signature = create_predictor(name).config_signature()
        if local_signature != expected_signature:
            raise SimulationError(
                f"predictor {name!r} is configured differently in this worker: "
                f"expected signature {expected_signature!r}, got {local_signature!r}"
            )
    return name


def _payload_records(payload: dict):
    """Materialise the payload's trace (inline, v3 bytes or text fallback)."""
    trace = payload.get("trace")
    if trace is None:
        trace_bytes = payload.get("trace_bytes")
        if trace_bytes is not None:
            trace = loads_trace_binary(trace_bytes)
        else:
            trace = loads_trace(payload["trace_text"])
    return trace


def execute_replay_task(payload: dict) -> dict:
    """Snapshot predictor states at window boundaries of one trace prefix.

    ``boundaries`` is an ascending list of window start offsets (> 0); the
    shipped trace covers at least ``[0, boundaries[-1])``.  One pass of
    update-only replay (:func:`repro.simulation.state.replay_records`)
    advances a fresh predictor across the prefix, snapshotting at each
    boundary, so *n* windows cost one replay — not *n* re-replays.  The
    ``SIMULATION_COUNTER`` is never touched: a replay derives handoff
    state, it does not simulate.
    """
    from repro.simulation.state import replay_records, snapshot_predictor

    started = time.perf_counter()
    name = _check_signature(payload)
    trace = _payload_records(payload)
    records = trace.records
    predictor = create_predictor(name)
    states: dict[str, dict] = {}
    position = 0
    for start in payload["boundaries"]:
        replay_records(predictor, records[position:start])
        position = start
        # JSON-safe keys: the remote wire would stringify them anyway, so
        # every transport hands the parent the same mapping shape.
        states[str(start)] = snapshot_predictor(predictor)
    return {
        "states": states,
        TELEMETRY_KEY: _telemetry_sidecar("replay", started),
    }


def execute_simulate_window_task(payload: dict) -> dict:
    """Simulate one predictor over one trace window from a handed-off state.

    The shipped trace is the ``[start, stop)`` slice itself; ``state`` is
    the predecessor boundary's snapshot (``None`` exactly when ``start``
    is 0).  Under the ``"vector"`` kernel the columnar plan starts from
    the restored snapshot (:func:`simulate_shard_vector` with ``state``),
    so ``--kernel vector --shard-window auto`` compose; the scalar observe
    loop below remains the reference and the fallback.  The counter
    increments once per pair — on the first window — matching the
    unsharded run's accounting.
    """
    from repro.simulation.simulator import (
        SIMULATION_COUNTER,
        PredictorResult,
        PredictorShard,
        pack_outcomes,
    )
    from repro.simulation.state import restore_predictor

    started = time.perf_counter()
    kernel = resolve_kernel(payload.get("kernel"))
    name = _check_signature(payload)
    start, stop = payload["window"]
    shard = None
    trace = payload.get("trace")
    if kernel == "vector":
        from repro.simulation.vectorized import simulate_shard_vector
        from repro.trace.io import decode_trace_columns, trace_columns

        columns = None
        trace_bytes = payload.get("trace_bytes") if trace is None else None
        if trace is None and trace_bytes is not None:
            columns = decode_trace_columns(trace_bytes)
        if columns is None:
            trace = _payload_records(payload)
            columns = trace_columns(trace)
        if columns is not None:
            shard = simulate_shard_vector(
                columns,
                name,
                state=payload.get("state"),
                count_simulation=start == 0,
            )
    fallback = kernel == "vector" and shard is None
    if shard is not None:
        return {
            "shard": shard_to_dict(shard),
            TELEMETRY_KEY: _telemetry_sidecar(
                "simulate-window", started, kernel=kernel, fallback=False, predictor=name
            ),
        }
    if trace is None:
        trace = _payload_records(payload)
    predictor = create_predictor(name)
    state = payload.get("state")
    if state is not None:
        restore_predictor(predictor, state)
    if start == 0:
        SIMULATION_COUNTER.increment()
    result = PredictorResult(predictor=name)
    outcomes: list[bool] = []
    for record in trace.records:
        category = record.category
        correct = predictor.observe(record.pc, record.value, category)
        outcomes.append(correct)
        result.total += 1
        result.category_total[category] = result.category_total.get(category, 0) + 1
        if correct:
            result.correct += 1
            result.category_correct[category] = result.category_correct.get(category, 0) + 1
            result.pc_correct[record.pc] = result.pc_correct.get(record.pc, 0) + 1
    shard = PredictorShard(
        result=result, correctness=pack_outcomes(outcomes), record_count=len(trace)
    )
    return {
        "shard": shard_to_dict(shard),
        TELEMETRY_KEY: _telemetry_sidecar(
            "simulate-window",
            started,
            kernel="scalar" if fallback else kernel,
            fallback=fallback,
            predictor=name,
        ),
    }


#: Worker functions addressable *by name* over the remote worker protocol
#: (:mod:`repro.engine.remote`).  A remote dispatch ships the registry key
#: instead of a pickled callable, so engine and worker only have to agree
#: on this mapping — which the handshake's ``TASK_FORMAT_VERSION`` pin
#: already guarantees.
WORKER_FUNCTIONS = {
    "trace": execute_trace_task,
    "simulate": execute_simulate_task,
    "replay": execute_replay_task,
    "simulate-window": execute_simulate_window_task,
}


def worker_function_name(function) -> str:
    """The registry name a worker function travels under on the wire."""
    for name, registered in WORKER_FUNCTIONS.items():
        if registered is function:
            return name
    raise ValueError(
        f"{function!r} is not a registered worker function; remote dispatch "
        f"only executes the named entries of WORKER_FUNCTIONS "
        f"({', '.join(sorted(WORKER_FUNCTIONS))})"
    )
