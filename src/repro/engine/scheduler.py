"""Task-graph scheduler: decompose, dispatch, cache, merge.

A campaign run proceeds in three phases:

1. **trace** — every benchmark not already in the cache is traced (on the
   configured executor backend) and stored in the configured cache format
   (compressed binary by default, canonical text on request);
2. **simulate** — every (trace, predictor) pair not in the cache is
   simulated into a :class:`PredictorShard`;
3. **merge** — shards are recombined per benchmark into the joint
   :class:`SimulationResult`, bit-identical to the lockstep loop.

Phases 1 and 2 are embarrassingly parallel and run through the shared
phase executor (:mod:`repro.engine.phases` — the probe → dispatch → put
protocol, used by campaigns and sweeps alike) on a pluggable
:class:`~repro.engine.backends.ExecutorBackend`; the merge is a cheap
single pass in the parent.  All cross-process data uses the JSON codecs,
so every backend and the cache path share one representation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.engine.backends import ExecutorBackend, resolve_backend
from repro.engine.cache import ResultCache
from repro.engine.codecs import (
    payload_trace,
    payload_trace_digest,
    shard_from_dict,
    simulation_from_dict,
    simulation_to_dict,
    statistics_from_dict,
)
from repro.engine.fingerprint import predictor_signature
from repro.engine.phases import PhaseSpec, PhaseTask, run_phase
from repro.engine.progress import NullProgress, ProgressListener
from repro.engine.sharding import (
    WindowedUnit,
    normalize_shard_window,
    plan_shard_windows,
    run_windowed_simulations,
)
from repro.engine.tasks import TASK_FORMAT_VERSION, SimulateTask, TraceTask
from repro.engine.telemetry import NULL_TELEMETRY, Telemetry
from repro.engine.worker import execute_simulate_task, execute_trace_task
from repro.simulation.simulator import PredictorShard, merge_shards


@dataclass
class EngineStats:
    """What one engine run actually did (vs. served from cache).

    ``trace_seconds``/``simulate_seconds`` are the wall durations of the
    two phases (cache probes included), measured with
    :func:`time.perf_counter` so clock jumps cannot skew them;
    ``cache_hit_bytes``/``cache_write_bytes`` are the run's byte traffic
    against the persistent result cache (0 without one).
    """

    benchmarks: int = 0
    predictors: int = 0
    traces_computed: int = 0
    traces_cached: int = 0
    simulations_computed: int = 0
    simulations_cached: int = 0
    #: Intra-trace sharding accounting (:mod:`repro.engine.sharding`):
    #: window units computed/served warm.  A sharded pair still records one
    #: ``simulations`` unit when its stitched result lands, so the
    #: simulation counters stay comparable across sharded and unsharded
    #: runs; the window counters are additional detail, not a replacement.
    windows_computed: int = 0
    windows_cached: int = 0
    total_seconds: float = 0.0
    trace_seconds: float = 0.0
    simulate_seconds: float = 0.0
    cache_hit_bytes: int = 0
    cache_write_bytes: int = 0

    #: Phase-counter name -> the field its phase duration accumulates into.
    #: Window (and replay) time is simulate-phase time under a finer knife.
    _SECONDS_FIELDS = {
        "traces": "trace_seconds",
        "simulations": "simulate_seconds",
        "windows": "simulate_seconds",
    }

    @property
    def tasks_computed(self) -> int:
        return self.traces_computed + self.simulations_computed

    @property
    def tasks_cached(self) -> int:
        return self.traces_cached + self.simulations_cached

    def record(self, counter: str, cached: bool, count: int = 1) -> None:
        """Bump one of the ``{traces,simulations}_{cached,computed}`` counters.

        The phase executor accounts through this hook, so phases stay
        generic over which work kind they schedule.
        """
        name = f"{counter}_{'cached' if cached else 'computed'}"
        setattr(self, name, getattr(self, name) + count)

    def record_seconds(self, counter: str, seconds: float) -> None:
        """Accumulate one phase's wall duration (perf-counter measured).

        Counters without a seconds field (toy phases in tests) are
        ignored, mirroring how :meth:`record` stays generic.
        """
        name = self._SECONDS_FIELDS.get(counter)
        if name is not None:
            setattr(self, name, getattr(self, name) + seconds)


class ExecutionEngine:
    """Schedules campaign work units over workers and the result cache.

    Parameters
    ----------
    jobs:
        Worker process count for the process-based backends; with the
        default backend selection, ``1`` executes everything in-process
        (no pickling, no pool) and is the reference serial path.
    cache_dir:
        Root of the persistent :class:`ResultCache`; ``None`` disables
        on-disk caching.
    use_cache:
        ``False`` ignores ``cache_dir`` entirely (force recompute).
    progress:
        Optional :class:`ProgressListener` receiving live events.
    cache_format:
        Storage format for new cache entries: ``"binary"`` (default)
        writes the compressed ``.rvpc`` envelope, ``"text"`` the v1 plain
        JSON files.  Reads always accept both, and both decode to the
        same canonical payloads, so results — and the trace digests that
        key them — are bit-identical whichever format a cache holds.
    cache_max_bytes / cache_max_age:
        Garbage-collection bounds for the persistent cache.  When either
        is set, a bounded :meth:`ResultCache.gc` pass runs automatically
        after every :meth:`run`/:meth:`run_sweep`; entries produced or
        touched by the finishing run are never evicted by that pass (see
        ``protect_since``), so a budget smaller than one run's output
        degrades to best-effort instead of destroying fresh results.
    backend:
        Executor backend the phases dispatch on: a name (``"serial"``,
        ``"pool"``, ``"persistent"``, ``"remote"``), an
        :class:`ExecutorBackend` instance (shared across engines; the
        caller owns its lifetime), or ``None`` for the historical
        default — serial when ``jobs == 1``, a per-dispatch pool
        otherwise.  Results are bit-identical across backends; see
        :mod:`repro.engine.backends`.
    workers:
        ``host:port`` addresses of running ``repro-vp worker serve``
        processes, required by (and only meaningful for) the ``remote``
        backend, whose per-worker in-flight limit is ``jobs``.  See
        :mod:`repro.engine.remote`.
    telemetry:
        Optional :class:`~repro.engine.telemetry.Telemetry` sink receiving
        structured spans, events and counters from every layer (phases,
        backend dispatches, the cache); defaults to the always-cheap
        :data:`~repro.engine.telemetry.NULL_TELEMETRY`.  Results and cache
        entries are bit-identical with telemetry on or off.
    kernel:
        Simulation kernel selection forwarded to every simulate task and
        to the merge pass: ``"scalar"``, ``"vector"``, ``"auto"`` (vector
        when numpy is importable) or ``None`` to defer to the
        ``REPRO_KERNEL`` environment variable.  Kernels are bit-identical,
        so the setting is not part of any cache key; see
        :mod:`repro.simulation.vectorized`.
    shard_window:
        Intra-trace sharding setting (:mod:`repro.engine.sharding`):
        ``None`` (default) runs each (benchmark, predictor) pair as one
        unit; a positive integer splits every trace into windows of that
        many records; ``"auto"`` sizes windows from the trace length and
        the backend's parallel slots.  Results and pair-level cache
        entries are bit-identical with sharding on or off — the setting
        only changes how the work is cut, which is why it is not part of
        any cache key.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        progress: ProgressListener | None = None,
        cache_format: str = "binary",
        cache_max_bytes: int | None = None,
        cache_max_age: float | None = None,
        backend: str | ExecutorBackend | None = None,
        workers: Sequence[str] | None = None,
        telemetry: Telemetry | None = None,
        kernel: str | None = None,
        shard_window: int | str | None = None,
    ) -> None:
        from repro.simulation.vectorized import resolve_kernel

        # Validate eagerly so a bad name (or a forced "vector" without
        # numpy) fails at construction, not mid-run.  The *raw* setting is
        # what travels in task payloads: each worker resolves it against
        # its own environment (see SimulateTask.payload), and it never
        # enters a cache key because both kernels are bit-identical.
        resolve_kernel(kernel)
        self.kernel = kernel
        self.shard_window = normalize_shard_window(shard_window)
        self.jobs = max(1, int(jobs))
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.cache = (
            ResultCache(cache_dir, max_bytes=cache_max_bytes, max_age=cache_max_age)
            if (use_cache and cache_dir is not None)
            else None
        )
        if self.cache is not None:
            self.cache.telemetry = self.telemetry
        self.progress = progress if progress is not None else NullProgress()
        self.cache_format = "json" if cache_format == "text" else cache_format
        if self.cache_format not in ("json", "binary"):
            raise ValueError(f"unknown cache format {cache_format!r}")
        self._owns_backend = not isinstance(backend, ExecutorBackend)
        self.backend = resolve_backend(backend, self.jobs, workers=workers)
        self.stats = EngineStats()
        #: Report of the most recent post-run auto-GC pass (``None`` when
        #: no bounds are configured or no run has finished yet).
        self.last_gc = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the backend's resources if this engine created it.

        A backend *instance* passed to the constructor is left running —
        that is the point of sharing a persistent backend across engines.
        """
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        scale: float,
        predictors: Sequence[str],
        benchmarks: Sequence[str],
    ):
        """Run one full campaign; returns a ``CampaignResult``.

        Results are bit-identical for every ``jobs`` value and every
        backend: parallelism only changes *where* each work unit executes,
        and the merge phase reassembles the exact lockstep accounting.
        """
        # Imported lazily: campaign.py is the public façade over this
        # engine and importing it at module level would be circular.
        from repro.simulation.campaign import CampaignResult

        # Wall time anchors the run for humans and for cache-GC mtime
        # comparisons; every *duration* comes from the paired monotonic
        # clock, so a clock jump mid-run cannot skew them.
        started = time.perf_counter()
        run_started_wall = time.time()
        predictors = tuple(predictors)
        benchmarks = tuple(benchmarks)
        stats = EngineStats(benchmarks=len(benchmarks), predictors=len(predictors))
        self.stats = stats

        self._annotate_run()
        cache_base = self._cache_bytes()
        with self.telemetry.span(
            "run",
            kind="campaign",
            scale=scale,
            benchmarks=len(benchmarks),
            predictors=len(predictors),
        ) as run_span:
            traces, digests, statistics = self._trace_phase(scale, benchmarks)
            simulations = self._simulate_phase(
                predictors, benchmarks, traces, digests, stats
            )
            stats.total_seconds = time.perf_counter() - started
            self._finish_run_stats(stats, cache_base, run_span)
        self.progress.campaign_finished(stats)
        self._auto_gc(run_started_wall)
        return CampaignResult(
            scale=scale,
            predictor_names=predictors,
            traces=traces,
            statistics=statistics,
            simulations=simulations,
        )

    def run_sweep(self, spec):
        """Run one parameter sweep; returns a ``SweepResult``.

        The sweep layer (:mod:`repro.engine.sweeps`) expands the spec into
        the same trace/simulate task graph campaigns use, deduplicating
        trace work shared between sweep points, so sweeps and campaigns
        share cache entries.  Imported lazily: sweeps builds on this class.
        """
        from repro.engine.sweeps import execute_sweep

        run_started_wall = time.time()
        self._annotate_run()
        cache_base = self._cache_bytes()
        with self.telemetry.span(
            "run",
            kind="sweep",
            benchmarks=len(spec.benchmark_axis()),
            predictors=len(spec.predictors),
        ) as run_span:
            result = execute_sweep(self, spec)
            self._finish_run_stats(self.stats, cache_base, run_span)
        self._auto_gc(run_started_wall)
        return result

    # ------------------------------------------------------------------ #
    # Run-level telemetry plumbing
    # ------------------------------------------------------------------ #
    def _annotate_run(self) -> None:
        """Stamp the engine configuration onto the run manifest."""
        self.telemetry.annotate(
            backend=self.backend.name,
            jobs=self.jobs,
            cache_dir=str(self.cache.root) if self.cache else None,
            cache_format=self.cache_format if self.cache else None,
        )

    def _cache_bytes(self) -> tuple[int, int]:
        """Snapshot of the cache's cumulative (hit, write) byte counters."""
        if self.cache is None:
            return (0, 0)
        return (self.cache.hit_bytes, self.cache.write_bytes)

    def _finish_run_stats(self, stats: EngineStats, cache_base, run_span) -> None:
        """Fold this run's cache byte deltas into ``stats`` and the span.

        The cache counters are cumulative per :class:`ResultCache`
        instance, so the run's own traffic is the delta against the
        snapshot taken when the run began.
        """
        hit_base, write_base = cache_base
        hit_bytes, write_bytes = self._cache_bytes()
        stats.cache_hit_bytes = hit_bytes - hit_base
        stats.cache_write_bytes = write_bytes - write_base
        run_span.set(
            tasks_computed=stats.tasks_computed,
            tasks_cached=stats.tasks_cached,
            cache_hit_bytes=stats.cache_hit_bytes,
            cache_write_bytes=stats.cache_write_bytes,
        )

    # ------------------------------------------------------------------ #
    # Phases — thin configurations of the shared phase executor
    # ------------------------------------------------------------------ #
    def _trace_phase(
        self, scale: float, benchmarks: tuple[str, ...]
    ) -> tuple[dict, dict[str, str], dict]:
        tasks = {
            name: TraceTask.for_workload(name, scale=scale) for name in benchmarks
        }
        traces: dict = {}
        digests: dict[str, str] = {}
        statistics: dict = {}

        def materialise(name: str, payload: dict) -> None:
            traces[name] = payload_trace(payload)
            digests[name] = payload_trace_digest(payload)
            statistics[name] = statistics_from_dict(payload["statistics"])

        def accept_cached(name: str, payload: dict) -> bool:
            # Eager materialisation policy: binary cache hits materialise
            # straight from the v3 bytes and use the stored digest, so the
            # canonical text is never rebuilt on the warm path.  A payload
            # whose embedded trace is corrupt is treated as a miss: the
            # benchmark is re-traced instead of crashing the run.
            try:
                materialise(name, payload)
            except Exception:
                traces.pop(name, None)
                digests.pop(name, None)
                return False
            return True

        run_phase(
            self,
            PhaseSpec(
                name="trace",
                kind="trace",
                counter="traces",
                tasks=[
                    PhaseTask(
                        uid=name,
                        label=name,
                        cache_key=tasks[name].cache_key(),
                        build_payload=lambda inline, task=tasks[name]: task.payload(),
                    )
                    for name in benchmarks
                ],
                worker=execute_trace_task,
                accept_cached=accept_cached,
                accept_fresh=materialise,
            ),
        )
        return traces, digests, statistics

    def _simulate_phase(
        self,
        predictors: tuple[str, ...],
        benchmarks: tuple[str, ...],
        traces: dict,
        digests: dict[str, str],
        stats: EngineStats,
    ) -> dict:
        signatures = {name: predictor_signature(name) for name in predictors}
        # A merged result is fully determined by the trace content and the
        # ordered predictor configurations, so fully-warm benchmarks skip
        # both the shard fetches and the per-record merge pass.
        merge_keys = {
            benchmark: {
                "kind": "merge",
                "format": TASK_FORMAT_VERSION,
                "trace": digests[benchmark],
                "predictors": [[name, signatures[name]] for name in predictors],
            }
            for benchmark in benchmarks
        }
        simulations: dict = {}
        if self.cache:
            for benchmark in benchmarks:
                cached = self.cache.get("merge", merge_keys[benchmark])
                if cached is not None:
                    simulations[benchmark] = simulation_from_dict(cached["simulation"])
                    stats.record("simulations", cached=True, count=len(predictors))

        shards: dict[str, dict[str, PredictorShard]] = {
            benchmark: {} for benchmark in benchmarks if benchmark not in simulations
        }
        # Intra-trace sharding: benchmarks whose trace gets a window plan
        # run through the sharded path (replay + windows + stitch) instead
        # of the pair-level simulate phase.  Results and pair-level cache
        # entries are bit-identical either way.
        shard_plans: dict[str, list[tuple[int, int]]] = {}
        if self.shard_window is not None:
            slots = self.backend.parallel_slots()
            for benchmark in shards:
                windows = plan_shard_windows(
                    self.shard_window, len(traces[benchmark]), slots
                )
                if windows is not None:
                    shard_plans[benchmark] = windows
        # Encode each trace for the pool wire at most once, however many
        # predictors are pending over it.
        wire_bytes: dict[str, bytes] = {}

        def build_payload(task: SimulateTask, inline: bool) -> dict:
            if inline:
                return task.payload(traces[task.benchmark], inline=True, kernel=self.kernel)
            if task.benchmark not in wire_bytes:
                from repro.trace.io import dumps_trace_binary

                wire_bytes[task.benchmark] = dumps_trace_binary(
                    traces[task.benchmark], compress=True
                )
            return task.payload(
                None,
                inline=False,
                trace_bytes=wire_bytes[task.benchmark],
                kernel=self.kernel,
            )

        def accept_shard(uid: tuple[str, str], payload: dict) -> bool:
            benchmark, predictor = uid
            shards[benchmark][predictor] = shard_from_dict(payload["shard"])
            return True

        phase_tasks = []
        for benchmark in benchmarks:
            if benchmark in simulations or benchmark in shard_plans:
                continue
            for predictor in predictors:
                task = SimulateTask(
                    benchmark=benchmark,
                    predictor=predictor,
                    trace_digest=digests[benchmark],
                    predictor_signature=signatures[predictor],
                )
                phase_tasks.append(
                    PhaseTask(
                        uid=(benchmark, predictor),
                        label=f"{benchmark}:{predictor}",
                        cache_key=task.cache_key(),
                        build_payload=lambda inline, task=task: build_payload(
                            task, inline
                        ),
                    )
                )

        run_phase(
            self,
            PhaseSpec(
                name="simulate",
                kind="simulate",
                counter="simulations",
                tasks=phase_tasks,
                worker=execute_simulate_task,
                accept_cached=accept_shard,
                accept_fresh=accept_shard,
                total=(len(benchmarks) - len(shard_plans)) * len(predictors),
                presatisfied_count=len(simulations) * len(predictors),
                presatisfied_labels=[
                    f"{benchmark}:*" for benchmark in benchmarks if benchmark in simulations
                ],
            ),
        )

        if shard_plans:
            units = [
                WindowedUnit(
                    uid=(benchmark, predictor),
                    label=f"{benchmark}:{predictor}",
                    benchmark=benchmark,
                    predictor=predictor,
                    trace_digest=digests[benchmark],
                    predictor_signature=signatures[predictor],
                    windows=tuple(shard_plans[benchmark]),
                    get_trace=lambda benchmark=benchmark: traces[benchmark],
                )
                for benchmark in shard_plans
                for predictor in predictors
            ]
            for (benchmark, predictor), shard in run_windowed_simulations(
                self, units
            ).items():
                shards[benchmark][predictor] = shard

        for benchmark in benchmarks:
            if benchmark in simulations:
                continue
            merged = merge_shards(
                traces[benchmark],
                {predictor: shards[benchmark][predictor] for predictor in predictors},
                kernel=self.kernel,
            )
            simulations[benchmark] = merged
            if self.cache:
                self.cache.put(
                    "merge",
                    merge_keys[benchmark],
                    {"simulation": simulation_to_dict(merged)},
                    format=self.cache_format,
                )
        return {benchmark: simulations[benchmark] for benchmark in benchmarks}

    # ------------------------------------------------------------------ #
    # Post-run cache maintenance
    # ------------------------------------------------------------------ #
    def _auto_gc(self, run_started_wall: float) -> None:
        """Run a bounded GC pass after a run when bounds are configured.

        Entries written or touched since ``run_started_wall`` — everything
        the finishing run produced or read — are protected from eviction,
        so a ``max_bytes`` smaller than one run's output can never evict
        the run's own results (the bound then holds on the *next* cold
        start instead).
        """
        if self.cache is None:
            return
        if self.cache.max_bytes is None and self.cache.max_age is None:
            return
        # One second of slack: on filesystems with coarse mtime granularity
        # an entry written just after the run started can have its mtime
        # rounded below the recorded start, and protection must err on the
        # side of keeping fresh results.
        self.last_gc = self.cache.gc(protect_since=run_started_wall - 1.0)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _run_tasks(
        self,
        function: Callable[[dict], dict],
        phase: str,
        labels: Sequence[str],
        payloads: Sequence[dict],
    ) -> list[dict]:
        """Execute payloads on the configured backend, in input order."""
        if not payloads:
            return []
        # Stamped per dispatch, not per engine: a shared backend instance
        # serves several engines, and dispatch spans must land in whichever
        # sink the engine currently driving it is wired to.
        self.backend.telemetry = self.telemetry
        return self.backend.map(
            function,
            payloads,
            on_result=lambda index: self.progress.task_finished(
                phase, labels[index], cached=False
            ),
        )
