"""Task-graph scheduler: decompose, dispatch, cache, merge.

A campaign run proceeds in three phases:

1. **trace** — every benchmark not already in the cache is traced (in
   worker processes when ``jobs > 1``) and its canonical text form stored;
2. **simulate** — every (trace, predictor) pair not in the cache is
   simulated into a :class:`PredictorShard`;
3. **merge** — shards are recombined per benchmark into the joint
   :class:`SimulationResult`, bit-identical to the lockstep loop.

Phases 1 and 2 are embarrassingly parallel; the merge is a cheap single
pass in the parent.  All cross-process data uses the JSON codecs, so the
pool path and the cache path share one representation.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Callable, Sequence

from repro.engine.cache import ResultCache
from repro.engine.codecs import (
    shard_from_dict,
    simulation_from_dict,
    simulation_to_dict,
    statistics_from_dict,
)
from repro.engine.fingerprint import predictor_signature
from repro.engine.progress import NullProgress, ProgressListener
from repro.engine.tasks import TASK_FORMAT_VERSION, SimulateTask, TraceTask
from repro.engine.worker import execute_simulate_task, execute_trace_task
from repro.simulation.simulator import PredictorShard, merge_shards
from repro.trace.io import loads_trace


@dataclass
class EngineStats:
    """What one engine run actually did (vs. served from cache)."""

    benchmarks: int = 0
    predictors: int = 0
    traces_computed: int = 0
    traces_cached: int = 0
    simulations_computed: int = 0
    simulations_cached: int = 0
    total_seconds: float = 0.0

    @property
    def tasks_computed(self) -> int:
        return self.traces_computed + self.simulations_computed

    @property
    def tasks_cached(self) -> int:
        return self.traces_cached + self.simulations_cached


class ExecutionEngine:
    """Schedules campaign work units over workers and the result cache.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` executes everything in-process (no
        pickling, no pool) and is the reference serial path.
    cache_dir:
        Root of the persistent :class:`ResultCache`; ``None`` disables
        on-disk caching.
    use_cache:
        ``False`` ignores ``cache_dir`` entirely (force recompute).
    progress:
        Optional :class:`ProgressListener` receiving live events.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        progress: ProgressListener | None = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = ResultCache(cache_dir) if (use_cache and cache_dir is not None) else None
        self.progress = progress if progress is not None else NullProgress()
        self.stats = EngineStats()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        scale: float,
        predictors: Sequence[str],
        benchmarks: Sequence[str],
    ):
        """Run one full campaign; returns a ``CampaignResult``.

        Results are bit-identical for every ``jobs`` value: parallelism
        only changes *where* each work unit executes, and the merge phase
        reassembles the exact lockstep accounting.
        """
        # Imported lazily: campaign.py is the public façade over this
        # engine and importing it at module level would be circular.
        from repro.simulation.campaign import CampaignResult

        started = time.perf_counter()
        predictors = tuple(predictors)
        benchmarks = tuple(benchmarks)
        stats = EngineStats(benchmarks=len(benchmarks), predictors=len(predictors))
        self.stats = stats

        trace_texts, statistics = self._trace_phase(scale, benchmarks, stats)
        traces = {name: loads_trace(text) for name, text in trace_texts.items()}
        simulations = self._simulate_phase(predictors, benchmarks, traces, trace_texts, stats)

        stats.total_seconds = time.perf_counter() - started
        self.progress.campaign_finished(stats)
        return CampaignResult(
            scale=scale,
            predictor_names=predictors,
            traces=traces,
            statistics=statistics,
            simulations=simulations,
        )

    # ------------------------------------------------------------------ #
    # Phases
    # ------------------------------------------------------------------ #
    def _trace_phase(
        self, scale: float, benchmarks: tuple[str, ...], stats: EngineStats
    ) -> tuple[dict[str, str], dict]:
        tasks = {name: TraceTask(benchmark=name, scale=scale) for name in benchmarks}
        payloads_by_benchmark: dict[str, dict] = {}
        pending: list[TraceTask] = []
        for name in benchmarks:
            cached = self.cache.get("trace", tasks[name].cache_key()) if self.cache else None
            if cached is not None:
                payloads_by_benchmark[name] = cached
                stats.traces_cached += 1
            else:
                pending.append(tasks[name])

        self.progress.phase_started("trace", len(benchmarks), stats.traces_cached)
        for name in payloads_by_benchmark:
            self.progress.task_finished("trace", name, cached=True)
        outcomes = self._run_tasks(
            execute_trace_task,
            "trace",
            [task.benchmark for task in pending],
            [task.payload() for task in pending],
        )
        for task, outcome in zip(pending, outcomes):
            payloads_by_benchmark[task.benchmark] = outcome
            stats.traces_computed += 1
            if self.cache:
                self.cache.put("trace", task.cache_key(), outcome)

        trace_texts = {name: payloads_by_benchmark[name]["trace_text"] for name in benchmarks}
        statistics = {
            name: statistics_from_dict(payloads_by_benchmark[name]["statistics"])
            for name in benchmarks
        }
        return trace_texts, statistics

    def _simulate_phase(
        self,
        predictors: tuple[str, ...],
        benchmarks: tuple[str, ...],
        traces: dict,
        trace_texts: dict[str, str],
        stats: EngineStats,
    ) -> dict:
        signatures = {name: predictor_signature(name) for name in predictors}
        digests = {
            name: sha256(text.encode("utf-8")).hexdigest()
            for name, text in trace_texts.items()
        }
        # A merged result is fully determined by the trace content and the
        # ordered predictor configurations, so fully-warm benchmarks skip
        # both the shard fetches and the per-record merge pass.
        merge_keys = {
            benchmark: {
                "kind": "merge",
                "format": TASK_FORMAT_VERSION,
                "trace": digests[benchmark],
                "predictors": [[name, signatures[name]] for name in predictors],
            }
            for benchmark in benchmarks
        }
        simulations: dict = {}
        if self.cache:
            for benchmark in benchmarks:
                cached = self.cache.get("merge", merge_keys[benchmark])
                if cached is not None:
                    simulations[benchmark] = simulation_from_dict(cached["simulation"])
                    stats.simulations_cached += len(predictors)

        shards: dict[str, dict[str, PredictorShard]] = {}
        pending: list[SimulateTask] = []
        for benchmark in benchmarks:
            if benchmark in simulations:
                continue
            shards[benchmark] = {}
            for predictor in predictors:
                task = SimulateTask(
                    benchmark=benchmark,
                    predictor=predictor,
                    trace_digest=digests[benchmark],
                    predictor_signature=signatures[predictor],
                )
                cached = self.cache.get("simulate", task.cache_key()) if self.cache else None
                if cached is not None:
                    shards[benchmark][predictor] = shard_from_dict(cached["shard"])
                    stats.simulations_cached += 1
                else:
                    pending.append(task)

        total = len(benchmarks) * len(predictors)
        self.progress.phase_started("simulate", total, stats.simulations_cached)
        for benchmark in benchmarks:
            if benchmark in simulations:
                self.progress.task_finished("simulate", f"{benchmark}:*", cached=True)
                continue
            for predictor in shards[benchmark]:
                self.progress.task_finished(
                    "simulate", f"{benchmark}:{predictor}", cached=True
                )
        inline = self.jobs == 1 or len(pending) <= 1
        outcomes = self._run_tasks(
            execute_simulate_task,
            "simulate",
            [f"{task.benchmark}:{task.predictor}" for task in pending],
            [task.payload(traces[task.benchmark], inline=inline) for task in pending],
        )
        for task, outcome in zip(pending, outcomes):
            shards[task.benchmark][task.predictor] = shard_from_dict(outcome["shard"])
            stats.simulations_computed += 1
            if self.cache:
                self.cache.put("simulate", task.cache_key(), outcome)

        for benchmark in benchmarks:
            if benchmark in simulations:
                continue
            merged = merge_shards(
                traces[benchmark],
                {predictor: shards[benchmark][predictor] for predictor in predictors},
            )
            simulations[benchmark] = merged
            if self.cache:
                self.cache.put(
                    "merge", merge_keys[benchmark], {"simulation": simulation_to_dict(merged)}
                )
        return {benchmark: simulations[benchmark] for benchmark in benchmarks}

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _run_tasks(
        self,
        function: Callable[[dict], dict],
        phase: str,
        labels: Sequence[str],
        payloads: Sequence[dict],
    ) -> list[dict]:
        """Execute payloads in-process or across the pool, in input order."""
        results: list[dict] = []
        if not payloads:
            return results
        if self.jobs == 1 or len(payloads) == 1:
            for label, payload in zip(labels, payloads):
                results.append(function(payload))
                self.progress.task_finished(phase, label, cached=False)
            return results
        workers = min(self.jobs, len(payloads))
        with multiprocessing.get_context().Pool(processes=workers) as pool:
            for label, outcome in zip(labels, pool.imap(function, payloads)):
                results.append(outcome)
                self.progress.task_finished(phase, label, cached=False)
        return results
