"""Task-graph scheduler: decompose, dispatch, cache, merge.

A campaign run proceeds in three phases:

1. **trace** — every benchmark not already in the cache is traced (in
   worker processes when ``jobs > 1``) and stored in the configured cache
   format (compressed binary by default, canonical text on request);
2. **simulate** — every (trace, predictor) pair not in the cache is
   simulated into a :class:`PredictorShard`;
3. **merge** — shards are recombined per benchmark into the joint
   :class:`SimulationResult`, bit-identical to the lockstep loop.

Phases 1 and 2 are embarrassingly parallel; the merge is a cheap single
pass in the parent.  All cross-process data uses the JSON codecs, so the
pool path and the cache path share one representation.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.engine.cache import ResultCache
from repro.engine.codecs import (
    payload_trace,
    payload_trace_digest,
    shard_from_dict,
    simulation_from_dict,
    simulation_to_dict,
    statistics_from_dict,
)
from repro.engine.fingerprint import predictor_signature
from repro.engine.progress import NullProgress, ProgressListener
from repro.engine.tasks import TASK_FORMAT_VERSION, SimulateTask, TraceTask
from repro.engine.worker import execute_simulate_task, execute_trace_task
from repro.simulation.simulator import PredictorShard, merge_shards


@dataclass
class EngineStats:
    """What one engine run actually did (vs. served from cache)."""

    benchmarks: int = 0
    predictors: int = 0
    traces_computed: int = 0
    traces_cached: int = 0
    simulations_computed: int = 0
    simulations_cached: int = 0
    total_seconds: float = 0.0

    @property
    def tasks_computed(self) -> int:
        return self.traces_computed + self.simulations_computed

    @property
    def tasks_cached(self) -> int:
        return self.traces_cached + self.simulations_cached


class ExecutionEngine:
    """Schedules campaign work units over workers and the result cache.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` executes everything in-process (no
        pickling, no pool) and is the reference serial path.
    cache_dir:
        Root of the persistent :class:`ResultCache`; ``None`` disables
        on-disk caching.
    use_cache:
        ``False`` ignores ``cache_dir`` entirely (force recompute).
    progress:
        Optional :class:`ProgressListener` receiving live events.
    cache_format:
        Storage format for new cache entries: ``"binary"`` (default)
        writes the compressed ``.rvpc`` envelope, ``"text"`` the v1 plain
        JSON files.  Reads always accept both, and both decode to the
        same canonical payloads, so results — and the trace digests that
        key them — are bit-identical whichever format a cache holds.
    cache_max_bytes / cache_max_age:
        Garbage-collection bounds for the persistent cache.  When either
        is set, a bounded :meth:`ResultCache.gc` pass runs automatically
        after every :meth:`run`/:meth:`run_sweep`; entries produced or
        touched by the finishing run are never evicted by that pass (see
        ``protect_since``), so a budget smaller than one run's output
        degrades to best-effort instead of destroying fresh results.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        progress: ProgressListener | None = None,
        cache_format: str = "binary",
        cache_max_bytes: int | None = None,
        cache_max_age: float | None = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = (
            ResultCache(cache_dir, max_bytes=cache_max_bytes, max_age=cache_max_age)
            if (use_cache and cache_dir is not None)
            else None
        )
        self.progress = progress if progress is not None else NullProgress()
        self.cache_format = "json" if cache_format == "text" else cache_format
        if self.cache_format not in ("json", "binary"):
            raise ValueError(f"unknown cache format {cache_format!r}")
        self.stats = EngineStats()
        #: Report of the most recent post-run auto-GC pass (``None`` when
        #: no bounds are configured or no run has finished yet).
        self.last_gc = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        scale: float,
        predictors: Sequence[str],
        benchmarks: Sequence[str],
    ):
        """Run one full campaign; returns a ``CampaignResult``.

        Results are bit-identical for every ``jobs`` value: parallelism
        only changes *where* each work unit executes, and the merge phase
        reassembles the exact lockstep accounting.
        """
        # Imported lazily: campaign.py is the public façade over this
        # engine and importing it at module level would be circular.
        from repro.simulation.campaign import CampaignResult

        started = time.perf_counter()
        run_started_wall = time.time()
        predictors = tuple(predictors)
        benchmarks = tuple(benchmarks)
        stats = EngineStats(benchmarks=len(benchmarks), predictors=len(predictors))
        self.stats = stats

        traces, digests, statistics = self._trace_phase(scale, benchmarks, stats)
        simulations = self._simulate_phase(predictors, benchmarks, traces, digests, stats)

        stats.total_seconds = time.perf_counter() - started
        self.progress.campaign_finished(stats)
        self._auto_gc(run_started_wall)
        return CampaignResult(
            scale=scale,
            predictor_names=predictors,
            traces=traces,
            statistics=statistics,
            simulations=simulations,
        )

    def run_sweep(self, spec):
        """Run one parameter sweep; returns a ``SweepResult``.

        The sweep layer (:mod:`repro.engine.sweeps`) expands the spec into
        the same trace/simulate task graph campaigns use, deduplicating
        trace work shared between sweep points, so sweeps and campaigns
        share cache entries.  Imported lazily: sweeps builds on this class.
        """
        from repro.engine.sweeps import execute_sweep

        run_started_wall = time.time()
        result = execute_sweep(self, spec)
        self._auto_gc(run_started_wall)
        return result

    # ------------------------------------------------------------------ #
    # Phases
    # ------------------------------------------------------------------ #
    def _trace_phase(
        self, scale: float, benchmarks: tuple[str, ...], stats: EngineStats
    ) -> tuple[dict, dict[str, str], dict]:
        tasks = {
            name: TraceTask.for_workload(name, scale=scale) for name in benchmarks
        }
        traces: dict = {}
        digests: dict[str, str] = {}
        statistics: dict = {}

        def materialise(name: str, payload: dict) -> bool:
            # Binary cache hits materialise straight from the v3 bytes and
            # use the stored digest, so the canonical text is never rebuilt
            # on the warm path; fresh and JSON payloads take the text route.
            # A payload whose embedded trace is corrupt is treated as a
            # miss: the benchmark is re-traced instead of crashing the run.
            try:
                traces[name] = payload_trace(payload)
                digests[name] = payload_trace_digest(payload)
                statistics[name] = statistics_from_dict(payload["statistics"])
            except Exception:
                traces.pop(name, None)
                digests.pop(name, None)
                return False
            return True

        pending: list[TraceTask] = []
        for name in benchmarks:
            cached = self.cache.get("trace", tasks[name].cache_key()) if self.cache else None
            if cached is not None and materialise(name, cached):
                stats.traces_cached += 1
            else:
                pending.append(tasks[name])

        self.progress.phase_started("trace", len(benchmarks), stats.traces_cached)
        for name in traces:
            self.progress.task_finished("trace", name, cached=True)
        outcomes = self._run_tasks(
            execute_trace_task,
            "trace",
            [task.benchmark for task in pending],
            [task.payload() for task in pending],
        )
        for task, outcome in zip(pending, outcomes):
            name = task.benchmark
            traces[name] = payload_trace(outcome)
            digests[name] = payload_trace_digest(outcome)
            statistics[name] = statistics_from_dict(outcome["statistics"])
            stats.traces_computed += 1
            if self.cache:
                self.cache.put("trace", task.cache_key(), outcome, format=self.cache_format)
        return traces, digests, statistics

    def _simulate_phase(
        self,
        predictors: tuple[str, ...],
        benchmarks: tuple[str, ...],
        traces: dict,
        digests: dict[str, str],
        stats: EngineStats,
    ) -> dict:
        signatures = {name: predictor_signature(name) for name in predictors}
        # A merged result is fully determined by the trace content and the
        # ordered predictor configurations, so fully-warm benchmarks skip
        # both the shard fetches and the per-record merge pass.
        merge_keys = {
            benchmark: {
                "kind": "merge",
                "format": TASK_FORMAT_VERSION,
                "trace": digests[benchmark],
                "predictors": [[name, signatures[name]] for name in predictors],
            }
            for benchmark in benchmarks
        }
        simulations: dict = {}
        if self.cache:
            for benchmark in benchmarks:
                cached = self.cache.get("merge", merge_keys[benchmark])
                if cached is not None:
                    simulations[benchmark] = simulation_from_dict(cached["simulation"])
                    stats.simulations_cached += len(predictors)

        shards: dict[str, dict[str, PredictorShard]] = {}
        pending: list[SimulateTask] = []
        for benchmark in benchmarks:
            if benchmark in simulations:
                continue
            shards[benchmark] = {}
            for predictor in predictors:
                task = SimulateTask(
                    benchmark=benchmark,
                    predictor=predictor,
                    trace_digest=digests[benchmark],
                    predictor_signature=signatures[predictor],
                )
                cached = self.cache.get("simulate", task.cache_key()) if self.cache else None
                if cached is not None:
                    shards[benchmark][predictor] = shard_from_dict(cached["shard"])
                    stats.simulations_cached += 1
                else:
                    pending.append(task)

        total = len(benchmarks) * len(predictors)
        self.progress.phase_started("simulate", total, stats.simulations_cached)
        for benchmark in benchmarks:
            if benchmark in simulations:
                self.progress.task_finished("simulate", f"{benchmark}:*", cached=True)
                continue
            for predictor in shards[benchmark]:
                self.progress.task_finished(
                    "simulate", f"{benchmark}:{predictor}", cached=True
                )
        inline = self.jobs == 1 or len(pending) <= 1
        wire_bytes: dict[str, bytes] = {}
        if not inline:
            # Encode each trace for the pool wire once, however many
            # predictors are pending over it.
            from repro.trace.io import dumps_trace_binary

            for task in pending:
                if task.benchmark not in wire_bytes:
                    wire_bytes[task.benchmark] = dumps_trace_binary(
                        traces[task.benchmark], compress=True
                    )
        outcomes = self._run_tasks(
            execute_simulate_task,
            "simulate",
            [f"{task.benchmark}:{task.predictor}" for task in pending],
            [
                task.payload(
                    traces[task.benchmark],
                    inline=inline,
                    trace_bytes=wire_bytes.get(task.benchmark),
                )
                for task in pending
            ],
        )
        for task, outcome in zip(pending, outcomes):
            shards[task.benchmark][task.predictor] = shard_from_dict(outcome["shard"])
            stats.simulations_computed += 1
            if self.cache:
                self.cache.put("simulate", task.cache_key(), outcome, format=self.cache_format)

        for benchmark in benchmarks:
            if benchmark in simulations:
                continue
            merged = merge_shards(
                traces[benchmark],
                {predictor: shards[benchmark][predictor] for predictor in predictors},
            )
            simulations[benchmark] = merged
            if self.cache:
                self.cache.put(
                    "merge",
                    merge_keys[benchmark],
                    {"simulation": simulation_to_dict(merged)},
                    format=self.cache_format,
                )
        return {benchmark: simulations[benchmark] for benchmark in benchmarks}

    # ------------------------------------------------------------------ #
    # Post-run cache maintenance
    # ------------------------------------------------------------------ #
    def _auto_gc(self, run_started_wall: float) -> None:
        """Run a bounded GC pass after a run when bounds are configured.

        Entries written or touched since ``run_started_wall`` — everything
        the finishing run produced or read — are protected from eviction,
        so a ``max_bytes`` smaller than one run's output can never evict
        the run's own results (the bound then holds on the *next* cold
        start instead).
        """
        if self.cache is None:
            return
        if self.cache.max_bytes is None and self.cache.max_age is None:
            return
        # One second of slack: on filesystems with coarse mtime granularity
        # an entry written just after the run started can have its mtime
        # rounded below the recorded start, and protection must err on the
        # side of keeping fresh results.
        self.last_gc = self.cache.gc(protect_since=run_started_wall - 1.0)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _run_tasks(
        self,
        function: Callable[[dict], dict],
        phase: str,
        labels: Sequence[str],
        payloads: Sequence[dict],
    ) -> list[dict]:
        """Execute payloads in-process or across the pool, in input order."""
        results: list[dict] = []
        if not payloads:
            return results
        if self.jobs == 1 or len(payloads) == 1:
            for label, payload in zip(labels, payloads):
                results.append(function(payload))
                self.progress.task_finished(phase, label, cached=False)
            return results
        workers = min(self.jobs, len(payloads))
        with multiprocessing.get_context().Pool(processes=workers) as pool:
            for label, outcome in zip(labels, pool.imap(function, payloads)):
                results.append(outcome)
                self.progress.task_finished(phase, label, cached=False)
        return results
