"""Progress reporting for engine runs.

The engine emits coarse-grained events (phase boundaries, one event per
completed work unit, a final summary).  :class:`NullProgress` swallows them
(the library default); :class:`ConsoleProgress` renders a compact live log
to a stream (the CLI uses stderr, keeping stdout clean for result tables).
"""

from __future__ import annotations

import sys
from typing import TextIO


class ProgressListener:
    """No-op base class; subclass and override what you need."""

    def phase_started(self, phase: str, total_tasks: int, cached_tasks: int) -> None:
        """A phase begins: ``total_tasks`` overall, ``cached_tasks`` already warm."""

    def task_finished(self, phase: str, label: str, cached: bool) -> None:
        """One work unit completed (or was served from cache)."""

    def campaign_finished(self, stats) -> None:
        """The whole campaign completed; ``stats`` is an ``EngineStats``."""


class NullProgress(ProgressListener):
    """Silent listener."""


class ConsoleProgress(ProgressListener):
    """Line-per-event progress log, suitable for interactive CLI runs."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._done = 0
        self._total = 0

    def _emit(self, message: str) -> None:
        print(message, file=self.stream, flush=True)

    def phase_started(self, phase: str, total_tasks: int, cached_tasks: int) -> None:
        self._done = 0
        self._total = total_tasks
        self._emit(
            f"[{phase}] {total_tasks} task(s), {cached_tasks} cached, "
            f"{total_tasks - cached_tasks} to run"
        )

    def task_finished(self, phase: str, label: str, cached: bool) -> None:
        self._done += 1
        source = "cache" if cached else "computed"
        self._emit(f"[{phase}] {self._done}/{self._total} {label} ({source})")

    def campaign_finished(self, stats) -> None:
        line = (
            f"[done] traces {stats.traces_computed} computed / {stats.traces_cached} cached; "
            f"simulations {stats.simulations_computed} computed / "
            f"{stats.simulations_cached} cached; {stats.total_seconds:.2f}s"
        )
        # Phase timing and cache traffic exist on EngineStats since the
        # telemetry layer landed; getattr keeps older stats objects valid.
        trace_seconds = getattr(stats, "trace_seconds", 0.0)
        simulate_seconds = getattr(stats, "simulate_seconds", 0.0)
        if trace_seconds or simulate_seconds:
            line += f" (trace {trace_seconds:.2f}s, simulate {simulate_seconds:.2f}s)"
        hit_bytes = getattr(stats, "cache_hit_bytes", 0)
        write_bytes = getattr(stats, "cache_write_bytes", 0)
        if hit_bytes or write_bytes:
            line += f"; cache {hit_bytes} B read, {write_bytes} B written"
        self._emit(line)
