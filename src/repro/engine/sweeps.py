"""Generic parameter sweeps over the execution engine.

A *sweep* evaluates one benchmark across the cross product of three axes —
input sets, flag settings and predictor configurations — the shape of the
paper's Section 4.4 sensitivity studies (Table 6: inputs, Table 7: flags,
Figure 11: FCM order).  :class:`SweepSpec` describes the axes;
:func:`execute_sweep` expands the spec into the engine's existing
trace/simulate task graph:

* one :class:`~repro.engine.tasks.TraceTask` per **unique** (input, flags)
  combination — sweep points that share a trace configuration (every
  predictor point of an order study, duplicated axis values) are
  deduplicated before any work is scheduled;
* one :class:`~repro.engine.tasks.SimulateTask` per unique
  (trace digest, predictor configuration) pair — two flag settings that
  happen to produce byte-identical traces share their simulation too,
  because simulations are keyed by trace *content*;
* no merge phase: a sweep point is a single-predictor measurement, and a
  :class:`~repro.simulation.simulator.PredictorShard`'s aggregate result
  is already bit-identical to that predictor's slot in the lockstep loop.

Tasks run through the owning engine's worker pool (``--jobs``) and
read/write the same persistent :class:`~repro.engine.cache.ResultCache`
campaigns use — the cache keys are shared, so a campaign's gcc trace warms
the sweep's default-input point and vice versa.  A fully warm sweep
performs zero trace or simulate computation and never even decodes the
cached traces (record counts come from the stored statistics).

:func:`run_sweep` is the library-level façade mirroring
:func:`repro.simulation.campaign.run_campaign`: it builds an engine from
the process-wide defaults (the CLI's ``--jobs``/``--cache-dir``/… flags)
and memoises results in-process by spec and predictor fingerprints.
``docs/sweeps.md`` documents spec format, dedup semantics and cache keys.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine.codecs import (
    payload_trace,
    payload_trace_digest,
    shard_from_dict,
    statistics_from_dict,
)
from repro.engine.fingerprint import predictor_signature, predictors_fingerprint
from repro.engine.scheduler import EngineStats
from repro.engine.tasks import SimulateTask, TraceTask
from repro.engine.worker import execute_simulate_task, execute_trace_task
from repro.errors import SweepError
from repro.simulation.simulator import PredictorResult
from repro.trace.io import dumps_trace_binary
from repro.trace.stream import TraceStatistics, ValueTrace
from repro.workloads.suite import get_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.scheduler import ExecutionEngine


# --------------------------------------------------------------------------- #
# Specification
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepSpec:
    """Axes of one parameter sweep.

    ``inputs`` and ``flags`` may contain ``None`` for "the workload's
    default"; :meth:`points` resolves (and validates) every name against
    the workload, so equivalent specs expand to identical sweep points.
    The expansion order is inputs-major, predictors-minor, matching the
    row order of the paper's tables.
    """

    benchmark: str = "gcc"
    scale: float = 1.0
    inputs: tuple[str | None, ...] = (None,)
    flags: tuple[str | None, ...] = (None,)
    predictors: tuple[str, ...] = ("fcm2",)

    # ------------------------------------------------------------------ #
    # The paper's three studies
    # ------------------------------------------------------------------ #
    @classmethod
    def input_study(
        cls,
        benchmark: str = "gcc",
        predictor: str = "fcm2",
        scale: float = 1.0,
        inputs: tuple[str, ...] | None = None,
    ) -> "SweepSpec":
        """Table 6: one predictor across the benchmark's input files."""
        names = inputs if inputs is not None else get_workload(benchmark).input_sets
        return cls(
            benchmark=benchmark, scale=scale, inputs=tuple(names), predictors=(predictor,)
        )

    @classmethod
    def flag_study(
        cls,
        benchmark: str = "gcc",
        predictor: str = "fcm2",
        scale: float = 1.0,
        input_name: str | None = None,
        flags: tuple[str, ...] | None = None,
    ) -> "SweepSpec":
        """Table 7: one predictor across the benchmark's flag settings."""
        names = flags if flags is not None else get_workload(benchmark).flag_sets
        return cls(
            benchmark=benchmark,
            scale=scale,
            inputs=(input_name,),
            flags=tuple(names),
            predictors=(predictor,),
        )

    @classmethod
    def order_study(
        cls,
        benchmark: str = "gcc",
        orders: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
        scale: float = 1.0,
        input_name: str | None = None,
    ) -> "SweepSpec":
        """Figure 11: blended fcm predictors of increasing order, one trace."""
        return cls(
            benchmark=benchmark,
            scale=scale,
            inputs=(input_name,),
            predictors=tuple(f"fcm{order}" for order in orders),
        )

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def points(self) -> tuple["SweepPoint", ...]:
        """Expand the axes into resolved sweep points (cross product)."""
        if not self.predictors:
            raise SweepError(f"sweep over {self.benchmark!r} names no predictors")
        if not self.inputs or not self.flags:
            raise SweepError(f"sweep over {self.benchmark!r} has an empty axis")
        workload = get_workload(self.benchmark)
        expanded = []
        for input_name in self.inputs:
            resolved_input = workload.validate_input(input_name)
            for flags in self.flags:
                resolved_flags = workload.validate_flags(flags)
                for predictor in self.predictors:
                    expanded.append(
                        SweepPoint(
                            benchmark=self.benchmark,
                            scale=self.scale,
                            input_name=resolved_input,
                            flags=resolved_flags,
                            predictor=predictor,
                        )
                    )
        return tuple(expanded)


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved (benchmark, scale, input, flags, predictor) cell."""

    benchmark: str
    scale: float
    input_name: str
    flags: str
    predictor: str

    @property
    def trace_config(self) -> tuple[str, str]:
        """The trace-determining coordinates (input, flags) of this point."""
        return (self.input_name, self.flags)

    def label(self) -> str:
        return f"{self.benchmark}:{self.input_name}:{self.flags}:{self.predictor}"


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
@dataclass
class SweepPointResult:
    """Measurement of one sweep point.

    ``result`` is the predictor's aggregate accounting, bit-identical to
    ``simulate_trace(trace, (predictor,)).results[predictor]`` on the same
    trace configuration (predictor tables are private, so the shard path
    reproduces the lockstep outcomes exactly).
    """

    point: SweepPoint
    record_count: int
    statistics: TraceStatistics
    result: PredictorResult

    @property
    def accuracy(self) -> float:
        return self.result.accuracy


@dataclass
class SweepResult:
    """Everything produced by one sweep run."""

    spec: SweepSpec
    points: tuple[SweepPointResult, ...]
    stats: EngineStats = field(default_factory=EngineStats)

    def by_predictor(self, predictor: str) -> list[SweepPointResult]:
        """The sweep points measuring ``predictor``, in expansion order."""
        return [entry for entry in self.points if entry.point.predictor == predictor]


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #
class _LazyTrace:
    """Materialise a trace-task payload's trace at most once, on demand.

    A fully warm sweep never touches the (expensive) embedded trace —
    digests and record counts come from the payload's JSON fields — so
    decoding is deferred until a pending simulation actually needs the
    records.  A corrupt embedded trace falls back through ``repair``
    (re-trace, fix the run's stats, overwrite the bad cache entry),
    mirroring the campaign scheduler's treat-corruption-as-miss policy.
    """

    def __init__(self, payload: dict, repair) -> None:
        self._payload = payload
        self._repair = repair
        self._trace: ValueTrace | None = None

    def get(self) -> ValueTrace:
        if self._trace is None:
            try:
                self._trace = payload_trace(self._payload)
            except Exception:
                self._payload = self._repair()
                self._trace = payload_trace(self._payload)
        return self._trace


def execute_sweep(engine: "ExecutionEngine", spec: SweepSpec) -> SweepResult:
    """Expand ``spec`` into trace/simulate tasks and run them on ``engine``.

    Results are bit-identical for every ``jobs`` value and cache
    temperature; prefer :meth:`ExecutionEngine.run_sweep` (which adds the
    post-run bounded GC pass) or the :func:`run_sweep` façade.
    """
    started = time.perf_counter()
    points = spec.points()
    signatures = {name: predictor_signature(name) for name in spec.predictors}

    # Unique trace configurations, in first-appearance order.
    trace_tasks: dict[tuple[str, str], TraceTask] = {}
    for point in points:
        if point.trace_config not in trace_tasks:
            trace_tasks[point.trace_config] = TraceTask(
                benchmark=point.benchmark,
                scale=point.scale,
                input_name=point.input_name,
                flags=point.flags,
            )
    stats = EngineStats(benchmarks=len(trace_tasks), predictors=len(spec.predictors))
    engine.stats = stats

    # ------------------------------------------------------------------ #
    # Trace phase (deduplicated across sweep points)
    # ------------------------------------------------------------------ #
    payloads: dict[tuple[str, str], dict] = {}
    pending_traces: list[tuple[str, str]] = []
    for config, task in trace_tasks.items():
        cached = engine.cache.get("trace", task.cache_key()) if engine.cache else None
        if cached is not None and _trace_payload_usable(cached):
            payloads[config] = cached
            stats.traces_cached += 1
        else:
            pending_traces.append(config)

    engine.progress.phase_started("trace", len(trace_tasks), stats.traces_cached)
    for config in payloads:
        engine.progress.task_finished("trace", _trace_label(spec, config), cached=True)
    outcomes = engine._run_tasks(
        execute_trace_task,
        "trace",
        [_trace_label(spec, config) for config in pending_traces],
        [trace_tasks[config].payload() for config in pending_traces],
    )
    for config, outcome in zip(pending_traces, outcomes):
        payloads[config] = outcome
        stats.traces_computed += 1
        if engine.cache:
            engine.cache.put(
                "trace", trace_tasks[config].cache_key(), outcome, format=engine.cache_format
            )

    digests = {config: payload_trace_digest(payloads[config]) for config in trace_tasks}
    statistics = {
        config: statistics_from_dict(payloads[config]["statistics"])
        for config in trace_tasks
    }

    def make_repair(config: tuple[str, str]):
        # A stamped entry can pass the cheap probe (digest + statistics
        # readable) while its trace body is corrupt.  When the decode
        # fails, re-trace, account the work honestly (this config was
        # *not* served from cache after all) and overwrite the bad entry
        # so the repair sticks for the next run.
        def repair() -> dict:
            outcome = execute_trace_task(trace_tasks[config].payload())
            stats.traces_computed += 1
            stats.traces_cached -= 1
            if engine.cache:
                engine.cache.put(
                    "trace",
                    trace_tasks[config].cache_key(),
                    outcome,
                    format=engine.cache_format,
                )
            return outcome

        return repair

    traces = {
        config: _LazyTrace(payloads[config], make_repair(config))
        for config in trace_tasks
    }

    # ------------------------------------------------------------------ #
    # Simulate phase (deduplicated by trace content and configuration)
    # ------------------------------------------------------------------ #
    units: dict[tuple[str, str], tuple[SimulateTask, tuple[str, str]]] = {}
    for point in points:
        unit = (digests[point.trace_config], point.predictor)
        if unit not in units:
            units[unit] = (
                SimulateTask(
                    benchmark=point.benchmark,
                    predictor=point.predictor,
                    trace_digest=digests[point.trace_config],
                    predictor_signature=signatures[point.predictor],
                ),
                point.trace_config,
            )

    shards: dict[tuple[str, str], object] = {}
    pending_units: list[tuple[str, str]] = []
    for unit, (task, _) in units.items():
        cached = engine.cache.get("simulate", task.cache_key()) if engine.cache else None
        if cached is not None:
            shards[unit] = shard_from_dict(cached["shard"])
            stats.simulations_cached += 1
        else:
            pending_units.append(unit)

    engine.progress.phase_started("simulate", len(units), stats.simulations_cached)
    for unit in shards:
        engine.progress.task_finished("simulate", _unit_label(spec, units, unit), cached=True)
    inline = engine.jobs == 1 or len(pending_units) <= 1
    wire_bytes: dict[tuple[str, str], bytes] = {}

    def simulate_payload(unit: tuple[str, str]) -> dict:
        task, config = units[unit]
        if inline:
            return task.payload(traces[config].get(), inline=True)
        # Encode each trace for the pool wire once, however many
        # predictors are pending over it (an order study has one trace
        # under its whole predictor axis).
        if config not in wire_bytes:
            wire_bytes[config] = dumps_trace_binary(traces[config].get(), compress=True)
        return task.payload(None, inline=False, trace_bytes=wire_bytes[config])

    outcomes = engine._run_tasks(
        execute_simulate_task,
        "simulate",
        [_unit_label(spec, units, unit) for unit in pending_units],
        [simulate_payload(unit) for unit in pending_units],
    )
    for unit, outcome in zip(pending_units, outcomes):
        shards[unit] = shard_from_dict(outcome["shard"])
        stats.simulations_computed += 1
        if engine.cache:
            engine.cache.put(
                "simulate", units[unit][0].cache_key(), outcome, format=engine.cache_format
            )

    # ------------------------------------------------------------------ #
    # Assembly — one result per sweep point, shared units fanned back out
    # ------------------------------------------------------------------ #
    results = []
    for point in points:
        config = point.trace_config
        shard = shards[(digests[config], point.predictor)]
        point_statistics = statistics[config]
        results.append(
            SweepPointResult(
                point=point,
                record_count=point_statistics.predicted_instructions,
                statistics=point_statistics,
                result=shard.result,
            )
        )
    stats.total_seconds = time.perf_counter() - started
    engine.progress.campaign_finished(stats)
    return SweepResult(spec=spec, points=tuple(results), stats=stats)


def _trace_payload_usable(payload: dict) -> bool:
    """Cheap validity probe for a cached trace payload.

    Confirms the digest and statistics are reachable without decoding the
    embedded trace (the whole point of the warm path).  Entries predating
    stamped digests fall back to a full text render, which also surfaces
    trace corruption; for stamped entries a corrupt trace body is caught
    later by :class:`_LazyTrace`'s re-trace fallback.
    """
    try:
        payload_trace_digest(payload)
        statistics_from_dict(payload["statistics"])
    except Exception:
        return False
    return True


def _trace_label(spec: SweepSpec, config: tuple[str, str]) -> str:
    input_name, flags = config
    return f"{spec.benchmark}:{input_name}:{flags}"


def _unit_label(spec: SweepSpec, units: dict, unit: tuple[str, str]) -> str:
    _, config = units[unit]
    return f"{_trace_label(spec, config)}:{unit[1]}"


# --------------------------------------------------------------------------- #
# Library façade (mirrors repro.simulation.campaign.run_campaign)
# --------------------------------------------------------------------------- #
_SWEEP_MEMO: dict[tuple, SweepResult] = {}


def run_sweep(
    spec: SweepSpec,
    use_cache: bool = True,
    jobs: int | None = None,
    cache_dir=None,
    progress=None,
    cache_format: str | None = None,
) -> SweepResult:
    """Run one sweep on an engine built from the process-wide defaults.

    ``use_cache`` governs both the in-process memo and the on-disk cache;
    unset parameters fall back to the engine defaults configured through
    :func:`repro.simulation.campaign.set_campaign_defaults` (which the CLI
    wires to ``--jobs``/``--cache-dir``/``--cache-format``/``--no-cache``).
    The memo keys on the spec *and* the predictors' configuration
    fingerprints, so re-binding a predictor name cannot serve stale
    results — the same policy the campaign memo follows.
    """
    from repro.simulation import campaign

    use_cache = use_cache and campaign.engine_defaults().use_cache
    key = (spec, predictors_fingerprint(spec.predictors))
    if use_cache and key in _SWEEP_MEMO:
        return _SWEEP_MEMO[key]
    engine = campaign.build_engine(
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        progress=progress,
        cache_format=cache_format,
    )
    result = engine.run_sweep(spec)
    campaign.record_engine_stats(engine.stats)
    if use_cache:
        _SWEEP_MEMO[key] = result
    return result


def clear_sweep_cache() -> None:
    """Drop all in-process memoised sweep results (used by tests)."""
    _SWEEP_MEMO.clear()
