"""Generic parameter sweeps over the execution engine.

A *sweep* evaluates the cross product of four axes — benchmarks, input
sets, flag settings and predictor configurations — the shape of the
paper's Section 4.4 sensitivity studies (Table 6: inputs, Table 7: flags,
Figure 11: FCM order, each over one benchmark) and of cross-benchmark
sensitivity tables beyond the paper's gcc focus.  :class:`SweepSpec`
describes the axes; :func:`execute_sweep` expands the spec into the
engine's existing trace/simulate task graph:

* one :class:`~repro.engine.tasks.TraceTask` per **unique**
  (benchmark, input, flags) combination — sweep points that share a trace
  configuration (every predictor point of an order study, duplicated axis
  values) are deduplicated before any work is scheduled;
* one :class:`~repro.engine.tasks.SimulateTask` per unique
  (trace digest, predictor configuration) pair — two settings that happen
  to produce byte-identical traces share their simulation too, even
  across benchmarks, because simulations are keyed by trace *content*;
* no merge phase: a sweep point is a single-predictor measurement, and a
  :class:`~repro.simulation.simulator.PredictorShard`'s aggregate result
  is already bit-identical to that predictor's slot in the lockstep loop.

Both phases are thin configurations of the shared phase executor
(:mod:`repro.engine.phases` — the same probe → dispatch → put protocol
campaigns run), executed on the owning engine's backend (``--jobs`` /
``--backend``) against the same persistent
:class:`~repro.engine.cache.ResultCache` campaigns use — the cache keys
are shared, so a campaign's gcc trace warms the sweep's default-input
point and vice versa.  Where the campaign scheduler materialises cached
traces eagerly, the sweep's policy is *lazy-with-repair*
(:class:`_LazyTrace`): a fully warm sweep performs zero trace or simulate
computation and never even decodes the cached traces (record counts come
from the stored statistics).

:func:`run_sweep` is the library-level façade mirroring
:func:`repro.simulation.campaign.run_campaign`: it builds an engine from
the process-wide defaults (the CLI's ``--jobs``/``--cache-dir``/… flags)
and memoises results in-process by spec and predictor fingerprints.
``docs/sweeps.md`` documents spec format, dedup semantics and cache keys.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine.codecs import (
    payload_trace,
    payload_trace_digest,
    shard_from_dict,
    statistics_from_dict,
)
from repro.engine.fingerprint import predictor_signature, predictors_fingerprint
from repro.engine.phases import PhaseSpec, PhaseTask, run_phase
from repro.engine.scheduler import EngineStats
from repro.engine.sharding import WindowedUnit, plan_shard_windows, run_windowed_simulations
from repro.engine.tasks import SimulateTask, TraceTask
from repro.engine.telemetry import TELEMETRY_KEY
from repro.engine.worker import execute_simulate_task, execute_trace_task
from repro.errors import SweepError
from repro.simulation.simulator import PredictorResult
from repro.trace.io import dumps_trace_binary
from repro.trace.stream import TraceStatistics, ValueTrace
from repro.workloads.suite import get_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.scheduler import ExecutionEngine

#: Axis value that expands to everything the workload declares (used by
#: the CLI's ``--inputs all``/``--flags all``; resolved per benchmark, so
#: multi-benchmark sweeps expand each benchmark's own declared sets).
AXIS_ALL = "all"

#: A trace-determining coordinate: (benchmark, input, flags).
TraceConfig = tuple[str, str, str]


# --------------------------------------------------------------------------- #
# Specification
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepSpec:
    """Axes of one parameter sweep.

    ``benchmark`` names a single benchmark; ``benchmarks`` (when set)
    overrides it with a whole benchmark axis.  ``inputs`` and ``flags``
    may contain ``None`` for "the workload's default" and the literal
    ``"all"`` for "everything the workload declares"; :meth:`points`
    resolves (and validates) every name against each benchmark's
    workload, so equivalent specs expand to identical sweep points.  The
    expansion order is benchmarks-major, then inputs, then flags, then
    predictors — matching the row order of the paper's tables within each
    benchmark.
    """

    benchmark: str = "gcc"
    scale: float = 1.0
    inputs: tuple[str | None, ...] = (None,)
    flags: tuple[str | None, ...] = (None,)
    predictors: tuple[str, ...] = ("fcm2",)
    benchmarks: tuple[str, ...] | None = None

    # ------------------------------------------------------------------ #
    # The paper's three studies
    # ------------------------------------------------------------------ #
    @classmethod
    def input_study(
        cls,
        benchmark: str = "gcc",
        predictor: str = "fcm2",
        scale: float = 1.0,
        inputs: tuple[str, ...] | None = None,
    ) -> "SweepSpec":
        """Table 6: one predictor across the benchmark's input files."""
        names = inputs if inputs is not None else get_workload(benchmark).input_sets
        return cls(
            benchmark=benchmark, scale=scale, inputs=tuple(names), predictors=(predictor,)
        )

    @classmethod
    def flag_study(
        cls,
        benchmark: str = "gcc",
        predictor: str = "fcm2",
        scale: float = 1.0,
        input_name: str | None = None,
        flags: tuple[str, ...] | None = None,
    ) -> "SweepSpec":
        """Table 7: one predictor across the benchmark's flag settings."""
        names = flags if flags is not None else get_workload(benchmark).flag_sets
        return cls(
            benchmark=benchmark,
            scale=scale,
            inputs=(input_name,),
            flags=tuple(names),
            predictors=(predictor,),
        )

    @classmethod
    def order_study(
        cls,
        benchmark: str = "gcc",
        orders: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
        scale: float = 1.0,
        input_name: str | None = None,
    ) -> "SweepSpec":
        """Figure 11: blended fcm predictors of increasing order, one trace."""
        return cls(
            benchmark=benchmark,
            scale=scale,
            inputs=(input_name,),
            predictors=tuple(f"fcm{order}" for order in orders),
        )

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def benchmark_axis(self) -> tuple[str, ...]:
        """The benchmark axis: ``benchmarks`` when set, else ``(benchmark,)``."""
        if self.benchmarks is not None:
            return tuple(self.benchmarks)
        return (self.benchmark,)

    def points(self) -> tuple["SweepPoint", ...]:
        """Expand the axes into resolved sweep points (cross product)."""
        names = self.benchmark_axis()
        if not self.predictors:
            raise SweepError(f"sweep over {names!r} names no predictors")
        if not names or not self.inputs or not self.flags:
            raise SweepError(f"sweep over {names!r} has an empty axis")
        expanded = []
        for benchmark in names:
            workload = get_workload(benchmark)
            for input_name in _expand_axis(self.inputs, workload.input_sets):
                resolved_input = workload.validate_input(input_name)
                for flags in _expand_axis(self.flags, workload.flag_sets):
                    resolved_flags = workload.validate_flags(flags)
                    for predictor in self.predictors:
                        expanded.append(
                            SweepPoint(
                                benchmark=benchmark,
                                scale=self.scale,
                                input_name=resolved_input,
                                flags=resolved_flags,
                                predictor=predictor,
                            )
                        )
        return tuple(expanded)


def _expand_axis(
    values: tuple[str | None, ...], declared: tuple[str, ...]
) -> tuple[str | None, ...]:
    """Expand :data:`AXIS_ALL` entries to the workload's declared set.

    The literal only acts as a wildcard while no workload declares a set
    member of that name; otherwise it selects that member, as any other
    name would.
    """
    out: list[str | None] = []
    for value in values:
        if value == AXIS_ALL and AXIS_ALL not in declared:
            out.extend(declared)
        else:
            out.append(value)
    return tuple(out)


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved (benchmark, scale, input, flags, predictor) cell."""

    benchmark: str
    scale: float
    input_name: str
    flags: str
    predictor: str

    @property
    def trace_config(self) -> TraceConfig:
        """The trace-determining coordinates (benchmark, input, flags)."""
        return (self.benchmark, self.input_name, self.flags)

    def label(self) -> str:
        return f"{self.benchmark}:{self.input_name}:{self.flags}:{self.predictor}"


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
@dataclass
class SweepPointResult:
    """Measurement of one sweep point.

    ``result`` is the predictor's aggregate accounting, bit-identical to
    ``simulate_trace(trace, (predictor,)).results[predictor]`` on the same
    trace configuration (predictor tables are private, so the shard path
    reproduces the lockstep outcomes exactly).
    """

    point: SweepPoint
    record_count: int
    statistics: TraceStatistics
    result: PredictorResult

    @property
    def accuracy(self) -> float:
        return self.result.accuracy


@dataclass
class SweepResult:
    """Everything produced by one sweep run."""

    spec: SweepSpec
    points: tuple[SweepPointResult, ...]
    stats: EngineStats = field(default_factory=EngineStats)

    def by_predictor(self, predictor: str) -> list[SweepPointResult]:
        """The sweep points measuring ``predictor``, in expansion order."""
        return [entry for entry in self.points if entry.point.predictor == predictor]

    def by_benchmark(self, benchmark: str) -> list[SweepPointResult]:
        """The sweep points measuring ``benchmark``, in expansion order."""
        return [entry for entry in self.points if entry.point.benchmark == benchmark]


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #
class _LazyTrace:
    """Materialise a trace-task payload's trace at most once, on demand.

    The sweep's trace-materialisation policy is *lazy-with-repair*: a
    fully warm sweep never touches the (expensive) embedded trace —
    digests and record counts come from the payload's JSON fields — so
    decoding is deferred until a pending simulation actually needs the
    records.  A corrupt embedded trace falls back through ``repair``
    (re-trace, fix the run's stats, overwrite the bad cache entry),
    mirroring the campaign scheduler's treat-corruption-as-miss policy.
    """

    def __init__(self, payload: dict, repair) -> None:
        self._payload = payload
        self._repair = repair
        self._trace: ValueTrace | None = None

    def get(self) -> ValueTrace:
        if self._trace is None:
            try:
                self._trace = payload_trace(self._payload)
            except Exception:
                self._payload = self._repair()
                self._trace = payload_trace(self._payload)
        return self._trace


def execute_sweep(engine: "ExecutionEngine", spec: SweepSpec) -> SweepResult:
    """Expand ``spec`` into trace/simulate tasks and run them on ``engine``.

    Results are bit-identical for every backend, ``jobs`` value and cache
    temperature; prefer :meth:`ExecutionEngine.run_sweep` (which adds the
    post-run bounded GC pass) or the :func:`run_sweep` façade.
    """
    started = time.perf_counter()
    points = spec.points()
    signatures = {name: predictor_signature(name) for name in spec.predictors}

    # Unique trace configurations, in first-appearance order.
    trace_tasks: dict[TraceConfig, TraceTask] = {}
    for point in points:
        if point.trace_config not in trace_tasks:
            trace_tasks[point.trace_config] = TraceTask(
                benchmark=point.benchmark,
                scale=point.scale,
                input_name=point.input_name,
                flags=point.flags,
            )
    stats = EngineStats(benchmarks=len(trace_tasks), predictors=len(spec.predictors))
    engine.stats = stats

    # ------------------------------------------------------------------ #
    # Trace phase (deduplicated across sweep points, lazy materialisation)
    # ------------------------------------------------------------------ #
    payloads: dict[TraceConfig, dict] = {}

    def accept_trace_probe(config: TraceConfig, payload: dict) -> bool:
        if not _trace_payload_usable(payload):
            return False
        payloads[config] = payload
        return True

    def accept_trace_fresh(config: TraceConfig, outcome: dict) -> None:
        payloads[config] = outcome

    run_phase(
        engine,
        PhaseSpec(
            name="trace",
            kind="trace",
            counter="traces",
            tasks=[
                PhaseTask(
                    uid=config,
                    label=_trace_label(config),
                    cache_key=task.cache_key(),
                    build_payload=lambda inline, task=task: task.payload(),
                )
                for config, task in trace_tasks.items()
            ],
            worker=execute_trace_task,
            accept_cached=accept_trace_probe,
            accept_fresh=accept_trace_fresh,
        ),
    )

    digests = {config: payload_trace_digest(payloads[config]) for config in trace_tasks}
    statistics = {
        config: statistics_from_dict(payloads[config]["statistics"])
        for config in trace_tasks
    }

    def make_repair(config: TraceConfig):
        # A stamped entry can pass the cheap probe (digest + statistics
        # readable) while its trace body is corrupt.  When the decode
        # fails, re-trace, account the work honestly (this config was
        # *not* served from cache after all) and overwrite the bad entry
        # so the repair sticks for the next run.
        def repair() -> dict:
            outcome = execute_trace_task(trace_tasks[config].payload())
            # Repairs bypass the phase executor, so strip the worker's
            # observability sidecar here too — the overwritten cache entry
            # must stay byte-identical with telemetry on or off.
            sidecar = outcome.pop(TELEMETRY_KEY, None)
            if sidecar:
                engine.telemetry.span_record(
                    "task",
                    sidecar.get("execute_seconds", 0.0),
                    phase="trace",
                    label=_trace_label(config),
                    worker_pid=sidecar.get("pid"),
                    function=sidecar.get("function"),
                    repair=True,
                )
            stats.traces_computed += 1
            stats.traces_cached -= 1
            if engine.cache:
                engine.cache.put(
                    "trace",
                    trace_tasks[config].cache_key(),
                    outcome,
                    format=engine.cache_format,
                )
            return outcome

        return repair

    traces = {
        config: _LazyTrace(payloads[config], make_repair(config))
        for config in trace_tasks
    }

    # ------------------------------------------------------------------ #
    # Simulate phase (deduplicated by trace content and configuration)
    # ------------------------------------------------------------------ #
    units: dict[tuple[str, str], tuple[SimulateTask, TraceConfig]] = {}
    for point in points:
        unit = (digests[point.trace_config], point.predictor)
        if unit not in units:
            units[unit] = (
                SimulateTask(
                    benchmark=point.benchmark,
                    predictor=point.predictor,
                    trace_digest=digests[point.trace_config],
                    predictor_signature=signatures[point.predictor],
                ),
                point.trace_config,
            )

    shards: dict[tuple[str, str], object] = {}
    # Intra-trace sharding: units whose trace gets a window plan run
    # through the sharded path (replay + windows + stitch) instead of the
    # pair-level simulate phase.  Window plans come from the stored
    # statistics' record counts, so planning never materialises a lazy
    # trace — a fully warm sharded sweep stays decode-free.
    windowed: dict[tuple[str, str], WindowedUnit] = {}
    if engine.shard_window is not None:
        slots = engine.backend.parallel_slots()
        for unit, (task, config) in units.items():
            length = statistics[config].predicted_instructions
            windows = plan_shard_windows(engine.shard_window, length, slots)
            if windows is not None:
                windowed[unit] = WindowedUnit(
                    uid=unit,
                    label=_unit_label(units, unit),
                    benchmark=task.benchmark,
                    predictor=task.predictor,
                    trace_digest=task.trace_digest,
                    predictor_signature=task.predictor_signature,
                    windows=tuple(windows),
                    get_trace=traces[config].get,
                )
    # Encode each trace for the pool wire at most once, however many
    # predictors are pending over it (an order study has one trace under
    # its whole predictor axis).
    wire_bytes: dict[TraceConfig, bytes] = {}

    def build_simulate_payload(unit: tuple[str, str], inline: bool) -> dict:
        task, config = units[unit]
        if inline:
            return task.payload(traces[config].get(), inline=True, kernel=engine.kernel)
        if config not in wire_bytes:
            wire_bytes[config] = dumps_trace_binary(traces[config].get(), compress=True)
        return task.payload(
            None, inline=False, trace_bytes=wire_bytes[config], kernel=engine.kernel
        )

    def accept_shard(unit: tuple[str, str], payload: dict) -> bool:
        shards[unit] = shard_from_dict(payload["shard"])
        return True

    run_phase(
        engine,
        PhaseSpec(
            name="simulate",
            kind="simulate",
            counter="simulations",
            tasks=[
                PhaseTask(
                    uid=unit,
                    label=_unit_label(units, unit),
                    cache_key=task.cache_key(),
                    build_payload=lambda inline, unit=unit: build_simulate_payload(
                        unit, inline
                    ),
                )
                for unit, (task, _) in units.items()
                if unit not in windowed
            ],
            worker=execute_simulate_task,
            accept_cached=accept_shard,
            accept_fresh=accept_shard,
        ),
    )

    if windowed:
        shards.update(run_windowed_simulations(engine, list(windowed.values())))

    # ------------------------------------------------------------------ #
    # Assembly — one result per sweep point, shared units fanned back out
    # ------------------------------------------------------------------ #
    results = []
    for point in points:
        config = point.trace_config
        shard = shards[(digests[config], point.predictor)]
        point_statistics = statistics[config]
        results.append(
            SweepPointResult(
                point=point,
                record_count=point_statistics.predicted_instructions,
                statistics=point_statistics,
                result=shard.result,
            )
        )
    stats.total_seconds = time.perf_counter() - started
    engine.progress.campaign_finished(stats)
    return SweepResult(spec=spec, points=tuple(results), stats=stats)


def _trace_payload_usable(payload: dict) -> bool:
    """Cheap validity probe for a cached trace payload.

    Confirms the digest and statistics are reachable without decoding the
    embedded trace (the whole point of the warm path).  Entries predating
    stamped digests fall back to a full text render, which also surfaces
    trace corruption; for stamped entries a corrupt trace body is caught
    later by :class:`_LazyTrace`'s re-trace fallback.
    """
    try:
        payload_trace_digest(payload)
        statistics_from_dict(payload["statistics"])
    except Exception:
        return False
    return True


def _trace_label(config: TraceConfig) -> str:
    benchmark, input_name, flags = config
    return f"{benchmark}:{input_name}:{flags}"


def _unit_label(units: dict, unit: tuple[str, str]) -> str:
    _, config = units[unit]
    return f"{_trace_label(config)}:{unit[1]}"


# --------------------------------------------------------------------------- #
# Library façade (mirrors repro.simulation.campaign.run_campaign)
# --------------------------------------------------------------------------- #
_SWEEP_MEMO: dict[tuple, SweepResult] = {}


def run_sweep(
    spec: SweepSpec,
    use_cache: bool = True,
    jobs: int | None = None,
    cache_dir=None,
    progress=None,
    cache_format: str | None = None,
    backend=None,
    workers=None,
    kernel: str | None = None,
    shard_window: int | str | None = None,
) -> SweepResult:
    """Run one sweep on an engine built from the process-wide defaults.

    ``use_cache`` governs both the in-process memo and the on-disk cache;
    unset parameters fall back to the engine defaults configured through
    :func:`repro.simulation.campaign.set_campaign_defaults` (which the CLI
    wires to ``--jobs``/``--cache-dir``/``--cache-format``/``--backend``/
    ``--workers``/``--no-cache``).  The memo keys on the spec *and* the predictors'
    configuration fingerprints, so re-binding a predictor name cannot
    serve stale results — the same policy the campaign memo follows.
    """
    from repro.simulation import campaign

    use_cache = use_cache and campaign.engine_defaults().use_cache
    key = (spec, predictors_fingerprint(spec.predictors))
    if use_cache and key in _SWEEP_MEMO:
        return _SWEEP_MEMO[key]
    engine = campaign.build_engine(
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        progress=progress,
        cache_format=cache_format,
        backend=backend,
        workers=workers,
        kernel=kernel,
        shard_window=shard_window,
    )
    try:
        result = engine.run_sweep(spec)
    finally:
        engine.close()
    campaign.record_engine_stats(engine.stats)
    if use_cache:
        _SWEEP_MEMO[key] = result
    return result


def clear_sweep_cache() -> None:
    """Drop all in-process memoised sweep results (used by tests)."""
    _SWEEP_MEMO.clear()
