"""Work-unit definitions for the campaign and sweep task graphs.

A campaign decomposes into :class:`TraceTask` units (one per benchmark) and
:class:`SimulateTask` units (one per (benchmark, predictor) pair); the
merge of simulate shards back into joint results is cheap and always runs
in the parent.  A parameter sweep (:mod:`repro.engine.sweeps`) reuses the
same two task kinds, with trace tasks spanning the sweep's *benchmark*,
*input* and *flags* axes.  Each task knows its cache key — the full set of
inputs its output depends on — and how to render itself into a picklable
payload for the worker protocol (:mod:`repro.engine.worker`); the shared
phase executor (:mod:`repro.engine.phases`) schedules both kinds over the
engine's executor backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.stream import ValueTrace

#: Bump when the meaning of a task's output changes incompatibly, so stale
#: cache entries from older code are bypassed instead of misread.
#: Version 2: trace keys carry the resolved input/flags setting, so the
#: campaign's default-configuration traces and a sweep's explicit traces
#: address the same entries.
#: Version 3: worker outcomes may carry the reserved ``__telemetry__``
#: sidecar (worker-side execute time; see :mod:`repro.engine.telemetry`).
#: The phase executor strips it before caching, but an *older* engine
#: driving a newer worker would cache sidecar-bearing entries — so the
#: remote handshake must refuse the skew, which this bump enforces.
#: Version 4: intra-trace sharding adds the ``replay`` and ``simulate-window``
#: worker functions (:mod:`repro.engine.sharding`) plus the
#: ``simulate-window`` cache kind; remote workers must know both names, so
#: the handshake pin rides on this bump.
TASK_FORMAT_VERSION = 4


def _canonical_scale(scale: float) -> str:
    """Render a scale factor stably for use inside cache keys."""
    return repr(round(float(scale), 9))


@dataclass(frozen=True)
class TraceTask:
    """Trace one benchmark at one scale, input set and flags setting.

    ``input_name``/``flags`` are stored *resolved* (never ``None``), so two
    tasks describing the same work — e.g. a campaign's implicit default and
    a sweep naming the default explicitly — produce identical cache keys.
    Build instances through :meth:`for_workload`, which resolves defaults
    against the workload's declared sets.
    """

    benchmark: str
    scale: float
    input_name: str
    flags: str

    @classmethod
    def for_workload(
        cls,
        benchmark: str,
        scale: float,
        input_name: str | None = None,
        flags: str | None = None,
    ) -> "TraceTask":
        """Build a task with input/flags resolved (and validated) by the workload."""
        from repro.workloads.suite import get_workload

        workload = get_workload(benchmark)
        return cls(
            benchmark=benchmark,
            scale=scale,
            input_name=workload.validate_input(input_name),
            flags=workload.validate_flags(flags),
        )

    def cache_key(self) -> dict:
        return {
            "kind": "trace",
            "format": TASK_FORMAT_VERSION,
            "workload": self.benchmark,
            "scale": _canonical_scale(self.scale),
            "input": self.input_name,
            "flags": self.flags,
        }

    def payload(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "scale": self.scale,
            "input": self.input_name,
            "flags": self.flags,
        }


@dataclass(frozen=True)
class SimulateTask:
    """Simulate one predictor (by configuration) over one trace."""

    benchmark: str
    predictor: str
    trace_digest: str
    predictor_signature: str

    def cache_key(self) -> dict:
        return {
            "kind": "simulate",
            "format": TASK_FORMAT_VERSION,
            "trace": self.trace_digest,
            "predictor": self.predictor,
            "signature": self.predictor_signature,
        }

    def payload(
        self,
        trace: ValueTrace | None,
        inline: bool,
        trace_bytes: bytes | None = None,
        kernel: str | None = None,
    ) -> dict:
        """Build the worker payload.

        ``inline`` payloads carry the trace object itself (no serialisation
        cost; used when executing in-process), otherwise the trace travels
        as v3 binary bytes — the same compact framing the cache stores —
        so the payload stays picklable and roughly an order of magnitude
        smaller on the pool wire than the canonical text form.  Schedulers
        dispatching several tasks over one trace pass the pre-encoded
        ``trace_bytes`` so the encode+compress pass runs once per trace,
        not once per task.  The expected predictor signature rides along so
        a worker whose registry disagrees (e.g. a ``spawn``-start process
        that re-imported a registry without a dynamic re-binding) fails
        loudly instead of simulating the wrong configuration.

        ``kernel`` is the engine's (unresolved) simulation-kernel setting;
        it travels in the payload — never in the cache key, because both
        kernels produce byte-identical results — and each worker resolves
        it against its own environment, so an ``"auto"`` fleet mixing
        numpy-less hosts still computes identical shards everywhere.
        """
        from repro.trace.io import dumps_trace_binary

        payload: dict = {
            "predictor": self.predictor,
            "signature": self.predictor_signature,
        }
        if kernel is not None:
            payload["kernel"] = kernel
        if inline:
            payload["trace"] = trace
        elif trace_bytes is not None:
            payload["trace_bytes"] = trace_bytes
        else:
            # Compressed framing: unlike the cache envelope (whose outer
            # zlib pass covers the whole body) nothing else compresses the
            # pool wire, so the task opts in here.
            payload["trace_bytes"] = dumps_trace_binary(trace, compress=True)
        return payload


@dataclass(frozen=True)
class SimulateWindowTask:
    """Simulate one predictor over one ``[start, stop)`` window of a trace.

    The unit of intra-trace sharding (:mod:`repro.engine.sharding`).  The
    key deliberately carries **no** predictor-state digest: the state at
    ``start`` is a pure function of the trace content, the predictor
    configuration and ``start`` itself — all of which the key already
    pins — so runs planned with different window sizes still share entries
    for boundaries they happen to have in common.  Window entries live
    under their own ``simulate-window`` cache kind, keeping the pair-level
    ``simulate`` kind byte-identical between sharded and unsharded runs.
    """

    benchmark: str
    predictor: str
    trace_digest: str
    predictor_signature: str
    start: int
    stop: int

    def cache_key(self) -> dict:
        return {
            "kind": "simulate-window",
            "format": TASK_FORMAT_VERSION,
            "trace": self.trace_digest,
            "predictor": self.predictor,
            "signature": self.predictor_signature,
            "window": [self.start, self.stop],
        }
