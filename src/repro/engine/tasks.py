"""Work-unit definitions for the campaign task graph.

A campaign decomposes into :class:`TraceTask` units (one per benchmark) and
:class:`SimulateTask` units (one per (benchmark, predictor) pair); the
merge of simulate shards back into joint results is cheap and always runs
in the parent.  Each task knows its cache key — the full set of inputs its
output depends on — and how to render itself into a picklable payload for
the worker protocol (:mod:`repro.engine.worker`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.stream import ValueTrace

#: Bump when the meaning of a task's output changes incompatibly, so stale
#: cache entries from older code are bypassed instead of misread.
TASK_FORMAT_VERSION = 1


def _canonical_scale(scale: float) -> str:
    """Render a scale factor stably for use inside cache keys."""
    return repr(round(float(scale), 9))


@dataclass(frozen=True)
class TraceTask:
    """Trace one benchmark at one scale (default input and flags)."""

    benchmark: str
    scale: float

    def cache_key(self) -> dict:
        return {
            "kind": "trace",
            "format": TASK_FORMAT_VERSION,
            "workload": self.benchmark,
            "scale": _canonical_scale(self.scale),
        }

    def payload(self) -> dict:
        return {"benchmark": self.benchmark, "scale": self.scale}


@dataclass(frozen=True)
class SimulateTask:
    """Simulate one predictor (by configuration) over one trace."""

    benchmark: str
    predictor: str
    trace_digest: str
    predictor_signature: str

    def cache_key(self) -> dict:
        return {
            "kind": "simulate",
            "format": TASK_FORMAT_VERSION,
            "trace": self.trace_digest,
            "predictor": self.predictor,
            "signature": self.predictor_signature,
        }

    def payload(self, trace: ValueTrace, inline: bool) -> dict:
        """Build the worker payload.

        ``inline`` payloads carry the trace object itself (no serialisation
        cost; used when executing in-process), otherwise the trace travels
        as its canonical text form so the payload stays picklable and
        wire-friendly.  The expected predictor signature rides along so a
        worker whose registry disagrees (e.g. a ``spawn``-start process
        that re-imported a registry without a dynamic re-binding) fails
        loudly instead of simulating the wrong configuration.
        """
        from repro.trace.io import dumps_trace

        payload: dict = {
            "predictor": self.predictor,
            "signature": self.predictor_signature,
        }
        if inline:
            payload["trace"] = trace
        else:
            payload["trace_text"] = dumps_trace(trace)
        return payload
