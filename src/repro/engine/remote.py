"""Distributed execution: the remote worker protocol and its backend.

This module is the repo's first cross-process-boundary protocol.  One or
more *worker* processes (``repro-vp worker serve --listen HOST:PORT``)
each run a :class:`WorkerServer` that executes the engine's registered
worker functions (:data:`repro.engine.worker.WORKER_FUNCTIONS`); on the
engine side, :class:`RemoteBackend` is a fourth
:class:`~repro.engine.backends.ExecutorBackend` that dispatches each
phase's pending work units over TCP to those workers
(``--backend remote --workers host:port[,host:port...]``).

Because the local backends already move plain-JSON payloads with traces
as compressed v3 bytes in both directions, the remote wire format adds
only *framing* on top of the existing task payloads — no task, phase or
cache format changes — and results stay bit-identical to ``serial``
(pinned by ``tests/engine/test_remote_backend.py``).

Wire protocol (normative; also documented in ``docs/architecture.md``):

* **Framing** — every message is one frame: a 4-byte big-endian length
  prefix followed by that many bytes of UTF-8 JSON encoding one object.
  ``bytes`` values (trace payloads) travel as ``{"__b64__": "..."}``
  wrappers anywhere inside the object.  Frames above
  :data:`MAX_FRAME_BYTES` are rejected, so a garbage length prefix fails
  fast instead of attempting a gigabyte read.
* **Handshake** — the engine opens each connection with a ``hello``
  frame carrying :data:`PROTOCOL_VERSION`,
  :data:`~repro.engine.tasks.TASK_FORMAT_VERSION` and
  :data:`~repro.engine.codecs.CACHE_ENTRY_VERSION`.  The worker answers
  ``welcome`` when all three match its own, else ``reject`` with a
  reason; a rejected engine raises immediately.  Pinning the task and
  cache-entry schema versions means a node running older code is refused
  up front — it can never compute entries the engine would cache under a
  newer schema (or vice versa) and poison the shared result cache.
* **Tasks** — ``{"type": "task", "id": N, "function": name, "payload":
  {...}}`` frames name an entry of ``WORKER_FUNCTIONS`` (functions cross
  the wire by registry name, never by pickle); the worker replies, in
  request order per connection, with ``{"type": "result", "id": N,
  "outcome": {...}, "seconds": t}`` — ``seconds`` being the worker-side
  execute time on its own monotonic clock, consumed by utilization
  telemetry only — or, when the task itself raised, ``{"type": "error",
  "id": N, "error": msg, "traceback": text}``.

Failure semantics: a lost worker (connection error, truncated or
undecodable frame, out-of-sequence reply) has its in-flight units pushed
back onto the shared queue and re-dispatched to surviving workers; the
dispatch fails with :class:`~repro.errors.RemoteWorkerError` only when no
worker remains.  A task *error* is never retried — the task graph is
deterministic, so the unit would fail identically anywhere — and
surfaces as :class:`~repro.errors.RemoteTaskError` with the remote
traceback attached.  Handshake rejection always raises
(:class:`~repro.errors.RemoteProtocolError`): a version-mismatched fleet
is a configuration error, not a transient loss.
"""

from __future__ import annotations

import base64
import json
import os
import socket
import struct
import sys
import threading
import time
import traceback
from collections import deque
from typing import Callable, Sequence

from repro.engine.backends import ExecutorBackend
from repro.engine.codecs import CACHE_ENTRY_VERSION
from repro.engine.tasks import TASK_FORMAT_VERSION
from repro.engine.worker import WORKER_FUNCTIONS, worker_function_name
from repro.errors import RemoteProtocolError, RemoteTaskError, RemoteWorkerError

#: Bump when the frame layout or message schema changes incompatibly;
#: the handshake refuses mismatched peers.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame's body.  Far above any real payload (a
#: compressed v3 trace is a few hundred kilobytes at paper scale) while
#: small enough that a garbage length prefix is detected immediately.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH_STRUCT = struct.Struct(">I")

#: JSON wrapper key marking a base64-encoded ``bytes`` value on the wire.
_BYTES_KEY = "__b64__"


# --------------------------------------------------------------------------- #
# Wire values: JSON objects with bytes support
# --------------------------------------------------------------------------- #
def encode_wire_value(value):
    """Render a payload/outcome value JSON-compatible (bytes -> base64)."""
    if isinstance(value, bytes):
        return {_BYTES_KEY: base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        return {key: encode_wire_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_wire_value(item) for item in value]
    return value


def decode_wire_value(value):
    """Invert :func:`encode_wire_value` (base64 wrappers -> bytes)."""
    if isinstance(value, dict):
        if set(value) == {_BYTES_KEY}:
            return base64.b64decode(value[_BYTES_KEY])
        return {key: decode_wire_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_wire_value(item) for item in value]
    return value


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def send_frame(sock: socket.socket, message: dict) -> int:
    """Send one length-prefixed JSON frame; returns the bytes put on the wire."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    data = _LENGTH_STRUCT.pack(len(body)) + body
    sock.sendall(data)
    return len(data)


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on EOF at a frame boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise RemoteProtocolError(
                f"connection closed mid-frame ({count - remaining} of {count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, meter: Callable[[int], None] | None = None
) -> dict | None:
    """Receive one frame; ``None`` on clean EOF.

    ``meter``, when given, is called with the frame's total wire size
    (header + body) once the body has been read — the hook both sides'
    byte accounting hangs off.  Raises :class:`RemoteProtocolError` for
    every malformed shape — truncated header or body, oversized length
    prefix, undecodable JSON, or a body that is not an object — so
    callers treat any of them as a peer that cannot be trusted further.
    """
    header = _recv_exactly(sock, _LENGTH_STRUCT.size)
    if header is None:
        return None
    (length,) = _LENGTH_STRUCT.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RemoteProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit "
            "(garbage length prefix?)"
        )
    body = _recv_exactly(sock, length)
    if body is None:
        raise RemoteProtocolError("connection closed between frame header and body")
    if meter is not None:
        meter(_LENGTH_STRUCT.size + length)
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise RemoteProtocolError(f"frame body is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise RemoteProtocolError(f"frame body is not an object: {type(message).__name__}")
    return message


def parse_worker_address(address: str, allow_ephemeral: bool = False) -> tuple[str, int]:
    """Parse a ``host:port`` worker address.

    ``allow_ephemeral`` admits port 0 — meaningful only for a *listen*
    address (``worker serve --listen``), where it asks the OS for a free
    port; a dial address of 0 is always an error.
    """
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise ValueError(f"invalid worker address {address!r} (expected host:port)")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid worker address {address!r}: bad port {port_text!r}") from None
    if not (0 if allow_ephemeral else 1) <= port < 65536:
        raise ValueError(f"invalid worker address {address!r}: port out of range")
    return host, port


def _versions() -> dict:
    return {
        "protocol": PROTOCOL_VERSION,
        "task_format": TASK_FORMAT_VERSION,
        "cache_entry": CACHE_ENTRY_VERSION,
    }


def _version_mismatches(hello: dict) -> list[str]:
    """Human-readable list of version fields on which ``hello`` disagrees."""
    mismatches = []
    for field, local in _versions().items():
        offered = hello.get(field)
        if offered != local:
            mismatches.append(f"{field} {offered!r} != {local!r}")
    return mismatches


# --------------------------------------------------------------------------- #
# Worker side: the serving process
# --------------------------------------------------------------------------- #
class WorkerServer:
    """A warm worker process serving engine connections on one TCP port.

    Reuses :mod:`repro.engine.worker`'s task execution: each accepted
    connection is handshake-checked, then serves ``task`` frames
    sequentially in request order (an engine pipelines up to its
    per-worker in-flight limit, so the socket buffer hides the request
    latency).  Multiple engine connections are served concurrently, each
    on its own thread.  A misbehaving client — garbage frames, version
    mismatch, abrupt disconnect — only loses its own connection; the
    server keeps accepting.

    ``start()`` binds and serves in background threads (in-process use
    and tests; ``port=0`` picks a free port, see :attr:`port`), while
    :meth:`serve_forever` blocks until :meth:`stop` — the CLI's
    ``repro-vp worker serve`` path.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self.tasks_served = 0
        self.connections_served = 0
        self.handshakes_rejected = 0
        self.bytes_received = 0
        self.bytes_sent = 0
        #: Cumulative worker-side execute time (perf-counter measured);
        #: the same per-task numbers travel back in the result frames.
        self.execute_seconds = 0.0
        self._started_perf = time.perf_counter()
        self._stats_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connection_threads: list[threading.Thread] = []
        self._connections: set[socket.socket] = set()
        self._lock = threading.Lock()
        self._stopped = threading.Event()

    @property
    def address(self) -> str:
        """The ``host:port`` string engines pass to ``--workers``."""
        return f"{self.host}:{self.port}"

    def start(self) -> "WorkerServer":
        """Bind the listening socket and serve in background threads."""
        if self._listener is not None:
            return self
        listener = socket.create_server((self.host, self.port))
        # A close() from stop() does not reliably wake a thread blocked in
        # accept(); a short timeout lets the loop poll the stop flag.
        listener.settimeout(0.2)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-worker-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(
        self, stats_interval: float | None = None, stats_stream=None
    ) -> None:
        """Serve until :meth:`stop` is called (from a signal handler or peer).

        ``stats_interval`` (seconds, the CLI's ``worker serve
        --stats-interval``) periodically prints :meth:`stats_line` to
        ``stats_stream`` (stderr by default), so a long-running fleet
        worker is no longer silent.
        """
        self.start()
        stream = stats_stream if stats_stream is not None else sys.stderr
        next_stats = (
            time.perf_counter() + stats_interval
            if stats_interval is not None and stats_interval > 0
            else None
        )
        # Polling wait keeps the main thread responsive to KeyboardInterrupt.
        while not self._stopped.wait(0.2):
            if next_stats is not None and time.perf_counter() >= next_stats:
                print(self.stats_line(), file=stream, flush=True)
                next_stats = time.perf_counter() + stats_interval

    def stats_line(self) -> str:
        """One human-readable line of cumulative serving statistics."""
        uptime = time.perf_counter() - self._started_perf
        return (
            f"worker {self.address}: up {uptime:.0f}s, "
            f"{self.tasks_served} task(s) served ({self.execute_seconds:.2f}s execute), "
            f"{self.connections_served} connection(s), "
            f"{self.bytes_received} B in, {self.bytes_sent} B out"
        )

    def stop(self) -> None:
        """Stop accepting, close every connection, join the threads; idempotent."""
        self._stopped.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._lock:
            open_connections = list(self._connections)
            threads = list(self._connection_threads)
        for sock in open_connections:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        for thread in threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Serving internals
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopped.is_set():
            try:
                sock, _ = listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed by stop()
            sock.settimeout(None)
            thread = threading.Thread(
                target=self._serve_connection, args=(sock,), daemon=True
            )
            with self._lock:
                self._connections.add(sock)
                # Prune finished threads so a long-serving worker does not
                # accumulate one dead Thread per connection ever served.
                self._connection_threads = [
                    existing for existing in self._connection_threads if existing.is_alive()
                ]
                self._connection_threads.append(thread)
            thread.start()

    def _count_received(self, count: int) -> None:
        with self._stats_lock:
            self.bytes_received += count

    def _send(self, sock: socket.socket, message: dict) -> None:
        sent = send_frame(sock, message)
        with self._stats_lock:
            self.bytes_sent += sent

    def _serve_connection(self, sock: socket.socket) -> None:
        try:
            if not self._handshake(sock):
                return
            with self._stats_lock:
                self.connections_served += 1
            while not self._stopped.is_set():
                frame = recv_frame(sock, meter=self._count_received)
                if frame is None or frame.get("type") == "shutdown":
                    return
                if frame.get("type") != "task":
                    raise RemoteProtocolError(
                        f"unexpected frame type {frame.get('type')!r} (expected 'task')"
                    )
                self._execute(sock, frame)
        except (RemoteProtocolError, OSError, ConnectionError):
            # A broken or malicious client loses its connection; the
            # server keeps serving everyone else.
            pass
        finally:
            with self._lock:
                self._connections.discard(sock)
            try:
                sock.close()
            except OSError:
                pass

    def _handshake(self, sock: socket.socket) -> bool:
        frame = recv_frame(sock, meter=self._count_received)
        if frame is None:
            return False
        if frame.get("type") != "hello":
            raise RemoteProtocolError(
                f"expected hello frame, got {frame.get('type')!r}"
            )
        mismatches = _version_mismatches(frame)
        if mismatches:
            with self._stats_lock:
                self.handshakes_rejected += 1
            self._send(
                sock,
                {
                    "type": "reject",
                    "reason": "version mismatch: " + ", ".join(mismatches),
                    **_versions(),
                },
            )
            return False
        self._send(sock, {"type": "welcome", "pid": os.getpid(), **_versions()})
        return True

    def _execute(self, sock: socket.socket, frame: dict) -> None:
        frame_id = frame.get("id")
        name = frame.get("function")
        function = WORKER_FUNCTIONS.get(name)
        if function is None:
            self._send(
                sock,
                {
                    "type": "error",
                    "id": frame_id,
                    "error": f"unknown worker function {name!r}",
                    "traceback": None,
                },
            )
            return
        started = time.perf_counter()
        try:
            outcome = function(decode_wire_value(frame.get("payload") or {}))
        except Exception as error:  # noqa: BLE001 - forwarded to the engine
            self._send(
                sock,
                {
                    "type": "error",
                    "id": frame_id,
                    "error": f"{type(error).__name__}: {error}",
                    "traceback": traceback.format_exc(),
                },
            )
            return
        # The worker's own execute time rides on the result frame so the
        # engine can split queue-wait from execute per worker without any
        # cross-host clock agreement (durations only, never timestamps).
        seconds = time.perf_counter() - started
        with self._stats_lock:
            self.tasks_served += 1
            self.execute_seconds += seconds
        self._send(
            sock,
            {
                "type": "result",
                "id": frame_id,
                "outcome": encode_wire_value(outcome),
                "seconds": seconds,
            },
        )


# --------------------------------------------------------------------------- #
# Engine side: one connection per worker
# --------------------------------------------------------------------------- #
class _WorkerLink:
    """One handshaken connection from the engine to a worker process.

    The wire counters (frames/bytes per direction) are cumulative over
    the link's lifetime; each link is driven by exactly one thread per
    dispatch, so they need no locking.
    """

    def __init__(self, label: str, host: str, port: int) -> None:
        self.label = label
        self.host = host
        self.port = port
        self.worker_pid: int | None = None
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self._sock: socket.socket | None = None
        self._next_id = 0

    def _count_received(self, count: int) -> None:
        self.bytes_received += count

    def connect(self, timeout: float) -> None:
        sock = socket.create_connection((self.host, self.port), timeout=timeout)
        try:
            sock.settimeout(timeout)
            self.bytes_sent += send_frame(
                sock, {"type": "hello", "pid": os.getpid(), **_versions()}
            )
            self.frames_sent += 1
            reply = recv_frame(sock, meter=self._count_received)
            if reply is None:
                raise RemoteProtocolError(
                    f"worker {self.label} closed the connection during the handshake"
                )
            if reply.get("type") == "reject":
                raise RemoteProtocolError(
                    f"worker {self.label} rejected the handshake: "
                    f"{reply.get('reason', 'no reason given')}"
                )
            if reply.get("type") != "welcome":
                raise RemoteProtocolError(
                    f"worker {self.label} sent {reply.get('type')!r} instead of welcome"
                )
            self.worker_pid = reply.get("pid")
            self.frames_received += 1
            # Task execution time is unbounded (it scales with the trace),
            # so only the handshake runs under a timeout.
            sock.settimeout(None)
        except BaseException:
            sock.close()
            raise
        self._sock = sock

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def send_task(self, frame_id: int, function_name: str, wire_payload: dict) -> None:
        self.bytes_sent += send_frame(
            self._sock,
            {
                "type": "task",
                "id": frame_id,
                "function": function_name,
                "payload": wire_payload,
            },
        )
        self.frames_sent += 1

    def recv(self) -> dict:
        frame = recv_frame(self._sock, meter=self._count_received)
        if frame is None:
            raise RemoteProtocolError(f"worker {self.label} closed the connection")
        self.frames_received += 1
        return frame

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


class _MapState:
    """Shared bookkeeping of one dispatch across the per-worker threads."""

    def __init__(self, total: int) -> None:
        self.total = total
        self.cond = threading.Condition()
        self.pending: deque[int] = deque(range(total))
        self.results: list[dict | None] = [None] * total
        self.done = [False] * total
        self.completed = 0
        self.next_report = 0
        self.task_error: RemoteTaskError | None = None
        #: Engine-side failure (a raising progress callback, an unexpected
        #: bug in a driver thread); re-raised by ``map`` so a defect can
        #: never degrade into an eternal idle-wait.
        self.internal_error: Exception | None = None
        #: Driver threads still running; set by ``map`` before start and
        #: decremented as each exits, so an idle thread can tell "work is
        #: in flight elsewhere" from "no one holds the missing units".
        self.active = 0
        #: Per-worker utilization bookkeeping, label -> dict; each driver
        #: thread deposits its own numbers on exit and ``map`` turns them
        #: into ``remote.worker`` telemetry events.
        self.worker_stats: dict[str, dict] = {}

    def fatal(self) -> bool:
        """Whether the dispatch is already doomed (stop taking work)."""
        return self.task_error is not None or self.internal_error is not None


class RemoteBackend(ExecutorBackend):
    """Dispatches phase batches to ``repro-vp worker serve`` processes.

    Work units go into one shared queue; each connected worker is driven
    by its own thread, which keeps up to ``in_flight`` units pipelined on
    the connection and feeds outcomes back in completion order (progress
    callbacks still fire in input order, like every other backend).  A
    worker lost mid-dispatch has its in-flight units pushed back onto the
    queue for the survivors; the dispatch fails only when no worker
    remains.  Connections are established lazily on the first dispatch
    that actually has pending work — a fully warm run never touches the
    network — and stay warm across phases and runs until :meth:`close`.

    ``in_flight`` is wired to the CLI's ``--jobs`` flag: it bounds how
    many units one worker holds at a time, trading scheduling slack
    (larger values hide request latency) against re-dispatch cost when a
    worker is lost.
    """

    name = "remote"

    def __init__(
        self,
        workers: Sequence[str],
        in_flight: int = 2,
        connect_timeout: float = 10.0,
    ) -> None:
        # Deduplicated in order: a repeated address must not put two
        # driver threads on one socket (interleaved replies would read as
        # a protocol violation and lose a healthy worker).
        addresses = list(dict.fromkeys(address for address in workers if address))
        if not addresses:
            raise ValueError("remote backend needs at least one worker address")
        self.addresses = [(address, parse_worker_address(address)) for address in addresses]
        self.in_flight = max(1, int(in_flight))
        self.connect_timeout = connect_timeout
        self._links: dict[str, _WorkerLink] = {}
        #: Workers excluded for the backend's lifetime, label -> reason.
        self.lost_workers: dict[str, str] = {}

    def inline_payloads(self, task_count: int) -> bool:
        return False

    def parallel_slots(self) -> int:
        # Each connected worker pipelines up to ``in_flight`` units; lost
        # workers still count — slots size windows, they never gate
        # correctness, and the fleet may heal between plans.
        return max(1, len(self.addresses) * self.in_flight)

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #
    def _ensure_links(self) -> list[_WorkerLink]:
        links = []
        for label, (host, port) in self.addresses:
            if label in self.lost_workers:
                continue
            link = self._links.get(label)
            if link is None:
                link = _WorkerLink(label, host, port)
                try:
                    link.connect(self.connect_timeout)
                except RemoteProtocolError:
                    # Handshake rejection (version mismatch) is a fleet
                    # configuration error, never a transient loss.
                    raise
                except OSError as error:
                    self.lost_workers[label] = f"connect failed: {error}"
                    continue
                self._links[label] = link
            links.append(link)
        if not links:
            raise RemoteWorkerError(
                "no remote workers reachable: " + self._lost_summary()
            )
        return links

    def _lost_summary(self) -> str:
        if not self.lost_workers:
            return "none configured"
        return "; ".join(
            f"{label} ({reason})" for label, reason in self.lost_workers.items()
        )

    def close(self) -> None:
        for link in self._links.values():
            link.close()
        self._links.clear()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def map(
        self,
        function: Callable[[dict], dict],
        payloads: Sequence[dict],
        on_result: Callable[[int], None] | None = None,
    ) -> list[dict]:
        if not payloads:
            return []
        function_name = worker_function_name(function)
        wire_payloads = [encode_wire_value(payload) for payload in payloads]
        links = self._ensure_links()
        state = _MapState(len(payloads))
        state.active = len(links)
        threads = [
            threading.Thread(
                target=self._drive_worker,
                args=(link, state, function_name, wire_payloads, on_result),
                name=f"repro-remote-{link.label}",
                daemon=True,
            )
            for link in links
        ]
        with self.telemetry.span(
            "dispatch",
            backend=self.name,
            units=len(payloads),
            workers=len(links),
            in_flight=self.in_flight,
        ):
            dispatch_started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            self._emit_worker_events(state, time.perf_counter() - dispatch_started)
        if state.task_error is not None:
            raise state.task_error
        if state.internal_error is not None:
            raise state.internal_error
        if state.completed != state.total:
            remaining = state.total - state.completed
            raise RemoteWorkerError(
                f"{remaining} work unit(s) left unexecuted after every remote "
                f"worker was lost: {self._lost_summary()}"
            )
        return state.results

    def _emit_worker_events(self, state: _MapState, dispatch_seconds: float) -> None:
        """One ``remote.worker`` event per driver thread of a dispatch.

        ``busy_seconds`` sums the execute times the worker shipped back in
        its result frames — durations measured on the worker's own clock,
        so utilization needs no cross-host clock agreement.
        """
        for label, stats in sorted(state.worker_stats.items()):
            busy = stats["busy_seconds"]
            self.telemetry.event(
                "remote.worker",
                worker=label,
                pid=stats["pid"],
                tasks=stats["tasks"],
                busy_seconds=busy,
                utilization=busy / dispatch_seconds if dispatch_seconds > 0 else 0.0,
                peak_in_flight=stats["peak_in_flight"],
                frames_sent=stats["frames_sent"],
                frames_received=stats["frames_received"],
                bytes_sent=stats["bytes_sent"],
                bytes_received=stats["bytes_received"],
            )
            self.telemetry.count("remote.bytes_sent", stats["bytes_sent"])
            self.telemetry.count("remote.bytes_received", stats["bytes_received"])
            self.telemetry.count("remote.frames_sent", stats["frames_sent"])
            self.telemetry.count("remote.frames_received", stats["frames_received"])

    def _drive_worker(
        self,
        link: _WorkerLink,
        state: _MapState,
        function_name: str,
        wire_payloads: list[dict],
        on_result: Callable[[int], None] | None,
    ) -> None:
        inflight: deque[tuple[int, int]] = deque()  # (frame id, payload index)
        wire_base = {
            "frames_sent": link.frames_sent,
            "frames_received": link.frames_received,
            "bytes_sent": link.bytes_sent,
            "bytes_received": link.bytes_received,
        }
        tasks_done = 0
        busy_seconds = 0.0
        peak_in_flight = 0
        try:
            while True:
                to_send: list[tuple[int, int]] = []
                with state.cond:
                    while (
                        not state.fatal()
                        and state.pending
                        and len(inflight) < self.in_flight
                    ):
                        index = state.pending.popleft()
                        entry = (link.next_id(), index)
                        inflight.append(entry)
                        to_send.append(entry)
                    peak_in_flight = max(peak_in_flight, len(inflight))
                    if not inflight:
                        if state.fatal() or state.completed == state.total:
                            return
                        if state.active <= 1:
                            # No other driver holds the missing units: a
                            # defect dropped them.  Exit so map() reports
                            # the shortfall instead of waiting forever.
                            return
                        # Everything left is in flight on other workers;
                        # stay available in case one of them is lost and
                        # its units land back on the queue.
                        state.cond.wait(timeout=0.05)
                        continue
                for frame_id, index in to_send:
                    link.send_task(frame_id, function_name, wire_payloads[index])
                frame = link.recv()
                expected_id, index = inflight[0]
                kind = frame.get("type")
                if kind not in ("result", "error") or frame.get("id") != expected_id:
                    raise RemoteProtocolError(
                        f"worker {link.label} answered frame {expected_id} with "
                        f"{kind!r} id {frame.get('id')!r}"
                    )
                if kind == "error":
                    inflight.popleft()
                    self._record_task_error(link, state, frame)
                    continue  # drain our remaining in-flight replies, then exit
                try:
                    outcome = decode_wire_value(frame.get("outcome"))
                except Exception as error:
                    # Valid JSON framing around an undecodable body (bad
                    # base64, ...) is still the worker's fault.  The unit
                    # stays in ``inflight`` so the loss path requeues it.
                    raise RemoteProtocolError(
                        f"worker {link.label} sent an undecodable outcome "
                        f"for frame {expected_id}: {error}"
                    ) from error
                inflight.popleft()
                tasks_done += 1
                seconds = frame.get("seconds")
                if isinstance(seconds, (int, float)):
                    busy_seconds += seconds
                with state.cond:
                    state.results[index] = outcome
                    state.done[index] = True
                    state.completed += 1
                    while (
                        state.next_report < state.total
                        and state.done[state.next_report]
                    ):
                        reported = state.next_report
                        state.next_report += 1
                        if on_result is not None:
                            on_result(reported)
                    if state.completed == state.total:
                        state.cond.notify_all()
        except (OSError, ConnectionError, RemoteProtocolError) as error:
            # Worker lost: push its in-flight units back for the
            # survivors and exclude it for the backend's lifetime.
            link.close()
            with state.cond:
                self.lost_workers[link.label] = str(error)
                self._links.pop(link.label, None)
                state.pending.extendleft(
                    index for _, index in reversed(inflight)
                )
                state.cond.notify_all()
            self.telemetry.event(
                "remote.redispatch",
                worker=link.label,
                units=len(inflight),
                reason=str(error),
            )
            self.telemetry.count("remote.redispatched_units", len(inflight))
        except Exception as error:
            # Engine-side failure (e.g. a raising progress callback): a
            # driver thread must never die silently — that would leave
            # its peers idle-waiting on work that can no longer finish.
            link.close()
            with state.cond:
                self._links.pop(link.label, None)
                if state.internal_error is None:
                    state.internal_error = error
                state.pending.extendleft(
                    index for _, index in reversed(inflight)
                )
                state.cond.notify_all()
        finally:
            with state.cond:
                state.active -= 1
                state.worker_stats[link.label] = {
                    "pid": link.worker_pid,
                    "tasks": tasks_done,
                    "busy_seconds": busy_seconds,
                    "peak_in_flight": peak_in_flight,
                    "frames_sent": link.frames_sent - wire_base["frames_sent"],
                    "frames_received": link.frames_received - wire_base["frames_received"],
                    "bytes_sent": link.bytes_sent - wire_base["bytes_sent"],
                    "bytes_received": link.bytes_received - wire_base["bytes_received"],
                }
                state.cond.notify_all()

    def _record_task_error(
        self, link: _WorkerLink, state: _MapState, frame: dict
    ) -> None:
        with state.cond:
            if state.task_error is None:
                remote_traceback = frame.get("traceback")
                detail = f"\n--- remote traceback ---\n{remote_traceback}" if remote_traceback else ""
                state.task_error = RemoteTaskError(
                    f"task failed on worker {link.label}: "
                    f"{frame.get('error', 'unknown error')}{detail}",
                    remote_traceback=remote_traceback,
                )
            state.pending.clear()
            state.cond.notify_all()
