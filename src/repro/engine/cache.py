"""Content-addressed on-disk store for campaign work-unit results.

Layout: ``<root>/<kind>/<digest[:2]>/<digest>.json`` where ``digest`` is
the SHA-256 of the canonical JSON form of the work unit's cache key.  Each
file records both the key (for inspectability — ``grep`` a cache dir to see
what produced an entry) and the JSON payload.  Writes go through a
temporary file plus :func:`os.replace`, so concurrent producers of the same
entry race benignly: both write identical content and the last rename wins
atomically.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping

from repro.engine.fingerprint import key_digest


class ResultCache:
    """Persistent cache of task results, shared by every engine run."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, kind: str, key: Mapping) -> Path:
        digest = key_digest(key)
        return self.root / kind / digest[:2] / f"{digest}.json"

    def get(self, kind: str, key: Mapping) -> dict | None:
        """Return the stored payload for ``key``, or ``None`` on a miss.

        Unreadable or truncated entries (e.g. from a killed writer on a
        filesystem without atomic replace) count as misses, so a corrupt
        cache degrades to recomputation rather than failure.
        """
        path = self.path_for(kind, key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            payload = entry["payload"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, kind: str, key: Mapping, payload: dict) -> Path:
        """Store ``payload`` under ``key`` and return the entry's path."""
        path = self.path_for(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump({"key": dict(key), "payload": payload}, handle)
        os.replace(temporary, path)
        return path

    def entry_count(self) -> int:
        """Number of entries currently stored (all kinds)."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*/*.json"))
