"""Content-addressed on-disk store for campaign work-unit results.

Layout: ``<root>/<kind>/<digest[:2]>/<digest>.<ext>`` where ``digest`` is
the SHA-256 of the canonical JSON form of the work unit's cache key and
``<ext>`` is ``json`` (plain-text entry) or ``rvpc`` (binary envelope, see
:mod:`repro.engine.codecs`).  Each entry records both the key (for
inspectability — ``grep`` a cache dir to see what produced an entry; the
key stays uncompressed even in binary entries) and the payload.  Writes go
through a temporary file plus :func:`os.replace`, so concurrent producers
of the same entry race benignly: both write identical content and the last
rename wins atomically.

On top of storage, :class:`ResultCache` carries the cache-management layer:
extension-agnostic entry enumeration, per-kind size accounting
(:meth:`ResultCache.stats`), LRU/age-based garbage collection
(:meth:`ResultCache.gc` — hits bump an entry's mtime, so eviction order is
least-recently-*used*), integrity checking (:meth:`ResultCache.verify`)
and :meth:`ResultCache.clear`.  The ``repro-vp cache`` CLI subcommand is a
thin front end over these methods; ``docs/cache-layout.md`` documents the
on-disk contract.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

from repro.engine.codecs import (
    decode_cache_entry,
    encode_cache_entry,
    payload_trace,
    payload_trace_text,
)
from repro.engine.fingerprint import key_digest
from repro.engine.telemetry import NULL_TELEMETRY

#: Entry filename extensions, in the order ``get`` probes them.  Binary
#: first: when both forms of one digest exist, the compact one wins.
_BINARY_SUFFIX = ".rvpc"
_JSON_SUFFIX = ".json"
_ENTRY_SUFFIXES = (_BINARY_SUFFIX, _JSON_SUFFIX)


@dataclass
class KindStats:
    """Entry count and byte footprint of one cache kind."""

    entries: int = 0
    bytes: int = 0


@dataclass
class CacheStats:
    """Aggregate size accounting of a cache directory."""

    entries: int = 0
    bytes: int = 0
    kinds: dict[str, KindStats] = field(default_factory=dict)


@dataclass
class GCReport:
    """What one :meth:`ResultCache.gc` pass removed and what survives."""

    removed_entries: int = 0
    freed_bytes: int = 0
    remaining_entries: int = 0
    remaining_bytes: int = 0


@dataclass
class VerifyReport:
    """Outcome of an integrity sweep over every entry."""

    checked: int = 0
    corrupt: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.corrupt


class ResultCache:
    """Persistent cache of task results, shared by every engine run.

    Parameters
    ----------
    root:
        Cache directory (created lazily on the first write).
    max_bytes / max_age:
        Default garbage-collection bounds applied by :meth:`gc` when the
        call site passes none; ``None`` leaves the corresponding axis
        unbounded.  ``max_age`` is in seconds.
    """

    def __init__(
        self,
        root: str | Path,
        max_bytes: int | None = None,
        max_age: float | None = None,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.max_age = max_age
        self.hits = 0
        self.misses = 0
        #: Byte traffic served from / written to the store this process.
        self.hit_bytes = 0
        self.write_bytes = 0
        #: Telemetry sink for hit/miss/write/GC accounting; the engine
        #: stamps its own sink here, and the null default keeps standalone
        #: cache use (CLI ``cache`` subcommands, tests) free of overhead.
        self.telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------ #
    # Storage
    # ------------------------------------------------------------------ #
    def path_for(self, kind: str, key: Mapping, format: str = "json") -> Path:
        """Path of the entry for ``key`` in the given storage ``format``."""
        digest = key_digest(key)
        suffix = _BINARY_SUFFIX if format == "binary" else _JSON_SUFFIX
        return self.root / kind / digest[:2] / f"{digest}{suffix}"

    def get(self, kind: str, key: Mapping) -> dict | None:
        """Return the stored payload for ``key``, or ``None`` on a miss.

        Probes the binary entry first, then the JSON one, so caches written
        by older (text-only) versions stay readable.  Unreadable, truncated
        or otherwise corrupt entries (e.g. from a killed writer on a
        filesystem without atomic replace) count as misses, so a damaged
        cache degrades to recomputation rather than failure.  A hit bumps
        the entry's mtime, making :meth:`gc` eviction least-recently-used.
        """
        base = self.path_for(kind, key, format="json").with_suffix("")
        for suffix in _ENTRY_SUFFIXES:
            path = base.with_suffix(suffix)
            payload = self._read_entry(path)
            if payload is not None:
                self.hits += 1
                size = 0
                try:
                    size = path.stat().st_size
                except OSError:
                    pass
                self.hit_bytes += size
                self.telemetry.count("cache.hit")
                self.telemetry.count("cache.hit_bytes", size)
                try:
                    os.utime(path)
                except OSError:
                    pass
                return payload
        self.misses += 1
        self.telemetry.count("cache.miss")
        return None

    def put(self, kind: str, key: Mapping, payload: dict, format: str = "json") -> Path:
        """Store ``payload`` under ``key`` and return the entry's path.

        ``format="binary"`` writes the compressed envelope from
        :mod:`repro.engine.codecs`; ``"json"`` writes the v1 plain-text
        entry.  The sibling entry in the other format, if any, is removed
        so one result never occupies the store twice.
        """
        path = self.path_for(kind, key, format=format)
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        if format == "binary":
            with open(temporary, "wb") as handle:
                handle.write(encode_cache_entry(dict(key), payload))
        else:
            if "trace_binary" in payload:
                # A payload decoded from a binary entry carries raw v3
                # bytes; JSON entries store the canonical text instead.
                payload = dict(payload)
                payload["trace_text"] = payload_trace_text(payload)
                del payload["trace_binary"]
            with open(temporary, "w", encoding="utf-8") as handle:
                json.dump({"key": dict(key), "payload": payload}, handle)
        os.replace(temporary, path)
        size = 0
        try:
            size = path.stat().st_size
        except OSError:
            pass
        self.write_bytes += size
        self.telemetry.count("cache.write")
        self.telemetry.count("cache.write_bytes", size)
        for suffix in _ENTRY_SUFFIXES:
            if suffix != path.suffix:
                sibling = path.with_suffix(suffix)
                try:
                    sibling.unlink()
                except OSError:
                    pass
        return path

    def _read_entry(self, path: Path) -> dict | None:
        """Decode one entry file, or ``None`` if absent or corrupt."""
        try:
            if path.suffix == _BINARY_SUFFIX:
                with open(path, "rb") as handle:
                    _, payload = decode_cache_entry(handle.read())
                return payload
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            return entry["payload"]
        except Exception:
            return None

    # ------------------------------------------------------------------ #
    # Enumeration and accounting
    # ------------------------------------------------------------------ #
    def entry_paths(self) -> Iterator[Path]:
        """Every entry file in the store, regardless of storage format.

        Enumeration is extension-agnostic (``*.json`` *and* ``*.rvpc``);
        in-flight ``*.tmp`` files from concurrent writers are skipped.
        """
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*/*")):
            if path.is_file() and not path.name.endswith(".tmp"):
                yield path

    def entry_count(self) -> int:
        """Number of entries currently stored (all kinds, all formats)."""
        return sum(1 for _ in self.entry_paths())

    def stats(self) -> CacheStats:
        """Per-kind and total entry counts and byte footprints."""
        totals = CacheStats()
        for path in self.entry_paths():
            kind = path.parent.parent.name
            try:
                size = path.stat().st_size
            except OSError:
                continue
            kind_stats = totals.kinds.setdefault(kind, KindStats())
            kind_stats.entries += 1
            kind_stats.bytes += size
            totals.entries += 1
            totals.bytes += size
        return totals

    # ------------------------------------------------------------------ #
    # Management
    # ------------------------------------------------------------------ #
    def gc(
        self,
        max_bytes: int | None = None,
        max_age: float | None = None,
        protect_since: float | None = None,
    ) -> GCReport:
        """Evict entries until the store fits the given bounds.

        ``max_age`` (seconds) first removes every entry idle longer than
        the cutoff; ``max_bytes`` then removes least-recently-used entries
        until the total footprint fits.  Bounds default to the values the
        cache was constructed with.  Entries written (or used) after the
        GC pass started are never evicted, so a concurrent engine run's
        in-flight results survive even under a tight byte budget — the
        bound is therefore best-effort while writers are active.

        ``protect_since`` widens that protection window backwards: entries
        written or used at/after the given wall-clock time are never
        evicted either.  The engine's post-run auto-GC passes its own start
        time here, so a byte budget smaller than one run's output can never
        cannibalise the results that run just produced (or the warm entries
        it just read — a hit bumps the mtime).
        """
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        max_age = self.max_age if max_age is None else max_age
        started = time.time()
        entries: list[tuple[float, int, Path]] = []
        report = GCReport()
        for path in self.entry_paths():
            try:
                status = path.stat()
            except OSError:
                continue
            entries.append((status.st_mtime, status.st_size, path))
        total_bytes = sum(size for _, size, _ in entries)

        evictable = sorted(
            (
                entry
                for entry in entries
                if entry[0] <= started
                and (protect_since is None or entry[0] < protect_since)
            ),
            key=lambda entry: entry[0],
        )
        doomed: list[tuple[float, int, Path]] = []
        if max_age is not None:
            cutoff = started - max_age
            while evictable and evictable[0][0] < cutoff:
                doomed.append(evictable.pop(0))
        if max_bytes is not None:
            surviving = total_bytes - sum(size for _, size, _ in doomed)
            while evictable and surviving > max_bytes:
                entry = evictable.pop(0)
                doomed.append(entry)
                surviving -= entry[1]

        for _, size, path in doomed:
            try:
                path.unlink()
            except OSError:
                continue
            report.removed_entries += 1
            report.freed_bytes += size
        self._prune_empty_directories()
        report.remaining_entries = len(entries) - report.removed_entries
        report.remaining_bytes = total_bytes - report.freed_bytes
        if report.removed_entries:
            self.telemetry.event(
                "cache.gc",
                removed=report.removed_entries,
                freed_bytes=report.freed_bytes,
                remaining_entries=report.remaining_entries,
                remaining_bytes=report.remaining_bytes,
            )
            self.telemetry.count("cache.gc_removed", report.removed_entries)
            self.telemetry.count("cache.gc_freed_bytes", report.freed_bytes)
        return report

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed."""
        removed = 0
        for path in list(self.entry_paths()):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        self._prune_empty_directories()
        return removed

    def verify(self, remove: bool = False) -> VerifyReport:
        """Check that every entry decodes and lives under its key's digest.

        An entry is corrupt when it fails to decode (truncated file, bad
        magic, undecodable body, an embedded binary trace that no longer
        parses) or when the digest of its embedded key does not match its
        filename — either way the engine would already recompute it;
        ``remove=True`` deletes such entries so they stop occupying space.
        Unlike ``get``, this decodes embedded traces in full, so it is the
        slow, thorough sweep.
        """
        report = VerifyReport()
        for path in self.entry_paths():
            report.checked += 1
            key = self._read_entry_key(path)
            if key is None or key_digest(key) != path.stem:
                report.corrupt.append(path)
                if remove:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        if remove:
            self._prune_empty_directories()
        return report

    def _read_entry_key(self, path: Path) -> dict | None:
        """Deep-decode one entry and return its key, or ``None`` if corrupt."""
        try:
            if path.suffix == _BINARY_SUFFIX:
                with open(path, "rb") as handle:
                    key, payload = decode_cache_entry(handle.read())
            else:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
                key = entry["key"]
                payload = entry["payload"]
            if "trace_binary" in payload or "trace_text" in payload:
                payload_trace(payload)
            return key
        except Exception:
            return None

    def _prune_empty_directories(self) -> None:
        """Drop shard/kind directories emptied by eviction (best effort)."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.glob("*/*")):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        for kind in sorted(self.root.glob("*")):
            if kind.is_dir():
                try:
                    kind.rmdir()
                except OSError:
                    pass
