"""Codecs for simulation artefacts and binary cache entries.

Everything the engine moves between processes or persists in the result
cache goes through these functions: :class:`TraceStatistics`,
:class:`PredictorResult`, :class:`PredictorShard` and the joint
:class:`SimulationResult`.  All encodings are plain JSON-compatible dicts
(string keys, no custom types), so cache files stay greppable and a future
distributed backend can reuse the same wire format.

Conventions: ``Category`` values are encoded by their string value, PC maps
by decimal string keys, subset-outcome tuples as ``"10010"``-style bit
strings, and packed correctness bits as hex.

On top of the dict codecs, :func:`encode_cache_entry` /
:func:`decode_cache_entry` define the *binary cache-entry envelope*
(``.rvpc`` files): the entry key stays uncompressed JSON so a cache
directory remains greppable, the payload is zlib-compressed, and a
``trace_text`` payload field travels as a v3 binary trace instead of
JSON-escaped text.  Decoding deliberately does **not** render the trace
back to text (the expensive part of a warm read); it returns the raw v3
bytes under ``trace_binary``, and the :func:`payload_trace` /
:func:`payload_trace_text` / :func:`payload_trace_digest` accessors give
callers a uniform view over both shapes.  ``payload_trace_text`` always
reproduces the canonical text bit-identically, so digests agree across
formats (see ``docs/cache-layout.md``).
"""

from __future__ import annotations

import json
import zlib
from hashlib import sha256

from repro.errors import TraceError
from repro.isa.opcodes import Category
from repro.simulation.simulator import (
    PredictorResult,
    PredictorShard,
    SimulationResult,
)
from repro.trace.io import (
    decode_uvarint,
    dumps_trace,
    dumps_trace_binary,
    encode_uvarint,
    loads_trace,
    loads_trace_binary,
)
from repro.trace.stream import TraceStatistics, ValueTrace


def _encode_pc_map(mapping: dict[int, int]) -> dict[str, int]:
    return {str(pc): count for pc, count in mapping.items()}


def _decode_pc_map(data: dict[str, int]) -> dict[int, int]:
    return {int(pc): count for pc, count in data.items()}


def _encode_category_map(mapping: dict[Category, int]) -> dict[str, int]:
    return {category.value: count for category, count in mapping.items()}


def _decode_category_map(data: dict[str, int]) -> dict[Category, int]:
    return {Category(value): count for value, count in data.items()}


def _encode_outcome_key(key: tuple[bool, ...]) -> str:
    return "".join("1" if correct else "0" for correct in key)


def _decode_outcome_key(text: str) -> tuple[bool, ...]:
    return tuple(char == "1" for char in text)


# --------------------------------------------------------------------------- #
# TraceStatistics
# --------------------------------------------------------------------------- #
def statistics_to_dict(statistics: TraceStatistics) -> dict:
    return {
        "name": statistics.name,
        "total_dynamic_instructions": statistics.total_dynamic_instructions,
        "predicted_instructions": statistics.predicted_instructions,
        "static_instruction_count": statistics.static_instruction_count,
        "category_dynamic_counts": _encode_category_map(statistics.category_dynamic_counts),
        "category_static_counts": _encode_category_map(statistics.category_static_counts),
    }


def statistics_from_dict(data: dict) -> TraceStatistics:
    return TraceStatistics(
        name=data["name"],
        total_dynamic_instructions=data["total_dynamic_instructions"],
        predicted_instructions=data["predicted_instructions"],
        static_instruction_count=data["static_instruction_count"],
        category_dynamic_counts=_decode_category_map(data["category_dynamic_counts"]),
        category_static_counts=_decode_category_map(data["category_static_counts"]),
    )


# --------------------------------------------------------------------------- #
# PredictorResult / PredictorShard
# --------------------------------------------------------------------------- #
def predictor_result_to_dict(result: PredictorResult) -> dict:
    return {
        "predictor": result.predictor,
        "total": result.total,
        "correct": result.correct,
        "category_total": _encode_category_map(result.category_total),
        "category_correct": _encode_category_map(result.category_correct),
        "pc_correct": _encode_pc_map(result.pc_correct),
    }


def predictor_result_from_dict(data: dict) -> PredictorResult:
    return PredictorResult(
        predictor=data["predictor"],
        total=data["total"],
        correct=data["correct"],
        category_total=_decode_category_map(data["category_total"]),
        category_correct=_decode_category_map(data["category_correct"]),
        pc_correct=_decode_pc_map(data["pc_correct"]),
    )


def shard_to_dict(shard: PredictorShard) -> dict:
    return {
        "result": predictor_result_to_dict(shard.result),
        "correctness": shard.correctness.hex(),
        "record_count": shard.record_count,
    }


def shard_from_dict(data: dict) -> PredictorShard:
    return PredictorShard(
        result=predictor_result_from_dict(data["result"]),
        correctness=bytes.fromhex(data["correctness"]),
        record_count=data["record_count"],
    )


# --------------------------------------------------------------------------- #
# SimulationResult
# --------------------------------------------------------------------------- #
def simulation_to_dict(simulation: SimulationResult) -> dict:
    return {
        "trace_name": simulation.trace_name,
        "predictor_names": list(simulation.predictor_names),
        "total_records": simulation.total_records,
        "results": {
            name: predictor_result_to_dict(result)
            for name, result in simulation.results.items()
        },
        "pc_total": _encode_pc_map(simulation.pc_total),
        "pc_category": {
            str(pc): category.value for pc, category in simulation.pc_category.items()
        },
        "subset_counts": {
            _encode_outcome_key(key): count
            for key, count in simulation.subset_counts.items()
        },
        "subset_counts_by_category": {
            category.value: {
                _encode_outcome_key(key): count for key, count in counts.items()
            }
            for category, counts in simulation.subset_counts_by_category.items()
        },
    }


def simulation_from_dict(data: dict) -> SimulationResult:
    return SimulationResult(
        trace_name=data["trace_name"],
        predictor_names=tuple(data["predictor_names"]),
        total_records=data["total_records"],
        results={
            name: predictor_result_from_dict(result)
            for name, result in data["results"].items()
        },
        pc_total=_decode_pc_map(data["pc_total"]),
        pc_category={
            int(pc): Category(value) for pc, value in data["pc_category"].items()
        },
        subset_counts={
            _decode_outcome_key(key): count
            for key, count in data["subset_counts"].items()
        },
        subset_counts_by_category={
            Category(value): {
                _decode_outcome_key(key): count for key, count in counts.items()
            }
            for value, counts in data["subset_counts_by_category"].items()
        },
    )


# --------------------------------------------------------------------------- #
# Binary cache-entry envelope (.rvpc files)
# --------------------------------------------------------------------------- #
#: Magic + version for binary cache entries; bump the version when the
#: envelope layout changes incompatibly (old entries then read as corrupt,
#: i.e. cache misses, never as wrong data).
CACHE_ENTRY_MAGIC = b"\x89RVPC\r\n\x1a"
CACHE_ENTRY_VERSION = 1

#: Placeholder stored in the payload JSON where ``trace_text`` was removed;
#: the trace itself rides in the envelope's binary-trace section.
_TRACE_SENTINEL = "__trace_binary__"


def encode_cache_entry(key: dict, payload: dict, compress: bool = True) -> bytes:
    """Pack one cache entry (key + payload) into the binary envelope.

    Layout (integers are LEB128 varints)::

        magic(8) version flags
        key_len key_json             -- uncompressed UTF-8 JSON, greppable
        body_len body_bytes          -- zlib-compressed when flag bit 0 set

    and the body, once inflated::

        payload_len payload_json
        trace_len trace_v3_bytes     -- 0 when the payload carries no trace

    A payload's ``trace_text`` field (the canonical text form produced by
    :func:`repro.trace.io.dumps_trace`) — or pre-encoded ``trace_binary``
    bytes, whether from a previously decoded entry or fresh off the
    worker wire (:func:`repro.engine.worker.execute_trace_task` returns
    compressed v3 bytes) — is stored in the v3 binary framing; every
    other field stays JSON.  The v3 framing is self-describing about its
    own compression, so embedded bytes are stored as given.
    """
    payload_fields = dict(payload)
    trace_bytes = payload_fields.pop("trace_binary", b"")
    trace_text = payload_fields.pop("trace_text", None)
    if trace_text is not None:
        # The envelope's zlib pass covers the whole body, so the embedded
        # trace stays uncompressed to avoid double work.
        trace_bytes = dumps_trace_binary(loads_trace(trace_text))
    if trace_bytes:
        payload_fields[_TRACE_SENTINEL] = True
    payload_json = json.dumps(payload_fields).encode("utf-8")

    body = bytearray()
    body += encode_uvarint(len(payload_json))
    body += payload_json
    body += encode_uvarint(len(trace_bytes))
    body += trace_bytes
    flags = 0
    body_bytes = bytes(body)
    if compress:
        flags |= 0x01
        body_bytes = zlib.compress(body_bytes, level=6)

    key_json = json.dumps(dict(key), sort_keys=True).encode("utf-8")
    out = bytearray(CACHE_ENTRY_MAGIC)
    out += encode_uvarint(CACHE_ENTRY_VERSION)
    out += encode_uvarint(flags)
    out += encode_uvarint(len(key_json))
    out += key_json
    out += encode_uvarint(len(body_bytes))
    out += body_bytes
    return bytes(out)


def decode_cache_entry(blob: bytes) -> tuple[dict, dict]:
    """Unpack an envelope produced by :func:`encode_cache_entry`.

    Returns ``(key, payload)``; an embedded trace comes back as raw v3
    bytes under ``trace_binary`` (use the ``payload_trace*`` accessors —
    rendering text eagerly would throw away the binary format's parse-time
    win on every warm read).  Raises ``ValueError`` on any corruption —
    truncation, bad magic, undecodable body — which the cache layer
    converts into a miss.
    """
    view = memoryview(blob)
    if bytes(view[: len(CACHE_ENTRY_MAGIC)]) != CACHE_ENTRY_MAGIC:
        raise ValueError("not a binary cache entry: bad magic")
    offset = len(CACHE_ENTRY_MAGIC)
    try:
        version, offset = decode_uvarint(view, offset)
        if version != CACHE_ENTRY_VERSION:
            raise ValueError(f"unsupported cache entry version {version}")
        flags, offset = decode_uvarint(view, offset)
        key_length, offset = decode_uvarint(view, offset)
        if offset + key_length > len(view):
            raise ValueError("truncated cache entry: key overruns the data")
        key = json.loads(bytes(view[offset : offset + key_length]).decode("utf-8"))
        offset += key_length
        body_length, offset = decode_uvarint(view, offset)
        if offset + body_length > len(view):
            raise ValueError("truncated cache entry: body overruns the data")
        body: bytes = bytes(view[offset : offset + body_length])
        if flags & 0x01:
            try:
                body = zlib.decompress(body)
            except zlib.error as exc:
                raise ValueError("corrupt cache entry: body fails to decompress") from exc

        payload_length, position = decode_uvarint(body, 0)
        if position + payload_length > len(body):
            raise ValueError("truncated cache entry: payload overruns the body")
        payload = json.loads(body[position : position + payload_length].decode("utf-8"))
        position += payload_length
        trace_length, position = decode_uvarint(body, position)
        if position + trace_length > len(body):
            raise ValueError("truncated cache entry: trace overruns the body")
    except TraceError as exc:
        # decode_uvarint signals truncation with TraceError; this API's
        # corruption contract is ValueError.
        raise ValueError(f"truncated cache entry: {exc}") from exc
    if payload.pop(_TRACE_SENTINEL, False):
        if trace_length == 0:
            raise ValueError("corrupt cache entry: trace sentinel without trace bytes")
        # The embedded trace is *not* decoded here — that is the expensive
        # part of a warm read, and callers materialise it exactly once via
        # payload_trace().  Consumers must treat a TraceError from the
        # accessors as a cache miss (the scheduler recomputes; `verify`
        # decodes deeply).
        payload["trace_binary"] = body[position : position + trace_length]
    return key, payload


# --------------------------------------------------------------------------- #
# Uniform access to trace-task payloads (text, binary or in-flight)
# --------------------------------------------------------------------------- #
def payload_trace(payload: dict) -> ValueTrace:
    """Materialise the :class:`ValueTrace` carried by a trace-task payload.

    Accepts both payload shapes: ``trace_binary`` (fresh task outcomes
    off the worker wire and binary cache entries — the fast path, no text
    involved) and ``trace_text`` (JSON cache entries and outcomes
    produced by older code, kept as a decode fallback).
    """
    trace_bytes = payload.get("trace_binary")
    if trace_bytes is not None:
        return loads_trace_binary(trace_bytes)
    return loads_trace(payload["trace_text"])


def payload_trace_text(payload: dict) -> str:
    """Canonical text form of the payload's trace (rendered if binary)."""
    text = payload.get("trace_text")
    if text is not None:
        return text
    return dumps_trace(loads_trace_binary(payload["trace_binary"]))


def payload_trace_digest(payload: dict) -> str:
    """Digest of the payload's trace over its canonical text form.

    Prefers the ``digest`` field stamped by the trace task (so binary
    cache hits never render text at all) and falls back to hashing the
    canonical form for entries written before digests were stored.
    """
    digest = payload.get("digest")
    if digest is not None:
        return digest
    return sha256(payload_trace_text(payload).encode("utf-8")).hexdigest()
