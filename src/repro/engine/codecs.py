"""JSON round-trip codecs for simulation artefacts.

Everything the engine moves between processes or persists in the result
cache goes through these functions: :class:`TraceStatistics`,
:class:`PredictorResult`, :class:`PredictorShard` and the joint
:class:`SimulationResult`.  All encodings are plain JSON-compatible dicts
(string keys, no custom types), so cache files stay greppable and a future
distributed backend can reuse the same wire format.

Conventions: ``Category`` values are encoded by their string value, PC maps
by decimal string keys, subset-outcome tuples as ``"10010"``-style bit
strings, and packed correctness bits as hex.
"""

from __future__ import annotations

from repro.isa.opcodes import Category
from repro.simulation.simulator import (
    PredictorResult,
    PredictorShard,
    SimulationResult,
)
from repro.trace.stream import TraceStatistics


def _encode_pc_map(mapping: dict[int, int]) -> dict[str, int]:
    return {str(pc): count for pc, count in mapping.items()}


def _decode_pc_map(data: dict[str, int]) -> dict[int, int]:
    return {int(pc): count for pc, count in data.items()}


def _encode_category_map(mapping: dict[Category, int]) -> dict[str, int]:
    return {category.value: count for category, count in mapping.items()}


def _decode_category_map(data: dict[str, int]) -> dict[Category, int]:
    return {Category(value): count for value, count in data.items()}


def _encode_outcome_key(key: tuple[bool, ...]) -> str:
    return "".join("1" if correct else "0" for correct in key)


def _decode_outcome_key(text: str) -> tuple[bool, ...]:
    return tuple(char == "1" for char in text)


# --------------------------------------------------------------------------- #
# TraceStatistics
# --------------------------------------------------------------------------- #
def statistics_to_dict(statistics: TraceStatistics) -> dict:
    return {
        "name": statistics.name,
        "total_dynamic_instructions": statistics.total_dynamic_instructions,
        "predicted_instructions": statistics.predicted_instructions,
        "static_instruction_count": statistics.static_instruction_count,
        "category_dynamic_counts": _encode_category_map(statistics.category_dynamic_counts),
        "category_static_counts": _encode_category_map(statistics.category_static_counts),
    }


def statistics_from_dict(data: dict) -> TraceStatistics:
    return TraceStatistics(
        name=data["name"],
        total_dynamic_instructions=data["total_dynamic_instructions"],
        predicted_instructions=data["predicted_instructions"],
        static_instruction_count=data["static_instruction_count"],
        category_dynamic_counts=_decode_category_map(data["category_dynamic_counts"]),
        category_static_counts=_decode_category_map(data["category_static_counts"]),
    )


# --------------------------------------------------------------------------- #
# PredictorResult / PredictorShard
# --------------------------------------------------------------------------- #
def predictor_result_to_dict(result: PredictorResult) -> dict:
    return {
        "predictor": result.predictor,
        "total": result.total,
        "correct": result.correct,
        "category_total": _encode_category_map(result.category_total),
        "category_correct": _encode_category_map(result.category_correct),
        "pc_correct": _encode_pc_map(result.pc_correct),
    }


def predictor_result_from_dict(data: dict) -> PredictorResult:
    return PredictorResult(
        predictor=data["predictor"],
        total=data["total"],
        correct=data["correct"],
        category_total=_decode_category_map(data["category_total"]),
        category_correct=_decode_category_map(data["category_correct"]),
        pc_correct=_decode_pc_map(data["pc_correct"]),
    )


def shard_to_dict(shard: PredictorShard) -> dict:
    return {
        "result": predictor_result_to_dict(shard.result),
        "correctness": shard.correctness.hex(),
        "record_count": shard.record_count,
    }


def shard_from_dict(data: dict) -> PredictorShard:
    return PredictorShard(
        result=predictor_result_from_dict(data["result"]),
        correctness=bytes.fromhex(data["correctness"]),
        record_count=data["record_count"],
    )


# --------------------------------------------------------------------------- #
# SimulationResult
# --------------------------------------------------------------------------- #
def simulation_to_dict(simulation: SimulationResult) -> dict:
    return {
        "trace_name": simulation.trace_name,
        "predictor_names": list(simulation.predictor_names),
        "total_records": simulation.total_records,
        "results": {
            name: predictor_result_to_dict(result)
            for name, result in simulation.results.items()
        },
        "pc_total": _encode_pc_map(simulation.pc_total),
        "pc_category": {
            str(pc): category.value for pc, category in simulation.pc_category.items()
        },
        "subset_counts": {
            _encode_outcome_key(key): count
            for key, count in simulation.subset_counts.items()
        },
        "subset_counts_by_category": {
            category.value: {
                _encode_outcome_key(key): count for key, count in counts.items()
            }
            for category, counts in simulation.subset_counts_by_category.items()
        },
    }


def simulation_from_dict(data: dict) -> SimulationResult:
    return SimulationResult(
        trace_name=data["trace_name"],
        predictor_names=tuple(data["predictor_names"]),
        total_records=data["total_records"],
        results={
            name: predictor_result_from_dict(result)
            for name, result in data["results"].items()
        },
        pc_total=_decode_pc_map(data["pc_total"]),
        pc_category={
            int(pc): Category(value) for pc, value in data["pc_category"].items()
        },
        subset_counts={
            _decode_outcome_key(key): count
            for key, count in data["subset_counts"].items()
        },
        subset_counts_by_category={
            Category(value): {
                _decode_outcome_key(key): count for key, count in counts.items()
            }
            for value, counts in data["subset_counts_by_category"].items()
        },
    )
