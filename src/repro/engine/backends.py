"""Pluggable executor backends for the engine's dispatch step.

The phase executor (:mod:`repro.engine.phases`) is backend-agnostic: it
hands an :class:`ExecutorBackend` a worker function plus a list of
JSON-compatible payloads and expects the outcomes back **in input order**,
with a completion callback per unit for live progress.  Three
implementations cover the local spectrum (a fourth,
:class:`repro.engine.remote.RemoteBackend`, dispatches over TCP to
``repro-vp worker serve`` processes — see :mod:`repro.engine.remote`):

* :class:`SerialBackend` — everything in-process, no pickling.  Payloads
  may carry live objects (``inline_payloads`` is always true), tracebacks
  stay readable, and there is zero process overhead: the right choice for
  debugging and small runs, and the reference semantics the other
  backends must reproduce bit-identically.
* :class:`PoolBackend` — a fresh ``multiprocessing`` pool per dispatch,
  the engine's historical ``jobs > 1`` behaviour.  Each phase pays the
  pool's interpreter + import startup once, which amortises well over
  large phases.
* :class:`PersistentWorkerBackend` — worker subprocesses spawned once,
  on first use, and kept warm across phases *and* across engine runs for
  the lifetime of the backend object.  Repeated small dispatches (a
  campaign's trace phase followed by its simulate phase, a CLI process
  running several sweeps) skip the per-dispatch fork/import cost the
  pool backend pays every time.

Because a backend only changes *where* a work unit executes — payloads and
outcomes are the same JSON dicts everywhere — results are bit-identical
across backends for every cache temperature; ``tests/engine/test_backends.py``
and ``tests/engine/test_remote_backend.py`` pin that parity.  The remote
backend slots in without touching the task, phase or cache layers —
exactly the seam this module exists to provide.

Worker processes are forked from the parent, so they inherit the predictor
registry as of backend start-up.  A registry re-binding made *after* a
persistent backend spawned its workers is caught by the worker-side
configuration-signature check (:mod:`repro.engine.worker`), which fails
loudly rather than simulating a stale configuration.
"""

from __future__ import annotations

import multiprocessing
import time
import weakref
from typing import Callable, Sequence

from repro.engine.telemetry import NULL_TELEMETRY

#: Names accepted by :func:`resolve_backend` and the CLI's ``--backend``.
BACKEND_NAMES = ("serial", "pool", "persistent", "remote")


class ExecutorBackend:
    """Executes one dispatch of independent work units, in input order.

    Subclasses implement :meth:`map`; :meth:`inline_payloads` tells the
    scheduler whether payloads for an upcoming dispatch may carry live
    (unpicklable) objects, and :meth:`close` releases any held resources.
    Backends are context managers (``close`` on exit).

    ``telemetry`` is stamped by the engine before each dispatch (a shared
    backend instance may serve several engines with different sinks);
    backends emit a ``dispatch`` span per :meth:`map` call and never
    change outcomes based on it.
    """

    #: Human-readable backend identifier (the CLI flag value).
    name = "abstract"

    #: Telemetry sink for dispatch spans; engines overwrite this before
    #: every dispatch, and the null default makes standalone use cheap.
    telemetry = NULL_TELEMETRY

    def inline_payloads(self, task_count: int) -> bool:
        """Whether a dispatch of ``task_count`` units runs in-process.

        When true, payloads may embed live objects (e.g. a ``ValueTrace``)
        and skip serialisation entirely; when false they must be picklable
        and traces should travel as compressed v3 bytes.
        """
        raise NotImplementedError

    def parallel_slots(self) -> int:
        """How many units this backend can usefully run concurrently.

        Used by intra-trace sharding's ``--shard-window auto`` to size
        windows (:mod:`repro.engine.sharding`); purely advisory — it never
        affects results, only how work is cut.  In-process backends report
        1 (sharding a serial run only adds overhead).
        """
        return 1

    def map(
        self,
        function: Callable[[dict], dict],
        payloads: Sequence[dict],
        on_result: Callable[[int], None] | None = None,
    ) -> list[dict]:
        """Run ``function`` over ``payloads``; return outcomes in order.

        ``on_result`` is invoked with the payload index as each outcome
        arrives (always in input order), for live progress reporting.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release held resources (worker processes); idempotent."""

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _map_serial(
    function: Callable[[dict], dict],
    payloads: Sequence[dict],
    on_result: Callable[[int], None] | None,
) -> list[dict]:
    results: list[dict] = []
    for index, payload in enumerate(payloads):
        results.append(function(payload))
        if on_result is not None:
            on_result(index)
    return results


def _map_pool(
    pool,
    function: Callable[[dict], dict],
    payloads: Sequence[dict],
    on_result: Callable[[int], None] | None,
) -> list[dict]:
    results: list[dict] = []
    for index, outcome in enumerate(pool.imap(function, payloads)):
        results.append(outcome)
        if on_result is not None:
            on_result(index)
    return results


class SerialBackend(ExecutorBackend):
    """In-process execution: no pickling, no subprocesses, no startup cost."""

    name = "serial"

    def inline_payloads(self, task_count: int) -> bool:
        return True

    def map(self, function, payloads, on_result=None):
        with self.telemetry.span("dispatch", backend=self.name, units=len(payloads)):
            return _map_serial(function, payloads, on_result)


class PoolBackend(ExecutorBackend):
    """A fresh ``multiprocessing`` pool per dispatch (historical ``jobs > 1``).

    A dispatch of at most one unit runs in-process instead — spinning up a
    pool for a single task costs more than it saves — which is why
    :meth:`inline_payloads` is true exactly for ``task_count <= 1``.
    """

    name = "pool"

    def __init__(self, jobs: int) -> None:
        self.jobs = max(1, int(jobs))

    def inline_payloads(self, task_count: int) -> bool:
        return self.jobs == 1 or task_count <= 1

    def parallel_slots(self) -> int:
        return self.jobs

    def map(self, function, payloads, on_result=None):
        if self.inline_payloads(len(payloads)):
            with self.telemetry.span(
                "dispatch", backend=self.name, units=len(payloads), inline=True
            ):
                return _map_serial(function, payloads, on_result)
        workers = min(self.jobs, len(payloads))
        with self.telemetry.span(
            "dispatch", backend=self.name, units=len(payloads), workers=workers
        ) as span:
            pool_started = time.perf_counter()
            with multiprocessing.get_context().Pool(processes=workers) as pool:
                # Startup is the pool backend's recurring cost (fork +
                # interpreter import per dispatch) — the number the
                # persistent backend exists to amortise away.
                span.set(startup_seconds=time.perf_counter() - pool_started)
                return _map_pool(pool, function, payloads, on_result)


def _shutdown_pool(pool) -> None:
    """Terminate a worker pool promptly (finalizer-safe)."""
    try:
        pool.terminate()
        pool.join()
    except Exception:
        pass


class PersistentWorkerBackend(ExecutorBackend):
    """Warm worker subprocesses reused across dispatches, phases and runs.

    The pool is spawned lazily on the first dispatch and kept alive until
    :meth:`close` (or garbage collection / interpreter exit via a
    ``weakref`` finalizer — workers are daemonic either way, so they can
    never outlive the parent).  Every dispatch goes to the warm workers,
    including single-unit ones, so ``inline_payloads`` is always false and
    payloads must stay picklable.
    """

    name = "persistent"

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))
        self._pool = None
        self._finalizer = None

    def inline_payloads(self, task_count: int) -> bool:
        return False

    def parallel_slots(self) -> int:
        return self.jobs

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(processes=self.jobs)
            self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)
        return self._pool

    def map(self, function, payloads, on_result=None):
        if not payloads:
            return []
        warm = self._pool is not None
        with self.telemetry.span(
            "dispatch",
            backend=self.name,
            units=len(payloads),
            workers=self.jobs,
            warm=warm,
        ):
            return _map_pool(self._ensure_pool(), function, payloads, on_result)

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._pool = None


def resolve_backend(
    backend: "str | ExecutorBackend | None",
    jobs: int,
    workers: "Sequence[str] | None" = None,
) -> ExecutorBackend:
    """Map an engine's ``backend`` argument to a backend instance.

    ``None`` preserves the engine's historical behaviour: in-process for
    ``jobs == 1``, a per-dispatch pool otherwise.  A string selects by
    name (``"serial"``, ``"pool"``, ``"persistent"``, ``"remote"``),
    sized by ``jobs``; an :class:`ExecutorBackend` instance is used as-is
    (the caller owns its lifetime — one persistent backend can serve many
    engines).  The remote backend additionally needs ``workers``, the
    ``host:port`` addresses of running ``repro-vp worker serve``
    processes; ``jobs`` becomes its per-worker in-flight limit.
    """
    if isinstance(backend, ExecutorBackend):
        return backend
    if backend is None:
        backend = "serial" if jobs <= 1 else "pool"
    if backend == "serial":
        return SerialBackend()
    if backend == "pool":
        return PoolBackend(jobs)
    if backend == "persistent":
        return PersistentWorkerBackend(jobs)
    if backend == "remote":
        if not workers:
            raise ValueError(
                "the remote backend needs worker addresses "
                "(--workers host:port[,host:port...])"
            )
        # Imported lazily: the remote module builds on this one.
        from repro.engine.remote import RemoteBackend

        return RemoteBackend(workers, in_flight=jobs)
    raise ValueError(
        f"unknown executor backend {backend!r} (expected one of {', '.join(BACKEND_NAMES)})"
    )
