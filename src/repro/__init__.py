"""Reproduction of *The Predictability of Data Values* (Sazeides & Smith, MICRO-30, 1997).

The package is organised in layers:

* :mod:`repro.core` — the paper's contribution: last value, stride (two-delta)
  and finite-context-method value predictors, plus blending and hybrids.
* :mod:`repro.sequences` — the value-sequence taxonomy and learning-time /
  learning-degree analysis of Section 1.1 and Table 1.
* :mod:`repro.isa`, :mod:`repro.workloads`, :mod:`repro.trace` — the
  substrate substituting for SimpleScalar and the SPEC95int binaries: a
  MIPS-like interpreter, seven synthetic benchmarks and value-trace
  collection.
* :mod:`repro.simulation` — the idealised prediction simulator (unbounded
  tables, immediate update) and the analyses of Section 4.
* :mod:`repro.reporting` — one entry point per table/figure of the paper.

Quickstart::

    from repro import create_predictor, get_workload, simulate_trace

    trace = get_workload("compress").trace(scale=0.2)
    result = simulate_trace(trace, ("l", "s2", "fcm3"))
    print(result.results["fcm3"].accuracy)
"""

from repro.core import (
    BlendedFcmPredictor,
    FcmPredictor,
    HybridPredictor,
    LastValuePredictor,
    PAPER_PREDICTORS,
    Prediction,
    SimpleStridePredictor,
    CounterStridePredictor,
    TwoDeltaStridePredictor,
    ValuePredictor,
    available_predictors,
    create_predictor,
    register_predictor,
)
from repro.isa import Category, Opcode
from repro.sequences import (
    SequenceClass,
    classify_sequence,
    generate_sequence,
    measure_learning,
)
from repro.simulation import (
    PredictionSimulator,
    SimulationResult,
    run_campaign,
    simulate_trace,
)
from repro.engine.sweeps import SweepSpec, run_sweep
from repro.trace import TraceRecord, ValueTrace, trace_from_values
from repro.workloads import available_workloads, get_workload, run_suite
from repro.reporting import ALL_EXPERIMENTS, run_experiment

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Predictors
    "ValuePredictor",
    "Prediction",
    "LastValuePredictor",
    "SimpleStridePredictor",
    "CounterStridePredictor",
    "TwoDeltaStridePredictor",
    "FcmPredictor",
    "BlendedFcmPredictor",
    "HybridPredictor",
    "PAPER_PREDICTORS",
    "available_predictors",
    "create_predictor",
    "register_predictor",
    # ISA / traces / workloads
    "Category",
    "Opcode",
    "TraceRecord",
    "ValueTrace",
    "trace_from_values",
    "available_workloads",
    "get_workload",
    "run_suite",
    # Sequences
    "SequenceClass",
    "classify_sequence",
    "generate_sequence",
    "measure_learning",
    # Simulation
    "PredictionSimulator",
    "SimulationResult",
    "simulate_trace",
    "SweepSpec",
    "run_campaign",
    "run_sweep",
    # Experiments
    "ALL_EXPERIMENTS",
    "run_experiment",
]
