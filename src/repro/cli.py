"""Command-line front end: ``repro-vp`` / ``python -m repro``.

Subcommands
-----------
``reproduce``
    One-command reproduction artifact: regenerate every paper deliverable
    from the committed ``artifact/manifest.json`` into an isolated
    ``results/<run-id>/`` directory, optionally checking the numbers
    cell-by-cell against the committed goldens (``--check``); see
    ``docs/reproducing.md`` and ``ARTIFACTS.md``.
``experiments``
    Regenerate one, several or all of the paper's tables and figures.
``campaign``
    Run the whole suite-wide campaign through the execution engine, with
    ``--jobs`` worker processes and an optional persistent ``--cache-dir``.
``sweep``
    Run a parameter sweep (inputs × flags × predictors/orders) over one
    benchmark through the same engine and cache (see ``docs/sweeps.md``).
``cache``
    Inspect and manage a persistent result cache: ``stats``, ``gc``,
    ``clear``, ``verify`` (see ``docs/cache-layout.md``).
``worker``
    Run a warm worker process serving the remote executor backend
    (``worker serve --listen HOST:PORT``); engines dispatch to it with
    ``--backend remote --workers HOST:PORT[,HOST:PORT...]`` (see the
    "Distributed execution" section of ``docs/architecture.md``).
``inspect``
    Summarize a recorded telemetry run directory (written by
    ``--telemetry-dir``): phase breakdown, slowest tasks, cache hit
    ratio, per-worker utilization (see ``docs/observability.md``).
``simulate``
    Run a chosen set of predictors over one benchmark and print accuracy.
``workloads`` / ``predictors``
    List the available benchmarks and predictor configurations.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Sequence

from repro.core.registry import PAPER_PREDICTORS, available_predictors, create_predictor
from repro.engine.backends import BACKEND_NAMES
from repro.engine.cache import ResultCache
from repro.engine.progress import ConsoleProgress
from repro.errors import DispatchError, UnknownPredictorError, WorkloadError
from repro.engine.scheduler import ExecutionEngine
from repro.engine.sweeps import SweepSpec
from repro.isa.opcodes import REPORTED_CATEGORIES
from repro.reporting.experiments import ALL_EXPERIMENTS, run_experiment
from repro.reporting.tables import format_table
from repro.simulation.campaign import (
    DEFAULT_SCALE,
    QUICK_SCALE,
    set_campaign_defaults,
)
from repro.simulation.simulator import simulate_trace
from repro.workloads.suite import BENCHMARK_ORDER, get_workload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vp",
        description="Reproduction of 'The Predictability of Data Values' (MICRO-30, 1997)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    reproduce = subparsers.add_parser(
        "reproduce",
        help="regenerate the paper's deliverables from the committed artifact manifest",
    )
    reproduce.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="SELECTOR",
        help="restrict to matching deliverables: identifiers (table2, figure3), "
        "the groups 'tables'/'figures', or globs like 'table*' "
        "(default: everything in the manifest)",
    )
    reproduce.add_argument(
        "--out",
        default="results",
        metavar="DIR",
        help="parent directory for the isolated results/<run-id>/ directory "
        "(default: results)",
    )
    reproduce.add_argument(
        "--check",
        action="store_true",
        help="diff the regenerated numbers cell-by-cell against the committed "
        "goldens under artifact/expected/ and exit non-zero on any mismatch",
    )
    reproduce.add_argument(
        "--update-expected",
        action="store_true",
        help="rewrite the committed goldens and the manifest's expected digests "
        "from this run (maintainers only, after a reviewed numbers change)",
    )
    reproduce.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="artifact manifest to reproduce (default: the committed "
        "artifact/manifest.json, located from the working directory upward)",
    )
    reproduce.add_argument(
        "--list",
        action="store_true",
        dest="list_deliverables",
        help="list the manifest's deliverables (after --only filtering) and exit",
    )
    reproduce.add_argument(
        "--scale",
        type=float,
        default=None,
        help="override every scale-taking deliverable's workload scale "
        "(exploratory runs only; incompatible with --check/--update-expected)",
    )
    _add_engine_arguments(reproduce)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "names",
        nargs="*",
        default=[],
        help=f"experiment identifiers (default: all of {', '.join(sorted(ALL_EXPERIMENTS))})",
    )
    experiments.add_argument(
        "--scale",
        type=float,
        default=None,
        help=f"workload scale factor (default {DEFAULT_SCALE}; --quick uses {QUICK_SCALE})",
    )
    experiments.add_argument(
        "--quick", action="store_true", help="use the reduced quick-run scale"
    )
    _add_engine_arguments(experiments)

    campaign = subparsers.add_parser(
        "campaign",
        help="run the suite-wide campaign through the parallel execution engine",
    )
    campaign.add_argument(
        "--scale",
        type=float,
        default=None,
        help=f"workload scale factor (default {DEFAULT_SCALE}; --quick uses {QUICK_SCALE})",
    )
    campaign.add_argument(
        "--quick", action="store_true", help="use the reduced quick-run scale"
    )
    campaign.add_argument(
        "--predictors",
        nargs="+",
        default=list(PAPER_PREDICTORS),
        help="predictor names (see the 'predictors' subcommand)",
    )
    campaign.add_argument(
        "--benchmarks",
        nargs="+",
        default=list(BENCHMARK_ORDER),
        choices=BENCHMARK_ORDER,
        help="benchmarks to run (default: the full suite)",
    )
    campaign.add_argument(
        "--progress", action="store_true", help="print live task progress to stderr"
    )
    _add_engine_arguments(campaign)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a parameter sweep (inputs × flags × predictors) over one benchmark",
    )
    sweep.add_argument(
        "--benchmark",
        default="gcc",
        choices=BENCHMARK_ORDER,
        help="benchmark to sweep (default: gcc, as in the paper's Section 4.4)",
    )
    sweep.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        choices=BENCHMARK_ORDER,
        metavar="NAME",
        help="benchmark axis (multiple benchmarks; overrides --benchmark); "
        "shared traces are deduplicated across the axis",
    )
    sweep.add_argument(
        "--predictors",
        nargs="+",
        default=["fcm2"],
        help="predictor axis (default: fcm2; see the 'predictors' subcommand)",
    )
    sweep.add_argument(
        "--orders",
        nargs="+",
        type=int,
        default=None,
        metavar="N",
        help="fcm-order axis; shorthand for --predictors fcmN... (overrides it)",
    )
    sweep.add_argument(
        "--inputs",
        nargs="+",
        default=None,
        metavar="NAME",
        help="input-set axis; 'all' expands to every input of the benchmark "
        "(default: the benchmark's reference input)",
    )
    sweep.add_argument(
        "--flags",
        nargs="+",
        default=None,
        metavar="NAME",
        help="flag-setting axis; 'all' expands to every flag setting "
        "(default: the benchmark's reference flags)",
    )
    sweep.add_argument(
        "--scale",
        type=float,
        default=None,
        help=f"workload scale factor (default {DEFAULT_SCALE}; --quick uses {QUICK_SCALE})",
    )
    sweep.add_argument(
        "--quick", action="store_true", help="use the reduced quick-run scale"
    )
    sweep.add_argument(
        "--progress", action="store_true", help="print live task progress to stderr"
    )
    sweep.add_argument(
        "--json",
        action="store_true",
        help="emit the sweep points and engine stats as JSON instead of a table",
    )
    _add_engine_arguments(sweep)

    cache = subparsers.add_parser(
        "cache", help="inspect and manage a persistent result cache"
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_commands.add_parser(
        "stats", help="per-kind entry counts and byte footprints"
    )
    cache_stats.add_argument(
        "--fail-if-empty",
        action="store_true",
        help="exit non-zero when the cache holds no entries (CI assertion)",
    )
    cache_stats.add_argument(
        "--fail-if-over",
        type=_parse_size,
        default=None,
        metavar="SIZE",
        help="exit non-zero when the cache exceeds SIZE (e.g. 64KB, 10MB)",
    )
    cache_gc = cache_commands.add_parser(
        "gc", help="evict least-recently-used / expired entries"
    )
    cache_gc.add_argument(
        "--max-bytes",
        type=_parse_size,
        default=None,
        metavar="SIZE",
        help="evict LRU entries until the cache fits SIZE (e.g. 64KB, 10MB)",
    )
    cache_gc.add_argument(
        "--max-age",
        type=_parse_age,
        default=None,
        metavar="AGE",
        help="evict entries idle longer than AGE (e.g. 3600, 30m, 12h, 7d)",
    )
    cache_clear = cache_commands.add_parser("clear", help="remove every cache entry")
    cache_verify = cache_commands.add_parser(
        "verify", help="check every entry decodes and matches its digest"
    )
    cache_verify.add_argument(
        "--remove", action="store_true", help="delete corrupt entries instead of reporting them"
    )
    for sub in (cache_stats, cache_gc, cache_clear, cache_verify):
        sub.add_argument(
            "--cache-dir", required=True, help="result cache directory to operate on"
        )

    worker = subparsers.add_parser(
        "worker", help="run a worker process for the remote executor backend"
    )
    worker_commands = worker.add_subparsers(dest="worker_command", required=True)
    worker_serve = worker_commands.add_parser(
        "serve", help="serve trace/simulate tasks for remote engines until interrupted"
    )
    worker_serve.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="address to listen on (default 127.0.0.1:0: loopback, free port; "
        "the chosen address is printed on startup)",
    )
    worker_serve.add_argument(
        "--stats-interval",
        type=float,
        default=None,
        metavar="N",
        help="print a serving-stats line (tasks, bytes, uptime) to stderr "
        "every N seconds (default: silent)",
    )

    inspect = subparsers.add_parser(
        "inspect",
        help="summarize a telemetry run directory written by --telemetry-dir",
    )
    inspect.add_argument(
        "run_dir",
        help="run directory holding manifest.json and metrics.jsonl",
    )
    inspect.add_argument(
        "--json",
        action="store_true",
        help="emit the full summary as JSON instead of tables",
    )
    inspect.add_argument(
        "--slowest",
        type=int,
        default=10,
        metavar="N",
        help="number of slowest tasks to list (default 10)",
    )

    simulate = subparsers.add_parser("simulate", help="simulate predictors over one benchmark")
    simulate.add_argument("benchmark", choices=BENCHMARK_ORDER)
    simulate.add_argument(
        "--predictors",
        nargs="+",
        default=list(PAPER_PREDICTORS),
        help="predictor names (see the 'predictors' subcommand)",
    )
    simulate.add_argument("--scale", type=float, default=QUICK_SCALE)
    simulate.add_argument("--input", default=None, help="named input set for the benchmark")
    simulate.add_argument(
        "--kernel",
        choices=("scalar", "vector", "auto"),
        default="auto",
        help="simulation kernel (results are bit-identical; see the campaign "
        "subcommand's --kernel)",
    )

    subparsers.add_parser("workloads", help="list the available benchmarks")
    subparsers.add_parser("predictors", help="list the available predictor configurations")
    return parser


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Engine options shared by the campaign-backed subcommands."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for tracing/simulation (default 1: in-process)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="executor backend: 'serial' runs in-process (no pickling), 'pool' "
        "starts a fresh worker pool per dispatch, 'persistent' keeps warm "
        "worker processes across phases and runs, 'remote' dispatches to "
        "'repro-vp worker serve' processes named by --workers (default: "
        "serial when --jobs is 1, pool otherwise); results are identical "
        "across backends",
    )
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="comma-separated addresses of running 'repro-vp worker serve' "
        "processes; implies --backend remote, for which --jobs becomes the "
        "per-worker in-flight limit",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result cache directory (default: no on-disk cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore all caches and recompute every work unit",
    )
    parser.add_argument(
        "--cache-format",
        choices=("binary", "text"),
        default="binary",
        help="storage format for new cache entries (reads accept both)",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=_parse_size,
        default=None,
        metavar="SIZE",
        help="auto-GC the cache down to SIZE after the run (e.g. 64KB, 10MB); "
        "entries produced by the run itself are never evicted",
    )
    parser.add_argument(
        "--cache-max-age",
        type=_parse_age,
        default=None,
        metavar="AGE",
        help="auto-GC entries idle longer than AGE after the run (e.g. 30m, 7d)",
    )
    parser.add_argument(
        "--kernel",
        choices=("scalar", "vector", "auto"),
        default="auto",
        help="simulation kernel: 'scalar' runs the reference per-record loop, "
        "'vector' the columnar numpy kernel (fails cleanly without numpy), "
        "'auto' picks vector when numpy is importable (default); results "
        "and cache entries are bit-identical across kernels",
    )
    parser.add_argument(
        "--shard-window",
        type=_parse_shard_window,
        default=None,
        metavar="N",
        help="intra-trace sharding: split each trace into windows of N records "
        "and simulate them in parallel with predictor-state handoff; 'auto' "
        "sizes windows from the trace length and the backend's parallel "
        "slots, 0 disables (default: off); results and cache entries are "
        "bit-identical with sharding on or off",
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        metavar="DIR",
        help="record run telemetry (manifest.json + metrics.jsonl) into DIR; "
        "summarize it later with 'repro-vp inspect DIR' "
        "(results are identical with or without telemetry)",
    )


_SIZE_UNITS = {"": 1, "B": 1, "KB": 1024, "MB": 1024**2, "GB": 1024**3}
_AGE_UNITS = {"": 1, "S": 1, "M": 60, "H": 3600, "D": 86400}


def _parse_size(text: str) -> int:
    """Parse a byte size like ``"65536"``, ``"64KB"`` or ``"1.5MB"``."""
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([A-Za-z]*)\s*", text)
    unit = match.group(2).upper() if match else None
    if match is None or unit not in _SIZE_UNITS:
        raise argparse.ArgumentTypeError(f"invalid size {text!r} (expected e.g. 64KB, 10MB)")
    return int(float(match.group(1)) * _SIZE_UNITS[unit])


def _parse_age(text: str) -> float:
    """Parse an age like ``"3600"``, ``"30m"``, ``"12h"`` or ``"7d"`` into seconds."""
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([A-Za-z]*)\s*", text)
    unit = match.group(2).upper() if match else None
    if match is None or unit not in _AGE_UNITS:
        raise argparse.ArgumentTypeError(f"invalid age {text!r} (expected e.g. 3600, 30m, 12h)")
    return float(match.group(1)) * _AGE_UNITS[unit]


def _parse_shard_window(text: str) -> int | str:
    """Parse ``--shard-window``: a positive record count, ``auto`` or ``0``."""
    from repro.engine.sharding import normalize_shard_window

    try:
        window = normalize_shard_window(text.strip().lower())
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    # 0 normalises to None ("explicitly off"), which argparse cannot
    # distinguish from the flag being absent — both mean unsharded.
    return window if window is not None else 0


def _parse_workers(text: str) -> tuple[str, ...]:
    """Parse a comma-separated ``host:port[,host:port...]`` worker list."""
    from repro.engine.remote import parse_worker_address

    addresses = tuple(part.strip() for part in text.split(",") if part.strip())
    if not addresses:
        raise argparse.ArgumentTypeError("empty --workers list")
    for address in addresses:
        try:
            parse_worker_address(address)
        except ValueError as error:
            raise argparse.ArgumentTypeError(str(error)) from None
    return addresses


def _apply_worker_arguments(args: argparse.Namespace) -> str | None:
    """Reconcile ``--backend``/``--workers``; returns an error or ``None``.

    ``--workers`` implies ``--backend remote`` (naming worker addresses
    for a local backend is always a mistake), and the remote backend is
    unusable without addresses, so both halves are validated here before
    any engine is built.
    """
    if args.workers and args.backend is None:
        args.backend = "remote"
    if args.backend == "remote" and not args.workers:
        return "--backend remote needs --workers HOST:PORT[,HOST:PORT...]"
    if args.workers and args.backend != "remote":
        return f"--workers does not apply to --backend {args.backend}"
    return None


def _telemetry_from_arguments(args: argparse.Namespace, command: str):
    """Build the run's telemetry sink from ``--telemetry-dir`` (or ``None``).

    The caller owns the sink's lifetime: close it after the run so the
    counters flush and the manifest gets its ``finished_wall`` stamp.
    """
    if getattr(args, "telemetry_dir", None) is None:
        return None
    from repro.engine.telemetry import RunTelemetry

    telemetry = RunTelemetry(args.telemetry_dir, command=command)
    if args.workers:
        telemetry.annotate(workers=list(args.workers))
    return telemetry


def _command_reproduce(args: argparse.Namespace, argv: Sequence[str] | None) -> int:
    from repro.artifact import reproduce
    from repro.artifact.manifest import load_manifest
    from repro.errors import ArtifactError

    error = _apply_worker_arguments(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    if args.telemetry_dir is not None:
        print(
            "reproduce records telemetry into the results directory itself "
            "(results/<run-id>/manifest.json + metrics.jsonl); --telemetry-dir does not apply",
            file=sys.stderr,
        )
        return 2
    try:
        manifest = load_manifest(args.manifest)
        deliverables = manifest.select(args.only)
    except ArtifactError as error:
        print(error, file=sys.stderr)
        return 2
    if args.list_deliverables:
        rows = [
            [d.identifier, d.kind, d.experiment, "yes" if d.expected_digest else "no", d.title]
            for d in deliverables
        ]
        print(
            format_table(
                ["deliverable", "kind", "experiment", "golden", "title"],
                rows,
                title=f"Artifact manifest — {manifest.paper} ({manifest.path})",
            )
        )
        return 0
    set_campaign_defaults(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        cache_format=args.cache_format,
        cache_max_bytes=args.cache_max_bytes,
        cache_max_age=args.cache_max_age,
        backend=args.backend,
        workers=args.workers,
        kernel=args.kernel,
        shard_window=args.shard_window,
    )
    try:
        report = reproduce(
            manifest,
            only=args.only,
            out_dir=args.out,
            check=args.check,
            update_expected=args.update_expected,
            scale=args.scale,
            argv=list(argv) if argv is not None else sys.argv[1:],
        )
    except ArtifactError as error:
        print(error, file=sys.stderr)
        return 2
    except DispatchError as error:
        # Backend infrastructure failed; completed units are cached, so a
        # rerun resumes where this one stopped (same surface as campaign).
        print(error, file=sys.stderr)
        return 1
    headers = ["deliverable", "kind", "digest", "seconds"]
    if report.check_report is not None:
        headers.append("check")
    rows = []
    for run in report.runs:
        row: list[object] = [
            run.deliverable.identifier,
            run.deliverable.kind,
            run.digest[:12],
            f"{run.seconds:.2f}",
        ]
        if report.check_report is not None:
            row.append(run.check.status if run.check is not None else "?")
        rows.append(row)
    print(
        format_table(
            headers,
            rows,
            title=f"Reproduce — {len(report.runs)} deliverable(s) → {report.run_dir}",
        )
    )
    if report.stats is not None:
        print(_stats_line(report.stats))
    if args.update_expected:
        print(
            f"updated goldens under {manifest.expected_dir()} "
            f"and expected digests in {manifest.path}"
        )
    if report.check_report is not None:
        if not report.check_report.ok:
            print(report.check_report.render(), file=sys.stderr)
            return 1
        print(report.check_report.render())
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    names = args.names or sorted(ALL_EXPERIMENTS)
    error = _apply_worker_arguments(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    telemetry = _telemetry_from_arguments(args, "experiments")
    set_campaign_defaults(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        cache_format=args.cache_format,
        cache_max_bytes=args.cache_max_bytes,
        cache_max_age=args.cache_max_age,
        backend=args.backend,
        workers=args.workers,
        telemetry=telemetry,
        kernel=args.kernel,
        shard_window=args.shard_window,
    )
    scale = QUICK_SCALE if args.quick and args.scale is None else args.scale
    try:
        for name in names:
            kwargs = {}
            factory = ALL_EXPERIMENTS.get(name)
            if factory is None:
                print(f"unknown experiment {name!r}", file=sys.stderr)
                return 2
            if "scale" in factory.__code__.co_varnames and scale is not None:
                kwargs["scale"] = scale
            try:
                artifact = run_experiment(name, **kwargs)
            except DispatchError as error:
                # Same surface as campaign/sweep: a lost fleet is an
                # operational error, not a crash; completed units are cached.
                print(error, file=sys.stderr)
                return 1
            print(artifact.render())
            print()
    finally:
        if telemetry is not None:
            telemetry.close()
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    error = _apply_worker_arguments(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    try:
        for name in args.predictors:
            create_predictor(name)
    except UnknownPredictorError as error:
        print(error, file=sys.stderr)
        return 2
    scale = args.scale
    if scale is None:
        scale = QUICK_SCALE if args.quick else DEFAULT_SCALE
    telemetry = _telemetry_from_arguments(args, "campaign")
    try:
        with _engine_from_arguments(args, telemetry) as engine:
            try:
                result = engine.run(
                    scale=scale, predictors=tuple(args.predictors), benchmarks=tuple(args.benchmarks)
                )
            except DispatchError as error:
                # Backend infrastructure failed (e.g. the remote fleet was
                # lost); completed units are already cached, so a rerun
                # resumes where this one stopped.
                print(error, file=sys.stderr)
                return 1
    finally:
        if telemetry is not None:
            telemetry.close()
    rows = []
    for benchmark in result.benchmarks():
        simulation = result.simulations[benchmark]
        rows.append(
            [benchmark, len(result.traces[benchmark])]
            + [simulation.results[name].accuracy for name in result.predictor_names]
        )
    print(
        format_table(
            ["benchmark", "predicted instr."] + list(result.predictor_names),
            rows,
            title=f"Campaign — overall accuracy (%) at scale {scale}, jobs={engine.jobs}",
        )
    )
    print(_stats_line(engine.stats))
    return 0


def _engine_from_arguments(args: argparse.Namespace, telemetry=None) -> ExecutionEngine:
    """Build the execution engine shared by ``campaign`` and ``sweep``."""
    return ExecutionEngine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=ConsoleProgress() if args.progress else None,
        cache_format=args.cache_format,
        cache_max_bytes=args.cache_max_bytes,
        cache_max_age=args.cache_max_age,
        backend=args.backend,
        workers=args.workers,
        telemetry=telemetry,
        kernel=args.kernel,
        shard_window=args.shard_window,
    )


def _stats_line(stats) -> str:
    """The one-line run summary CI greps for (shared across subcommands).

    Extensions append after the greppable prefix — the ``traces: ...;
    simulations: ...`` phrasing is load-bearing for CI's cache-reuse
    assertions and must not change shape.
    """
    line = (
        f"traces: {stats.traces_computed} computed, {stats.traces_cached} cached; "
        f"simulations: {stats.simulations_computed} computed, "
        f"{stats.simulations_cached} cached"
    )
    if stats.windows_computed or stats.windows_cached:
        line += (
            f"; windows: {stats.windows_computed} computed, "
            f"{stats.windows_cached} cached"
        )
    line += f"; wall time {stats.total_seconds:.2f}s"
    line += (
        f" (trace {stats.trace_seconds:.2f}s, simulate {stats.simulate_seconds:.2f}s)"
    )
    if stats.cache_hit_bytes or stats.cache_write_bytes:
        line += (
            f"; cache {stats.cache_hit_bytes} B read, "
            f"{stats.cache_write_bytes} B written"
        )
    return line


def _command_sweep(args: argparse.Namespace) -> int:
    error = _apply_worker_arguments(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    predictors = (
        tuple(f"fcm{order}" for order in args.orders)
        if args.orders
        else tuple(args.predictors)
    )
    try:
        for name in predictors:
            create_predictor(name)
    except UnknownPredictorError as error:
        print(error, file=sys.stderr)
        return 2
    scale = args.scale
    if scale is None:
        scale = QUICK_SCALE if args.quick else DEFAULT_SCALE
    spec = SweepSpec(
        benchmark=args.benchmark,
        scale=scale,
        inputs=_resolve_axis(args.inputs),
        flags=_resolve_axis(args.flags),
        predictors=predictors,
        benchmarks=tuple(args.benchmarks) if args.benchmarks else None,
    )
    telemetry = _telemetry_from_arguments(args, "sweep")
    try:
        with _engine_from_arguments(args, telemetry) as engine:
            try:
                result = engine.run_sweep(spec)
            except WorkloadError as error:
                print(error, file=sys.stderr)
                return 2
            except DispatchError as error:
                print(error, file=sys.stderr)
                return 1
    finally:
        if telemetry is not None:
            telemetry.close()
    if args.json:
        print(json.dumps(_sweep_as_json(result), indent=2))
        return 0
    rows = [
        [
            entry.point.benchmark,
            entry.point.input_name,
            entry.point.flags,
            entry.point.predictor,
            entry.record_count,
            entry.accuracy,
        ]
        for entry in result.points
    ]
    print(
        format_table(
            ["benchmark", "input", "flags", "predictor", "predictions", "accuracy (%)"],
            rows,
            title=(
                f"Sweep — {', '.join(spec.benchmark_axis())} at scale {scale}, "
                f"jobs={engine.jobs} ({len(result.points)} points)"
            ),
        )
    )
    print(_stats_line(engine.stats))
    return 0


def _resolve_axis(requested: list[str] | None) -> tuple[str | None, ...]:
    """Map a CLI axis argument to spec values (absent means the default).

    The literal ``all`` passes through: :meth:`SweepSpec.points` expands it
    against each benchmark's own declared sets, which is what makes
    ``--benchmarks a b --inputs all`` mean "every input of each".
    """
    if requested is None:
        return (None,)
    return tuple(requested)


def _sweep_as_json(result) -> dict:
    spec, stats = result.spec, result.stats
    return {
        "spec": {
            "benchmark": spec.benchmark,
            "benchmarks": list(spec.benchmark_axis()),
            "scale": spec.scale,
            "inputs": list(spec.inputs),
            "flags": list(spec.flags),
            "predictors": list(spec.predictors),
        },
        "points": [
            {
                "benchmark": entry.point.benchmark,
                "input": entry.point.input_name,
                "flags": entry.point.flags,
                "predictor": entry.point.predictor,
                "predictions": entry.record_count,
                "accuracy": entry.accuracy,
            }
            for entry in result.points
        ],
        "stats": {
            "traces_computed": stats.traces_computed,
            "traces_cached": stats.traces_cached,
            "simulations_computed": stats.simulations_computed,
            "simulations_cached": stats.simulations_cached,
            "windows_computed": stats.windows_computed,
            "windows_cached": stats.windows_cached,
            "total_seconds": stats.total_seconds,
            "trace_seconds": stats.trace_seconds,
            "simulate_seconds": stats.simulate_seconds,
            "cache_hit_bytes": stats.cache_hit_bytes,
            "cache_write_bytes": stats.cache_write_bytes,
        },
    }


def _command_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        return _cache_stats(cache, args)
    if args.cache_command == "gc":
        return _cache_gc(cache, args)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
        return 0
    if args.cache_command == "verify":
        return _cache_verify(cache, args)
    return 2


def _cache_stats(cache: ResultCache, args: argparse.Namespace) -> int:
    stats = cache.stats()
    rows = [
        [kind, kind_stats.entries, kind_stats.bytes]
        for kind, kind_stats in sorted(stats.kinds.items())
    ]
    print(format_table(["kind", "entries", "bytes"], rows, title=f"Cache {cache.root}"))
    print(f"total: {stats.entries} entries, {stats.bytes} bytes")
    if args.fail_if_empty and stats.entries == 0:
        print("cache is empty", file=sys.stderr)
        return 1
    if args.fail_if_over is not None and stats.bytes > args.fail_if_over:
        print(f"cache exceeds {args.fail_if_over} bytes ({stats.bytes} stored)", file=sys.stderr)
        return 1
    return 0


def _cache_gc(cache: ResultCache, args: argparse.Namespace) -> int:
    if args.max_bytes is None and args.max_age is None:
        print("cache gc: pass --max-bytes and/or --max-age", file=sys.stderr)
        return 2
    report = cache.gc(max_bytes=args.max_bytes, max_age=args.max_age)
    print(
        f"removed {report.removed_entries} entries, freed {report.freed_bytes} bytes; "
        f"{report.remaining_entries} entries, {report.remaining_bytes} bytes remain"
    )
    return 0


def _cache_verify(cache: ResultCache, args: argparse.Namespace) -> int:
    report = cache.verify(remove=args.remove)
    if report.ok:
        print(f"checked {report.checked} entries: all ok")
        return 0
    for path in report.corrupt:
        action = "removed" if args.remove else "corrupt"
        print(f"{action}: {path}", file=sys.stderr)
    print(
        f"checked {report.checked} entries: {len(report.corrupt)} corrupt"
        + (" (removed)" if args.remove else "")
    )
    return 0 if args.remove else 1


def _command_worker(args: argparse.Namespace) -> int:
    if args.worker_command != "serve":
        return 2
    import signal

    from repro.engine.remote import WorkerServer, parse_worker_address

    try:
        host, port = parse_worker_address(args.listen, allow_ephemeral=True)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    server = WorkerServer(host, port)
    server.start()
    # The parseable ready line CI and scripts wait for (port 0 resolves to
    # the actual bound port here).
    print(f"worker listening on {server.address}", flush=True)

    def _stop(signum, frame):
        server.stop()

    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever(stats_interval=args.stats_interval)
    except KeyboardInterrupt:
        server.stop()
    print(
        f"worker stopped: {server.tasks_served} tasks over "
        f"{server.connections_served} connections "
        f"({server.handshakes_rejected} handshakes rejected)",
        flush=True,
    )
    return 0


def _command_inspect(args: argparse.Namespace) -> int:
    from repro.engine.telemetry import summarize_run

    try:
        summary = summarize_run(args.run_dir)
    except FileNotFoundError as error:
        print(f"not a telemetry run directory: {error}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as error:
        print(f"unreadable telemetry run: {error}", file=sys.stderr)
        return 2
    # Tolerated damage (missing manifest, truncated metrics) is reported
    # one line per problem; the partial summary still renders below and
    # the exit code flags the run as incomplete.
    problems = summary.get("problems", ())
    for problem in problems:
        print(f"inspect: {problem}", file=sys.stderr)
    status = 1 if problems else 0
    if args.json:
        print(json.dumps(summary, indent=2, default=str))
        return status

    manifest = summary["manifest"]
    print(f"run {manifest.get('run_id')} — {manifest.get('command') or 'unknown command'}")
    for field in ("created", "backend", "jobs", "cache_dir", "package_version"):
        value = manifest.get(field)
        if value is not None:
            print(f"  {field}: {value}")
    if manifest.get("workers"):
        print(f"  workers: {', '.join(manifest['workers'])}")

    if summary["phases"]:
        rows = [
            [
                phase.get("phase", "?"),
                phase.get("backend", "?"),
                phase.get("total", 0),
                phase.get("cached", 0),
                phase.get("computed", 0),
                phase.get("seconds", 0.0),
            ]
            for phase in summary["phases"]
        ]
        print()
        print(
            format_table(
                ["phase", "backend", "total", "cached", "computed", "seconds"],
                rows,
                title="Phases",
            )
        )

    slowest = summary["tasks"][: max(0, args.slowest)]
    if slowest:
        rows = [
            [
                task.get("phase", "?"),
                task.get("label", "?"),
                task.get("worker_pid", ""),
                task.get("seconds", 0.0),
            ]
            for task in slowest
        ]
        print()
        print(
            format_table(
                ["phase", "task", "worker pid", "execute seconds"],
                rows,
                title=f"Slowest tasks (top {len(slowest)} of {len(summary['tasks'])})",
            )
        )

    kernels = summary.get("kernels") or {}
    if kernels.get("tasks") or kernels.get("fallback_total"):
        parts = [
            f"{count} task(s) on {kernel}"
            for kernel, count in sorted(kernels.get("tasks", {}).items())
        ]
        print()
        print(f"kernels: {', '.join(parts) if parts else 'no kernel reports'}")
        fallbacks = kernels.get("fallbacks_by_predictor") or {}
        if fallbacks:
            detail = ", ".join(
                f"{predictor} ×{count}" for predictor, count in fallbacks.items()
            )
            print(
                f"  vector→scalar fallbacks: {kernels.get('fallback_total', 0)} "
                f"({detail})"
            )

    cache = summary["cache"]
    print()
    if cache["hits"] or cache["misses"] or cache["writes"]:
        ratio = cache["hit_ratio"]
        print(
            f"cache: {cache['hits']} hit(s) / {cache['misses']} miss(es)"
            + (f" ({ratio:.0%} hit ratio)" if ratio is not None else "")
            + f", {cache['hit_bytes']} B read, {cache['writes']} write(s), "
            f"{cache['write_bytes']} B written"
        )
        if cache["gc_removed"]:
            print(
                f"cache gc: {cache['gc_removed']} entries removed, "
                f"{cache['gc_freed_bytes']} B freed"
            )
    else:
        print("cache: no activity recorded")

    if summary["workers"]:
        rows = [
            [
                worker.get("worker", "?"),
                worker.get("pid", ""),
                worker.get("tasks", 0),
                worker.get("busy_seconds", 0.0),
                f"{worker.get('utilization', 0.0):.0%}",
                worker.get("peak_in_flight", 0),
                worker.get("bytes_sent", 0),
                worker.get("bytes_received", 0),
            ]
            for worker in summary["workers"]
        ]
        print()
        print(
            format_table(
                [
                    "worker",
                    "pid",
                    "tasks",
                    "busy s",
                    "util",
                    "peak in-flight",
                    "B sent",
                    "B recv",
                ],
                rows,
                title="Remote workers (per dispatch)",
            )
        )
    if summary["redispatches"]:
        print()
        for event in summary["redispatches"]:
            print(
                f"re-dispatch: {event.get('units', 0)} unit(s) from "
                f"{event.get('worker', '?')} ({event.get('reason', 'unknown')})"
            )
    return status


def _command_simulate(args: argparse.Namespace) -> int:
    workload = get_workload(args.benchmark)
    trace = workload.trace(scale=args.scale, input_name=args.input)
    result = simulate_trace(trace, tuple(args.predictors), kernel=args.kernel)
    rows = []
    for name in result.predictor_names:
        predictor_result = result.results[name]
        row: list[object] = [name, predictor_result.accuracy]
        for category in REPORTED_CATEGORIES:
            row.append(predictor_result.category_accuracy(category))
        rows.append(row)
    headers = ["predictor", "overall (%)"] + [category.value for category in REPORTED_CATEGORIES]
    print(
        format_table(
            headers,
            rows,
            title=f"{args.benchmark}: {len(trace)} predicted instructions (scale {args.scale})",
        )
    )
    return 0


def _command_workloads() -> int:
    rows = []
    for name in BENCHMARK_ORDER:
        workload = get_workload(name)
        rows.append([name, ", ".join(workload.input_sets), workload.description])
    print(format_table(["benchmark", "inputs", "description"], rows, title="Synthetic SPEC95int suite"))
    return 0


def _command_predictors() -> int:
    rows = [[name, "paper line-up" if name in PAPER_PREDICTORS else ""] for name in available_predictors()]
    print(format_table(["predictor", "note"], rows, title="Registered predictors"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by both the console script and ``python -m repro``."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "reproduce":
        return _command_reproduce(args, argv)
    if args.command == "experiments":
        return _command_experiments(args)
    if args.command == "campaign":
        return _command_campaign(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "cache":
        return _command_cache(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "inspect":
        return _command_inspect(args)
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "workloads":
        return _command_workloads()
    if args.command == "predictors":
        return _command_predictors()
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
