"""Container for value traces, with summary statistics.

A :class:`ValueTrace` is an immutable-by-convention list of
:class:`TraceRecord` objects plus the name of the workload that produced it
and the number of dynamic instructions retired in total (needed to report the
"fraction predicted" column of Table 2).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import TraceError
from repro.isa.opcodes import Category
from repro.trace.record import TraceRecord


@dataclass
class TraceStatistics:
    """Aggregate statistics of a trace."""

    name: str
    total_dynamic_instructions: int
    predicted_instructions: int
    static_instruction_count: int
    category_dynamic_counts: dict[Category, int]
    category_static_counts: dict[Category, int]

    @property
    def fraction_predicted(self) -> float:
        """Fraction of all dynamic instructions that are predicted."""
        if self.total_dynamic_instructions == 0:
            return 0.0
        return self.predicted_instructions / self.total_dynamic_instructions

    def category_dynamic_percentages(self) -> dict[Category, float]:
        """Dynamic share of each category among predicted instructions (%)"""
        if self.predicted_instructions == 0:
            return {category: 0.0 for category in self.category_dynamic_counts}
        return {
            category: 100.0 * count / self.predicted_instructions
            for category, count in self.category_dynamic_counts.items()
        }


class ValueTrace:
    """An ordered collection of predicted-instruction trace records."""

    def __init__(
        self,
        name: str,
        records: Sequence[TraceRecord] | Iterable[TraceRecord] = (),
        total_dynamic_instructions: int | None = None,
    ) -> None:
        self.name = name
        self._records: list[TraceRecord] = list(records)
        self._total_dynamic_instructions = total_dynamic_instructions

    # ------------------------------------------------------------------ #
    # Mutation (used only while a trace is being collected)
    # ------------------------------------------------------------------ #
    def append(self, record: TraceRecord) -> None:
        """Append a record to the trace (collection-time only)."""
        self._records.append(record)

    def set_total_dynamic_instructions(self, total: int) -> None:
        """Record the total dynamic instruction count of the producing run."""
        if total < len(self._records):
            raise TraceError(
                "total dynamic instructions cannot be smaller than the number of "
                f"predicted records ({total} < {len(self._records)})"
            )
        self._total_dynamic_instructions = total

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def records(self) -> list[TraceRecord]:
        """The trace records in program order."""
        return self._records

    @property
    def total_dynamic_instructions(self) -> int:
        """Total dynamic instructions (predicted + non-predicted)."""
        if self._total_dynamic_instructions is None:
            return len(self._records)
        return self._total_dynamic_instructions

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ValueTrace(
                self.name,
                self._records[index],
                total_dynamic_instructions=None,
            )
        return self._records[index]

    def __bool__(self) -> bool:
        return bool(self._records)

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def static_pcs(self) -> list[int]:
        """Distinct static PCs appearing in the trace, in first-seen order."""
        seen: dict[int, None] = {}
        for record in self._records:
            if record.pc not in seen:
                seen[record.pc] = None
        return list(seen)

    def values_by_pc(self) -> dict[int, list[int]]:
        """Map each static PC to the ordered list of values it produced."""
        grouped: dict[int, list[int]] = defaultdict(list)
        for record in self._records:
            grouped[record.pc].append(record.value)
        return dict(grouped)

    def filter_category(self, category: Category) -> "ValueTrace":
        """Return a sub-trace containing only the given category."""
        return ValueTrace(
            f"{self.name}:{category.value}",
            [record for record in self._records if record.category is category],
        )

    def category_counts(self) -> Counter:
        """Dynamic record count per category."""
        return Counter(record.category for record in self._records)

    def statistics(self) -> TraceStatistics:
        """Compute the Table 2 / Tables 4-5 style statistics for this trace."""
        dynamic_counts: Counter = Counter()
        static_pcs_by_category: dict[Category, set[int]] = defaultdict(set)
        for record in self._records:
            dynamic_counts[record.category] += 1
            static_pcs_by_category[record.category].add(record.pc)
        return TraceStatistics(
            name=self.name,
            total_dynamic_instructions=self.total_dynamic_instructions,
            predicted_instructions=len(self._records),
            static_instruction_count=len(self.static_pcs()),
            category_dynamic_counts=dict(dynamic_counts),
            category_static_counts={
                category: len(pcs) for category, pcs in static_pcs_by_category.items()
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValueTrace(name={self.name!r}, records={len(self._records)})"
