"""The atomic unit of a value trace: one predicted dynamic instruction."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import Category, Opcode


@dataclass(frozen=True)
class TraceRecord:
    """One dynamic, register-writing instruction in a value trace.

    Attributes
    ----------
    serial:
        Position of the instruction in the *full* dynamic instruction stream
        (including non-predicted instructions); monotonically increasing.
    pc:
        Program counter of the static instruction.  Predictors index their
        tables by this value (the paper uses only the PC for table access).
    opcode:
        The instruction's opcode.
    category:
        The reporting category (Table 3).
    value:
        The result value written to the destination register.
    """

    serial: int
    pc: int
    opcode: Opcode
    category: Category
    value: int

    def __str__(self) -> str:
        return f"#{self.serial} pc={self.pc:#x} {self.opcode.value} -> {self.value}"
