"""Value-trace infrastructure.

A value trace is the ordered sequence of ``(pc, opcode, category, value)``
tuples produced by the register-writing instructions of one program run.
Predictor simulations (:mod:`repro.simulation`) consume these traces; they
can come from executing a synthetic workload on the ISA substrate
(:class:`TraceCollector`) or be constructed directly for tests and
micro-experiments (:mod:`repro.trace.synthetic`).
"""

from repro.trace.record import TraceRecord
from repro.trace.stream import ValueTrace
from repro.trace.collector import TraceCollector, collect_trace
from repro.trace.io import (
    dump_trace,
    dump_trace_binary,
    dumps_trace,
    dumps_trace_binary,
    load_trace,
    load_trace_binary,
    load_trace_file,
    loads_trace,
    loads_trace_binary,
    save_trace_file,
)
from repro.trace.synthetic import (
    trace_from_values,
    trace_from_streams,
    interleave_traces,
)

__all__ = [
    "TraceRecord",
    "ValueTrace",
    "TraceCollector",
    "collect_trace",
    "dump_trace",
    "dump_trace_binary",
    "load_trace",
    "load_trace_binary",
    "load_trace_file",
    "dumps_trace",
    "dumps_trace_binary",
    "loads_trace",
    "loads_trace_binary",
    "save_trace_file",
    "trace_from_values",
    "trace_from_streams",
    "interleave_traces",
]
