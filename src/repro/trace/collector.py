"""Collect value traces from the ISA substrate.

The collector implements the paper's filtering rule: only instructions that
write results into general purpose registers are predicted; stores, branches
and jumps are excluded.  (``jal`` writes a link value and is counted under
the ``Other`` category, matching the paper's treatment of "Floating, Jump,
Other".)
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.machine import ExecutionResult, Machine, RetiredInstruction
from repro.isa.memory import SparseMemory
from repro.isa.program import Program
from repro.trace.record import TraceRecord
from repro.trace.stream import ValueTrace


class TraceCollector:
    """Machine observer that accumulates a :class:`ValueTrace`."""

    def __init__(self, name: str) -> None:
        self.trace = ValueTrace(name)
        self._dynamic_count = 0

    def __call__(self, event: RetiredInstruction, instruction: Instruction) -> None:
        self._dynamic_count += 1
        if event.value is None:
            return
        self.trace.append(
            TraceRecord(
                serial=event.serial,
                pc=event.pc,
                opcode=event.opcode,
                category=event.category,
                value=event.value,
            )
        )

    def finalize(self) -> ValueTrace:
        """Record the total dynamic count and return the finished trace."""
        self.trace.set_total_dynamic_instructions(self._dynamic_count)
        return self.trace


def collect_trace(
    program: Program,
    memory: SparseMemory | None = None,
    max_instructions: int | None = None,
) -> tuple[ValueTrace, ExecutionResult]:
    """Run ``program`` and return its value trace plus the execution summary."""
    collector = TraceCollector(program.name)
    kwargs = {} if max_instructions is None else {"max_instructions": max_instructions}
    machine = Machine(program, memory=memory, **kwargs)
    machine.add_observer(collector)
    result = machine.run()
    trace = collector.finalize()
    return trace, result
