"""(De)serialisation of value traces: text (v1/v2) and binary (v3).

Two wire formats share one record model (``serial pc opcode value``;
categories are recomputed from the opcode on load, so the Table 3 mapping
remains the single source of truth):

* **text** — a one-line header followed by one space-separated line per
  record.  This is the *canonical* encoding: trace digests
  (:func:`repro.engine.fingerprint.trace_digest`) and the worker wire
  format are defined over it, so it can never change shape silently.
* **binary (v3)** — a magic + version header followed by a
  length-prefixed, varint-packed record block (optionally
  zlib-compressed).  Roughly 4-8x smaller than the text form and faster
  to parse; used for cache storage.  ``docs/trace-format.md`` is the
  normative spec of all three versions.

Binary files and text files are distinguished by the leading magic bytes,
so :func:`load_trace_file` reads either transparently.
"""

from __future__ import annotations

import io
import zlib
from pathlib import Path
from typing import BinaryIO, TextIO
from urllib.parse import quote, unquote

from repro.errors import TraceError
from repro.isa.opcodes import Opcode, category_of
from repro.trace.record import TraceRecord
from repro.trace.stream import ValueTrace

#: v1 wrote the name verbatim (corrupting it if it contained spaces);
#: v2 percent-encodes it.  The loader keys decoding off the header version
#: so v1 files — whose names may contain literal ``%`` — stay readable.
_FORMAT_VERSION = 2
_HEADER_PREFIX = "#repro-trace"

#: Binary format version (text formats are v1/v2, binary starts at v3).
BINARY_FORMAT_VERSION = 3
#: PNG-style magic: the high bit catches text-mode mangling, ``RVPT`` names
#: the container ("Repro Value-Prediction Trace"), and CR/LF/EOF bytes catch
#: newline translation.  A text trace starts with ``#``, so the first byte
#: alone distinguishes the two families.
BINARY_MAGIC = b"\x89RVPT\r\n\x1a"

#: Header flag bits (varint-encoded after the version field).
_FLAG_ZLIB_BODY = 0x01

#: Stable opcode order used only as the *default* table layout; the binary
#: header embeds the table it actually used, so files survive enum edits.
_OPCODE_ORDER: tuple[Opcode, ...] = tuple(Opcode)


# --------------------------------------------------------------------------- #
# Varint primitives (shared with the engine's cache-entry envelope)
# --------------------------------------------------------------------------- #
def encode_uvarint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise TraceError(f"cannot uvarint-encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes | memoryview, offset: int) -> tuple[int, int]:
    """Decode a LEB128 varint at ``offset``; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise TraceError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one (0, -1, 1, -2 → 0, 1, 2, 3)."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def _encode_svarint(value: int) -> bytes:
    return encode_uvarint(_zigzag(value))


def _decode_svarint(data: bytes | memoryview, offset: int) -> tuple[int, int]:
    raw, offset = decode_uvarint(data, offset)
    return _unzigzag(raw), offset


# --------------------------------------------------------------------------- #
# Text format (v1/v2)
# --------------------------------------------------------------------------- #
def dump_trace(trace: ValueTrace, destination: TextIO) -> None:
    """Write ``trace`` to an open text stream (canonical v2 text form).

    The name is percent-encoded so that whitespace (or ``=``) in a trace
    name cannot corrupt the space-separated ``key=value`` header fields.
    """
    destination.write(
        f"{_HEADER_PREFIX} v{_FORMAT_VERSION} name={quote(trace.name, safe='')} "
        f"total={trace.total_dynamic_instructions} records={len(trace)}\n"
    )
    for record in trace:
        destination.write(f"{record.serial} {record.pc} {record.opcode.value} {record.value}\n")


def dumps_trace(trace: ValueTrace) -> str:
    """Return the canonical text serialisation of ``trace`` as a string."""
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def load_trace(source: TextIO) -> ValueTrace:
    """Read a trace previously written by :func:`dump_trace`."""
    header = source.readline()
    if not header.startswith(_HEADER_PREFIX):
        raise TraceError("not a repro trace: missing header line")
    tokens = header.strip().split()
    version = 1
    for token in tokens[1:]:
        if len(token) > 1 and token[0] == "v" and token[1:].isdigit():
            version = int(token[1:])
            break
    fields = dict(part.split("=", 1) for part in tokens if "=" in part)
    name = fields.get("name", "trace")
    if version >= 2:
        name = unquote(name)
    try:
        total = int(fields["total"])
        expected_records = int(fields["records"])
    except (KeyError, ValueError) as exc:
        raise TraceError(f"malformed trace header: {header!r}") from exc

    records: list[TraceRecord] = []
    for line_number, line in enumerate(source, start=2):
        line = line.strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 4:
            raise TraceError(f"malformed trace record on line {line_number}: {line!r}")
        try:
            serial, pc, value = int(parts[0]), int(parts[1]), int(parts[3])
            opcode = Opcode(parts[2])
        except ValueError as exc:
            raise TraceError(f"malformed trace record on line {line_number}: {line!r}") from exc
        records.append(
            TraceRecord(
                serial=serial,
                pc=pc,
                opcode=opcode,
                category=category_of(opcode),
                value=value,
            )
        )
    if len(records) != expected_records:
        raise TraceError(
            f"trace record count mismatch: header says {expected_records}, found {len(records)}"
        )
    trace = ValueTrace(name, records)
    trace.set_total_dynamic_instructions(total)
    return trace


def loads_trace(text: str) -> ValueTrace:
    """Parse a trace from a string produced by :func:`dumps_trace`."""
    return load_trace(io.StringIO(text))


# --------------------------------------------------------------------------- #
# Binary format (v3)
# --------------------------------------------------------------------------- #
def dumps_trace_binary(trace: ValueTrace, compress: bool = False) -> bytes:
    """Serialise ``trace`` into the v3 binary framing.

    Layout (all integers LEB128 varints, signed fields zigzag-mapped)::

        magic(8) version flags
        name_len name_bytes          -- percent-encoded UTF-8, as in text v2
        total records
        opcode_count [op_len op_bytes]*   -- table of opcode mnemonics
        body_len body_bytes

    The body holds, per record, ``serial_delta pc_delta opcode_index
    value`` (deltas against the previous record, zigzag-encoded; the
    opcode index points into the header table).  ``compress=True`` runs
    the body — not the header — through zlib and sets flag bit 0, so the
    record count and name stay inspectable without inflating anything.
    """
    opcode_index = {opcode: index for index, opcode in enumerate(_OPCODE_ORDER)}
    body = bytearray()
    previous_serial = 0
    previous_pc = 0
    for record in trace:
        body += _encode_svarint(record.serial - previous_serial)
        body += _encode_svarint(record.pc - previous_pc)
        body += encode_uvarint(opcode_index[record.opcode])
        body += _encode_svarint(record.value)
        previous_serial = record.serial
        previous_pc = record.pc

    flags = 0
    body_bytes = bytes(body)
    if compress:
        flags |= _FLAG_ZLIB_BODY
        body_bytes = zlib.compress(body_bytes, level=6)

    name_bytes = quote(trace.name, safe="").encode("ascii")
    out = bytearray(BINARY_MAGIC)
    out += encode_uvarint(BINARY_FORMAT_VERSION)
    out += encode_uvarint(flags)
    out += encode_uvarint(len(name_bytes))
    out += name_bytes
    out += encode_uvarint(trace.total_dynamic_instructions)
    out += encode_uvarint(len(trace))
    out += encode_uvarint(len(_OPCODE_ORDER))
    for opcode in _OPCODE_ORDER:
        mnemonic = opcode.value.encode("ascii")
        out += encode_uvarint(len(mnemonic))
        out += mnemonic
    out += encode_uvarint(len(body_bytes))
    out += body_bytes
    return bytes(out)


def dump_trace_binary(trace: ValueTrace, destination: BinaryIO, compress: bool = False) -> None:
    """Write the v3 binary serialisation of ``trace`` to an open byte stream."""
    destination.write(dumps_trace_binary(trace, compress=compress))


def _parse_binary_container(data: bytes) -> tuple[str, int, int, list[Opcode], bytes]:
    """Parse the v3 header and return ``(name, total, records, table, body)``.

    The body comes back decompressed; record decoding — scalar
    (:func:`loads_trace_binary`) or columnar
    (:func:`decode_trace_columns`) — is the caller's half of the work.
    """
    view = memoryview(data)
    if bytes(view[: len(BINARY_MAGIC)]) != BINARY_MAGIC:
        raise TraceError("not a binary repro trace: bad magic")
    offset = len(BINARY_MAGIC)
    version, offset = decode_uvarint(view, offset)
    if version != BINARY_FORMAT_VERSION:
        raise TraceError(f"unsupported binary trace version v{version}")
    flags, offset = decode_uvarint(view, offset)
    name_length, offset = decode_uvarint(view, offset)
    if offset + name_length > len(view):
        raise TraceError("truncated binary trace: name overruns the data")
    name = unquote(bytes(view[offset : offset + name_length]).decode("ascii"))
    offset += name_length
    total, offset = decode_uvarint(view, offset)
    expected_records, offset = decode_uvarint(view, offset)
    opcode_count, offset = decode_uvarint(view, offset)
    table: list[Opcode] = []
    for _ in range(opcode_count):
        length, offset = decode_uvarint(view, offset)
        if offset + length > len(view):
            raise TraceError("truncated binary trace: opcode table overruns the data")
        mnemonic = bytes(view[offset : offset + length]).decode("ascii")
        offset += length
        try:
            table.append(Opcode(mnemonic))
        except ValueError as exc:
            raise TraceError(f"unknown opcode {mnemonic!r} in binary trace table") from exc
    body_length, offset = decode_uvarint(view, offset)
    if offset + body_length > len(view):
        raise TraceError(
            f"truncated binary trace: body declares {body_length} bytes, "
            f"{len(view) - offset} available"
        )
    body: bytes | memoryview = view[offset : offset + body_length]
    if flags & _FLAG_ZLIB_BODY:
        try:
            body = zlib.decompress(bytes(body))
        except zlib.error as exc:
            raise TraceError("corrupt binary trace: body fails to decompress") from exc
    return name, total, expected_records, table, bytes(body)


def loads_trace_binary(data: bytes) -> ValueTrace:
    """Parse a trace from bytes produced by :func:`dumps_trace_binary`.

    Raises :class:`TraceError` on a bad magic, an unsupported version, a
    truncated body or a record-count mismatch — the cache treats any of
    those as a miss rather than a failure.
    """
    name, total, expected_records, table, body = _parse_binary_container(data)

    # One record is four varints; the decode loop is the hot path of every
    # warm cache read, so the varint reader is inlined rather than calling
    # _decode_svarint twelve-million times on a long trace.
    pairs = [(opcode, category_of(opcode)) for opcode in table]
    records: list[TraceRecord] = []
    append = records.append
    data = body
    position = 0
    serial = 0
    pc = 0
    try:
        for _ in range(expected_records):
            raw = data[position]
            position += 1
            if raw & 0x80:
                raw &= 0x7F
                shift = 7
                while True:
                    byte = data[position]
                    position += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
            serial += (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)

            raw = data[position]
            position += 1
            if raw & 0x80:
                raw &= 0x7F
                shift = 7
                while True:
                    byte = data[position]
                    position += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
            pc += (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)

            raw = data[position]
            position += 1
            if raw & 0x80:
                raw &= 0x7F
                shift = 7
                while True:
                    byte = data[position]
                    position += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
            opcode, category = pairs[raw]

            raw = data[position]
            position += 1
            if raw & 0x80:
                raw &= 0x7F
                shift = 7
                while True:
                    byte = data[position]
                    position += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
            append(
                TraceRecord(
                    serial=serial,
                    pc=pc,
                    opcode=opcode,
                    category=category,
                    value=(raw >> 1) if not raw & 1 else -((raw + 1) >> 1),
                )
            )
    except IndexError as exc:
        # data[position] fails only once position has reached the end of
        # the body; a pairs[raw] failure mid-body is a bad opcode index.
        if position < len(data):
            raise TraceError(
                f"corrupt binary trace: invalid opcode index in record {len(records) + 1}"
            ) from exc
        raise TraceError(
            f"corrupt binary trace: body ends after {len(records)} of "
            f"{expected_records} records"
        ) from exc
    if position != len(data):
        raise TraceError(
            f"corrupt binary trace: {len(body) - position} trailing bytes after "
            f"{expected_records} records"
        )
    trace = ValueTrace(name, records)
    trace.set_total_dynamic_instructions(total)
    return trace


def load_trace_binary(source: BinaryIO) -> ValueTrace:
    """Read a trace previously written by :func:`dump_trace_binary`."""
    return loads_trace_binary(source.read())


# --------------------------------------------------------------------------- #
# Columnar decode (the vectorized kernel's input representation)
# --------------------------------------------------------------------------- #
class TraceColumns:
    """A trace as parallel numpy columns instead of ``TraceRecord`` objects.

    ``pcs``/``values``/``serials`` are ``int64`` arrays in program order;
    ``opcode_codes`` indexes ``opcodes`` (the file's embedded table) and
    ``category_codes`` indexes ``categories`` (the distinct categories of
    that table, in table order).  ``scratch`` is a plain dict where the
    vectorized kernel memoises derived structures (e.g. the per-PC
    grouping) so they are computed once per trace, not once per predictor.
    """

    def __init__(self, name, total_dynamic_instructions, serials, pcs, values,
                 opcode_codes, opcodes, category_codes, categories) -> None:
        self.name = name
        self.total_dynamic_instructions = total_dynamic_instructions
        self.serials = serials
        self.pcs = pcs
        self.values = values
        self.opcode_codes = opcode_codes
        self.opcodes = opcodes
        self.category_codes = category_codes
        self.categories = categories
        self.scratch: dict = {}

    def __len__(self) -> int:
        return len(self.values)


def _category_mapping(table: list[Opcode] | tuple[Opcode, ...]):
    """Distinct categories of an opcode table plus the per-opcode code map."""
    categories: list = []
    op_to_cat: list[int] = []
    for opcode in table:
        category = category_of(opcode)
        if category not in categories:
            categories.append(category)
        op_to_cat.append(categories.index(category))
    return tuple(categories), op_to_cat


def _unzigzag_array(np, raw):
    """Vectorised :func:`_unzigzag` over a ``uint64`` array, as ``int64``."""
    mask = (raw & np.uint64(1)) * np.uint64(0xFFFFFFFFFFFFFFFF)
    return ((raw >> np.uint64(1)) ^ mask).view(np.int64)


def _prefix_sum_int64(np, deltas):
    """Cumulative sum of ``int64`` deltas, or ``None`` if it could overflow.

    The scalar decoder accumulates in arbitrary-precision Python ints; the
    columnar path must refuse (and fall back) rather than silently wrap.
    A float64 shadow sum bounds the true magnitude closely enough to gate
    on half the int64 range.
    """
    shadow = np.cumsum(deltas.astype(np.float64))
    if shadow.size and np.abs(shadow).max() >= float(2**62):
        return None
    return np.cumsum(deltas)


def decode_trace_columns(data: bytes) -> TraceColumns | None:
    """Decode v3 binary bytes straight into columns, skipping records.

    Returns ``None`` when the fast path does not apply — numpy missing, or
    a field outside the 64-bit domain the vectorized kernel computes in
    (the scalar decoder handles those with arbitrary-precision ints).
    Raises :class:`TraceError` on corrupt data, like
    :func:`loads_trace_binary`.
    """
    try:
        import numpy as np
    except ImportError:
        return None
    name, total, expected_records, table, body = _parse_binary_container(data)
    categories, op_to_cat = _category_mapping(table)
    if expected_records == 0:
        if body:
            raise TraceError(
                f"corrupt binary trace: {len(body)} trailing bytes after 0 records"
            )
        empty = np.zeros(0, dtype=np.int64)
        columns = TraceColumns(
            name, total, empty, empty, empty.copy(), empty.copy(),
            tuple(table), empty.copy(), categories,
        )
        return columns

    buf = np.frombuffer(body, dtype=np.uint8)
    if buf.size == 0:
        raise TraceError(
            f"corrupt binary trace: body ends after 0 of {expected_records} records"
        )
    is_term = (buf & 0x80) == 0
    if not is_term[-1]:
        raise TraceError("truncated varint")
    n_varints = int(is_term.sum())
    if n_varints != 4 * expected_records:
        raise TraceError(
            f"corrupt binary trace: body holds {n_varints} varints, "
            f"{4 * expected_records} expected"
        )
    starts_mask = np.empty(buf.size, dtype=bool)
    starts_mask[0] = True
    starts_mask[1:] = is_term[:-1]
    varint_id = np.cumsum(starts_mask) - 1
    starts = np.flatnonzero(starts_mask)
    pos = np.arange(buf.size) - starts[varint_id]
    if int(pos.max()) > 9 or bool(np.any(buf[pos == 9] > 0x01)):
        # A varint longer than a 64-bit zigzag value needs: fall back to
        # the arbitrary-precision scalar decoder.
        return None
    terms = (buf & np.uint8(0x7F)).astype(np.uint64) << (7 * pos).astype(np.uint64)
    raw = np.add.reduceat(terms, starts).reshape(expected_records, 4)

    opcode_codes = raw[:, 2]
    if int(opcode_codes.max()) >= len(table):
        bad = int(np.argmax(opcode_codes >= np.uint64(len(table))))
        raise TraceError(f"corrupt binary trace: invalid opcode index in record {bad + 1}")
    opcode_codes = opcode_codes.astype(np.int64)
    serials = _prefix_sum_int64(np, _unzigzag_array(np, raw[:, 0].copy()))
    pcs = _prefix_sum_int64(np, _unzigzag_array(np, raw[:, 1].copy()))
    if serials is None or pcs is None:
        return None
    values = _unzigzag_array(np, raw[:, 3].copy())
    category_codes = np.asarray(op_to_cat, dtype=np.int64)[opcode_codes]
    return TraceColumns(
        name, total, serials, pcs, values, opcode_codes, tuple(table),
        category_codes, categories,
    )


def trace_columns(trace: ValueTrace) -> TraceColumns | None:
    """Columnar view of an in-memory :class:`ValueTrace`, memoised on it.

    Returns ``None`` when numpy is unavailable or any field falls outside
    int64 (the vectorized kernel then uses the scalar path).
    """
    cached = getattr(trace, "_columns", False)
    if cached is not False:
        return cached
    try:
        import numpy as np
    except ImportError:
        return None
    records = trace.records
    count = len(records)
    index = {opcode: code for code, opcode in enumerate(_OPCODE_ORDER)}
    categories, op_to_cat = _category_mapping(_OPCODE_ORDER)
    try:
        serials = np.fromiter((r.serial for r in records), dtype=np.int64, count=count)
        pcs = np.fromiter((r.pc for r in records), dtype=np.int64, count=count)
        values = np.fromiter((r.value for r in records), dtype=np.int64, count=count)
    except OverflowError:
        trace._columns = None
        return None
    opcode_codes = np.fromiter(
        (index[r.opcode] for r in records), dtype=np.int64, count=count
    )
    category_codes = np.asarray(op_to_cat, dtype=np.int64)[opcode_codes]
    columns = TraceColumns(
        trace.name, trace.total_dynamic_instructions, serials, pcs, values,
        opcode_codes, _OPCODE_ORDER, category_codes, categories,
    )
    trace._columns = columns
    return columns


# --------------------------------------------------------------------------- #
# Format-aware file helpers
# --------------------------------------------------------------------------- #
def save_trace_file(
    trace: ValueTrace,
    path: str | Path,
    format: str = "text",
    compress: bool = False,
) -> None:
    """Serialise ``trace`` to ``path`` as ``"text"`` (v2) or ``"binary"`` (v3).

    ``compress`` only applies to the binary format; the text form is the
    canonical digest encoding and stays uncompressed.
    """
    if format == "text":
        with open(path, "w", encoding="utf-8") as handle:
            dump_trace(trace, handle)
    elif format == "binary":
        with open(path, "wb") as handle:
            dump_trace_binary(trace, handle, compress=compress)
    else:
        raise TraceError(f"unknown trace format {format!r} (expected 'text' or 'binary')")


def load_trace_file(path: str | Path) -> ValueTrace:
    """Load a trace from ``path``, auto-detecting text vs binary by magic."""
    with open(path, "rb") as handle:
        data = handle.read()
    if data.startswith(BINARY_MAGIC):
        return loads_trace_binary(data)
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceError("not a repro trace: neither binary magic nor UTF-8 text") from exc
    return loads_trace(text)
