"""Compact text (de)serialisation of value traces.

Traces are stored as a small header followed by one line per record:
``serial pc opcode value``.  Categories are recomputed from the opcode on
load, so the format stays minimal and the Table 3 mapping remains the single
source of truth.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO
from urllib.parse import quote, unquote

from repro.errors import TraceError
from repro.isa.opcodes import Opcode, category_of
from repro.trace.record import TraceRecord
from repro.trace.stream import ValueTrace

#: v1 wrote the name verbatim (corrupting it if it contained spaces);
#: v2 percent-encodes it.  The loader keys decoding off the header version
#: so v1 files — whose names may contain literal ``%`` — stay readable.
_FORMAT_VERSION = 2
_HEADER_PREFIX = "#repro-trace"


def dump_trace(trace: ValueTrace, destination: TextIO) -> None:
    """Write ``trace`` to an open text stream.

    The name is percent-encoded so that whitespace (or ``=``) in a trace
    name cannot corrupt the space-separated ``key=value`` header fields.
    """
    destination.write(
        f"{_HEADER_PREFIX} v{_FORMAT_VERSION} name={quote(trace.name, safe='')} "
        f"total={trace.total_dynamic_instructions} records={len(trace)}\n"
    )
    for record in trace:
        destination.write(f"{record.serial} {record.pc} {record.opcode.value} {record.value}\n")


def dumps_trace(trace: ValueTrace) -> str:
    """Return the serialised form of ``trace`` as a string."""
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def load_trace(source: TextIO) -> ValueTrace:
    """Read a trace previously written by :func:`dump_trace`."""
    header = source.readline()
    if not header.startswith(_HEADER_PREFIX):
        raise TraceError("not a repro trace: missing header line")
    tokens = header.strip().split()
    version = 1
    for token in tokens[1:]:
        if len(token) > 1 and token[0] == "v" and token[1:].isdigit():
            version = int(token[1:])
            break
    fields = dict(part.split("=", 1) for part in tokens if "=" in part)
    name = fields.get("name", "trace")
    if version >= 2:
        name = unquote(name)
    try:
        total = int(fields["total"])
        expected_records = int(fields["records"])
    except (KeyError, ValueError) as exc:
        raise TraceError(f"malformed trace header: {header!r}") from exc

    records: list[TraceRecord] = []
    for line_number, line in enumerate(source, start=2):
        line = line.strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 4:
            raise TraceError(f"malformed trace record on line {line_number}: {line!r}")
        try:
            serial, pc, value = int(parts[0]), int(parts[1]), int(parts[3])
            opcode = Opcode(parts[2])
        except ValueError as exc:
            raise TraceError(f"malformed trace record on line {line_number}: {line!r}") from exc
        records.append(
            TraceRecord(
                serial=serial,
                pc=pc,
                opcode=opcode,
                category=category_of(opcode),
                value=value,
            )
        )
    if len(records) != expected_records:
        raise TraceError(
            f"trace record count mismatch: header says {expected_records}, found {len(records)}"
        )
    trace = ValueTrace(name, records)
    trace.set_total_dynamic_instructions(total)
    return trace


def loads_trace(text: str) -> ValueTrace:
    """Parse a trace from a string produced by :func:`dumps_trace`."""
    return load_trace(io.StringIO(text))


def save_trace_file(trace: ValueTrace, path: str | Path) -> None:
    """Serialise ``trace`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        dump_trace(trace, handle)


def load_trace_file(path: str | Path) -> ValueTrace:
    """Load a trace previously saved with :func:`save_trace_file`."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_trace(handle)
