"""Construct value traces directly from value sequences.

Tests, micro-experiments (Figures 1 and 2 of the paper) and the ablation
benchmarks need traces with precisely controlled value sequences per static
instruction; these helpers build them without going through the ISA
substrate.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import TraceError
from repro.isa.opcodes import Category, Opcode, category_of, is_predicted_opcode
from repro.trace.record import TraceRecord
from repro.trace.stream import ValueTrace

#: Default opcode per category used when materialising synthetic records.
_REPRESENTATIVE_OPCODE: dict[Category, Opcode] = {
    Category.ADDSUB: Opcode.ADD,
    Category.LOADS: Opcode.LW,
    Category.LOGIC: Opcode.AND,
    Category.SHIFT: Opcode.SLL,
    Category.SET: Opcode.SLT,
    Category.MULTDIV: Opcode.MULT,
    Category.LUI: Opcode.LUI,
    Category.OTHER: Opcode.MOV,
}


def representative_opcode(category: Category) -> Opcode:
    """Return a register-writing opcode belonging to ``category``."""
    try:
        return _REPRESENTATIVE_OPCODE[category]
    except KeyError as exc:
        raise TraceError(f"category {category} has no predicted instructions") from exc


def trace_from_values(
    values: Sequence[int],
    pc: int = 0,
    opcode: Opcode = Opcode.ADD,
    name: str = "synthetic",
) -> ValueTrace:
    """Build a trace in which one static instruction produces ``values``."""
    if not is_predicted_opcode(opcode):
        raise TraceError(f"opcode {opcode} is not a predicted instruction")
    category = category_of(opcode)
    records = [
        TraceRecord(serial=i, pc=pc, opcode=opcode, category=category, value=int(v))
        for i, v in enumerate(values)
    ]
    return ValueTrace(name, records)


def trace_from_streams(
    streams: Mapping[int, Sequence[int]],
    opcodes: Mapping[int, Opcode] | None = None,
    name: str = "synthetic",
) -> ValueTrace:
    """Build a trace by round-robin interleaving per-PC value streams.

    ``streams`` maps a static PC to the ordered values it produces.  Records
    are interleaved one value per PC per round, which mimics a loop body
    containing all the static instructions.
    """
    if not streams:
        raise TraceError("streams must not be empty")
    opcodes = dict(opcodes or {})
    iterators = {pc: list(values) for pc, values in streams.items()}
    longest = max(len(values) for values in iterators.values())
    records: list[TraceRecord] = []
    serial = 0
    for round_index in range(longest):
        for pc in sorted(iterators):
            values = iterators[pc]
            if round_index >= len(values):
                continue
            opcode = opcodes.get(pc, Opcode.ADD)
            if not is_predicted_opcode(opcode):
                raise TraceError(f"opcode {opcode} is not a predicted instruction")
            records.append(
                TraceRecord(
                    serial=serial,
                    pc=pc,
                    opcode=opcode,
                    category=category_of(opcode),
                    value=int(values[round_index]),
                )
            )
            serial += 1
    return ValueTrace(name, records)


def interleave_traces(traces: Iterable[ValueTrace], name: str = "interleaved") -> ValueTrace:
    """Concatenate traces record-by-record in round-robin order.

    Useful for composing micro-traces with controlled per-PC behaviour.  PCs
    are offset per input trace so distinct traces never alias in predictor
    tables.
    """
    traces = list(traces)
    if not traces:
        raise TraceError("cannot interleave zero traces")
    offsets = {}
    offset = 0
    for trace in traces:
        offsets[id(trace)] = offset
        max_pc = max((record.pc for record in trace), default=0)
        offset += max_pc + 4
    records: list[TraceRecord] = []
    serial = 0
    cursors = [0] * len(traces)
    remaining = sum(len(trace) for trace in traces)
    while remaining:
        for trace_index, trace in enumerate(traces):
            cursor = cursors[trace_index]
            if cursor >= len(trace):
                continue
            record = trace.records[cursor]
            records.append(
                TraceRecord(
                    serial=serial,
                    pc=record.pc + offsets[id(trace)],
                    opcode=record.opcode,
                    category=record.category,
                    value=record.value,
                )
            )
            serial += 1
            cursors[trace_index] += 1
            remaining -= 1
    return ValueTrace(name, records)
