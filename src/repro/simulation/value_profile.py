"""Unique-value profiles of static instructions (Figure 10 of the paper).

For every static instruction the number of distinct values it produces is
counted and bucketed into powers of four (1, 4, 16, ..., 65536, >65536).
Two views are reported: the fraction of *static* instructions falling in each
bucket, and the fraction of *dynamic* instructions issued by static
instructions in each bucket.  The paper uses this to argue that modest table
capacities suffice for context-based prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.isa.opcodes import Category, REPORTED_CATEGORIES
from repro.simulation.metrics import arithmetic_mean
from repro.trace.stream import ValueTrace

#: Bucket upper bounds used on the Figure 10 y-axis legend.
VALUE_BUCKETS: tuple[int, ...] = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)

#: Label used for the overflow bucket.
OVERFLOW_LABEL = ">65536"


def bucket_labels() -> tuple[str, ...]:
    """Labels for every bucket, smallest first, ending with the overflow."""
    return tuple(str(bound) for bound in VALUE_BUCKETS) + (OVERFLOW_LABEL,)


def bucket_for(unique_values: int) -> str:
    """Return the label of the bucket holding ``unique_values``."""
    for bound in VALUE_BUCKETS:
        if unique_values <= bound:
            return str(bound)
    return OVERFLOW_LABEL


@dataclass
class ValueProfile:
    """Static and dynamic unique-value bucket distributions (percentages)."""

    #: static_percent["All" or category value][bucket label] -> % of static PCs
    static_percent: dict[str, dict[str, float]]
    #: dynamic_percent["All" or category value][bucket label] -> % of dynamic instrs
    dynamic_percent: dict[str, dict[str, float]]

    def static_fraction_single_value(self, group: str = "All") -> float:
        """Percentage of static instructions generating exactly one value."""
        return self.static_percent[group]["1"]

    def static_fraction_up_to(self, bound: int, group: str = "All") -> float:
        """Percentage of static instructions generating at most ``bound`` values."""
        total = 0.0
        for label in bucket_labels():
            if label != OVERFLOW_LABEL and int(label) <= bound:
                total += self.static_percent[group][label]
        return total

    def dynamic_fraction_up_to(self, bound: int, group: str = "All") -> float:
        """Percentage of dynamic instructions from static PCs with <= ``bound`` values."""
        total = 0.0
        for label in bucket_labels():
            if label != OVERFLOW_LABEL and int(label) <= bound:
                total += self.dynamic_percent[group][label]
        return total


def _empty_distribution() -> dict[str, float]:
    return {label: 0.0 for label in bucket_labels()}


def value_profile(
    trace: ValueTrace, categories: tuple[Category, ...] = REPORTED_CATEGORIES
) -> ValueProfile:
    """Profile unique-value counts for one benchmark's trace."""
    unique_values: dict[int, set[int]] = {}
    dynamic_count: dict[int, int] = {}
    pc_category: dict[int, Category] = {}
    for record in trace.records:
        unique_values.setdefault(record.pc, set()).add(record.value)
        dynamic_count[record.pc] = dynamic_count.get(record.pc, 0) + 1
        pc_category.setdefault(record.pc, record.category)

    groups = ["All"] + [category.value for category in categories]
    static_counts = {group: _empty_distribution() for group in groups}
    dynamic_counts = {group: _empty_distribution() for group in groups}
    static_totals = {group: 0 for group in groups}
    dynamic_totals = {group: 0 for group in groups}

    for pc, values in unique_values.items():
        label = bucket_for(len(values))
        weight = dynamic_count[pc]
        group_names = ["All"]
        category = pc_category[pc]
        if category in categories:
            group_names.append(category.value)
        for group in group_names:
            static_counts[group][label] += 1
            static_totals[group] += 1
            dynamic_counts[group][label] += weight
            dynamic_totals[group] += weight

    static_percent = {
        group: {
            label: (100.0 * count / static_totals[group] if static_totals[group] else 0.0)
            for label, count in static_counts[group].items()
        }
        for group in groups
    }
    dynamic_percent = {
        group: {
            label: (100.0 * count / dynamic_totals[group] if dynamic_totals[group] else 0.0)
            for label, count in dynamic_counts[group].items()
        }
        for group in groups
    }
    return ValueProfile(static_percent=static_percent, dynamic_percent=dynamic_percent)


def average_value_profiles(profiles: Sequence[ValueProfile]) -> ValueProfile:
    """Average per-benchmark profiles with the arithmetic mean."""
    if not profiles:
        raise ValueError("cannot average zero value profiles")
    groups = profiles[0].static_percent.keys()
    static_percent = {
        group: {
            label: arithmetic_mean(profile.static_percent[group][label] for profile in profiles)
            for label in bucket_labels()
        }
        for group in groups
    }
    dynamic_percent = {
        group: {
            label: arithmetic_mean(profile.dynamic_percent[group][label] for profile in profiles)
            for label in bucket_labels()
        }
        for group in groups
    }
    return ValueProfile(static_percent=static_percent, dynamic_percent=dynamic_percent)
