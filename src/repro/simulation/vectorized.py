"""Columnar (numpy) simulation kernel — batched, bit-identical to scalar.

The scalar loop in :mod:`repro.simulation.simulator` is the golden
reference: one :meth:`~repro.core.base.ValuePredictor.observe` call per
record.  This module re-expresses the paper's predictor table walks as
whole-trace array passes over the columnar form of a trace
(:class:`repro.trace.io.TraceColumns`):

* **last value / stride / two-delta** become segmented scans over per-PC
  groups — sort by PC (stable, so program order survives within a group),
  then shifted compares and a forward-fill give every record the table
  state its scalar ``predict`` would have seen;
* **FCM** becomes a hash-then-scatter pass: records are grouped by their
  exact (PC, context) key, occurrence counts come from a running count of
  (group, value) pairs, and the scalar tie-break of
  :func:`repro.core.fcm.select_maximum_count` — most-recent wins a tie,
  otherwise the first-inserted of the maximal set — is reproduced with a
  segmented cumulative maximum over packed ``count * R + (R - 1 - rank)``
  keys, where ``rank`` is the value's insertion rank within its group;
* **blended FCM with lazy exclusion** runs the same FCM pass top-down over
  orders ``k..0``: at each order the candidate stream is exactly the
  records not matched at a higher order (which is precisely the set that
  updates that order's table under lazy exclusion), and records that find
  a previous same-context candidate are matched there.

Every configuration the default campaign simulates is covered; exotic
configurations (hysteresis and saturating-counter variants, hybrids,
full-update blending) fall back to the scalar loop, so results are
identical for *every* registered predictor either way.  Cache keys never
include the kernel: both kernels produce byte-identical entries.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Mapping

from repro.errors import SimulationError

if TYPE_CHECKING:  # imported lazily at runtime to avoid cycles
    from repro.simulation.simulator import PredictorShard, SimulationResult
    from repro.trace.io import TraceColumns

#: Valid values of the ``kernel`` parameter / ``--kernel`` flag.
KERNELS = ("scalar", "vector", "auto")

#: Environment variable consulted when no kernel is passed explicitly.
KERNEL_ENV = "REPRO_KERNEL"

_NUMPY_UNSET = object()
_numpy_module = _NUMPY_UNSET


def numpy_or_none():
    """The numpy module, or ``None`` when it is not importable (memoised)."""
    global _numpy_module
    if _numpy_module is _NUMPY_UNSET:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
    return _numpy_module


def resolve_kernel(kernel: str | None) -> str:
    """Resolve a kernel request to ``"scalar"`` or ``"vector"``.

    ``None`` consults :data:`KERNEL_ENV` and defaults to ``"scalar"``;
    ``"auto"`` selects ``"vector"`` exactly when numpy is importable; an
    explicit (or environment-forced) ``"vector"`` without numpy raises a
    clean :class:`SimulationError` instead of an ``ImportError`` deep in
    a worker.
    """
    source = "kernel"
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV) or "scalar"
        source = f"{KERNEL_ENV} environment variable"
    if kernel not in KERNELS:
        raise SimulationError(
            f"unknown simulation kernel {kernel!r} (from {source}); "
            f"expected one of {', '.join(KERNELS)}"
        )
    if kernel == "auto":
        return "vector" if numpy_or_none() is not None else "scalar"
    if kernel == "vector" and numpy_or_none() is None:
        raise SimulationError(
            "the 'vector' simulation kernel requires numpy, which is not "
            "importable here; use '--kernel auto' to fall back automatically"
        )
    return kernel


class _VectorizationUnsupported(Exception):
    """Internal: a size guard tripped; the caller retries on the scalar path."""


# --------------------------------------------------------------------------- #
# Per-PC grouping (shared by every plan over one trace)
# --------------------------------------------------------------------------- #
class _Grouping:
    """Stable per-PC grouping of a trace's columns.

    ``order`` sorts records by PC (stable), so within each group the
    records keep program order — the axis every predictor table walks.
    ``gid`` is a dense group id per sorted position, ``t`` the occurrence
    index of the record within its PC's stream, ``vs`` the values in the
    sorted domain.
    """

    def __init__(self, np, columns) -> None:
        n = len(columns)
        self.n = n
        self.order = np.argsort(columns.pcs, kind="stable")
        self.vs = columns.values[self.order]
        sorted_pcs = columns.pcs[self.order]
        new_group = np.empty(n, dtype=bool)
        if n:
            new_group[0] = True
            new_group[1:] = sorted_pcs[1:] != sorted_pcs[:-1]
        self.gid = np.cumsum(new_group) - 1
        starts = np.flatnonzero(new_group)
        self.t = np.arange(n) - (starts[self.gid] if n else 0)


def _grouping(np, columns) -> _Grouping:
    grouping = columns.scratch.get("grouping")
    if grouping is None:
        grouping = _Grouping(np, columns)
        columns.scratch["grouping"] = grouping
    return grouping


def _factorize_pairs(np, a, b):
    """Dense ids for the distinct ``(a[i], b[i])`` pairs (order-arbitrary)."""
    if len(a) == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.lexsort((b, a))
    a_sorted = a[order]
    b_sorted = b[order]
    boundary = np.empty(len(a), dtype=bool)
    boundary[0] = True
    boundary[1:] = (a_sorted[1:] != a_sorted[:-1]) | (b_sorted[1:] != b_sorted[:-1])
    ids = np.empty(len(a), dtype=np.int64)
    ids[order] = np.cumsum(boundary) - 1
    return ids


def _segmented_cummax(np, gid, keys, key_bound: int):
    """Running maximum of ``keys`` within each contiguous ascending group."""
    if len(gid) and int(gid[-1] + 1) * key_bound >= 2**62:
        raise _VectorizationUnsupported("packed cummax key would overflow int64")
    packed = gid * np.int64(key_bound) + keys
    return np.maximum.accumulate(packed) - gid * np.int64(key_bound)


# --------------------------------------------------------------------------- #
# The FCM count/argmax machinery (shared by single-order and blended plans)
# --------------------------------------------------------------------------- #
def _fcm_stream(np, group_ids, y):
    """Predict each element of a (group, value) stream from its group's past.

    The stream must list observations in time order.  For each element
    returns ``has`` (a previous same-group element exists, i.e. the
    context has non-empty counts) and ``pred`` (the value
    :func:`~repro.core.fcm.select_maximum_count` would pick from the
    counts of the previous same-group elements, with the immediately
    preceding one as the recency tie-breaker).
    """
    m = len(y)
    if m == 0:
        return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64)
    order = np.argsort(group_ids, kind="stable")
    y2 = y[order]
    g_sorted = group_ids[order]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    new_group[1:] = g_sorted[1:] != g_sorted[:-1]
    gid = np.cumsum(new_group) - 1
    u = np.arange(m) - np.flatnonzero(new_group)[gid]

    # Running count c of each (group, value) pair at each occurrence.
    pid = _factorize_pairs(np, gid, y2)
    pair_order = np.argsort(pid, kind="stable")
    pid_sorted = pid[pair_order]
    pair_start = np.empty(m, dtype=bool)
    pair_start[0] = True
    pair_start[1:] = pid_sorted[1:] != pid_sorted[:-1]
    counts = np.empty(m, dtype=np.int64)
    counts[pair_order] = (
        np.arange(m) - np.flatnonzero(pair_start)[np.cumsum(pair_start) - 1] + 1
    )

    # Running maximum count per group.
    count_bound = int(counts.max()) + 1
    running_max = _segmented_cummax(np, gid, counts, count_bound)

    # Insertion rank of each pair within its group, plus the group-local
    # table decoding (group, rank) back to the pair's value.
    pair_count = int(pid.max()) + 1
    first_pos = np.empty(pair_count, dtype=np.int64)
    first_pos[pid_sorted[pair_start]] = pair_order[pair_start]
    pair_gid = gid[first_pos]
    rank_order = np.lexsort((first_pos, pair_gid))
    ranked_gid = pair_gid[rank_order]
    rank_start = np.empty(pair_count, dtype=bool)
    rank_start[0] = True
    rank_start[1:] = ranked_gid[1:] != ranked_gid[:-1]
    # Every group holds at least one pair and pair_gid is dense, so the
    # group-change positions double as per-group base offsets.
    group_base = np.flatnonzero(rank_start)
    rank_sorted = np.arange(pair_count) - group_base[np.cumsum(rank_start) - 1]
    rank_of_pair = np.empty(pair_count, dtype=np.int64)
    rank_of_pair[rank_order] = rank_sorted
    value_by_rank = y2[first_pos][rank_order]

    # Leader = first-inserted value among the current maximal-count set.
    # Packing count (major) against inverted insertion rank (minor) makes
    # the running key-max decode to exactly that value: a value's latest
    # occurrence carries its full count, so the maximal key belongs to the
    # max-count value with the smallest rank.
    rank_bound = int(rank_of_pair.max()) + 2
    keys = counts * np.int64(rank_bound) + (
        np.int64(rank_bound - 1) - rank_of_pair[pid]
    )
    key_max = _segmented_cummax(np, gid, keys, count_bound * rank_bound)
    leader_rank = np.int64(rank_bound - 1) - (key_max % np.int64(rank_bound))
    leader = value_by_rank[group_base[gid] + leader_rank]

    # The prediction for element p reads the state after element p-1 of
    # its group: recent value, its count, the running max and the leader.
    has = u >= 1
    recent = np.zeros(m, dtype=np.int64)
    prev_count = np.zeros(m, dtype=np.int64)
    prev_max = np.full(m, -1, dtype=np.int64)
    prev_leader = np.zeros(m, dtype=np.int64)
    if m > 1:
        recent[1:] = y2[:-1]
        prev_count[1:] = counts[:-1]
        prev_max[1:] = running_max[:-1]
        prev_leader[1:] = leader[:-1]
    pred = np.where(prev_count == prev_max, recent, prev_leader)

    has_out = np.empty(m, dtype=bool)
    pred_out = np.empty(m, dtype=np.int64)
    has_out[order] = has
    pred_out[order] = pred
    return has_out, pred_out


# --------------------------------------------------------------------------- #
# Per-predictor plans (all operate in the grouping's sorted domain)
# --------------------------------------------------------------------------- #
def _plan_last_value(np, group: _Grouping):
    has = group.t >= 1
    pred = np.zeros(group.n, dtype=np.int64)
    if group.n > 1:
        pred[1:] = group.vs[:-1]
    return has, pred


def _deltas(np, group: _Grouping):
    """64-bit wrapping value deltas within each PC group (uint64 domain)."""
    values = group.vs.view(np.uint64)
    deltas = np.zeros(group.n, dtype=np.uint64)
    if group.n > 1:
        deltas[1:] = values[1:] - values[:-1]
    return deltas


def _stride_predictions(np, group: _Grouping, strides):
    """``last_value + stride`` with 64-bit wrap, given per-position strides."""
    values = group.vs.view(np.uint64)
    pred = np.zeros(group.n, dtype=np.uint64)
    if group.n > 1:
        pred[1:] = values[:-1] + strides[:-1]
    return group.t >= 1, pred.view(np.int64)


def _plan_simple_stride(np, group: _Grouping):
    deltas = _deltas(np, group)
    # Stride state after each update: the latest delta; zero (i.e. plain
    # last-value) while the entry has seen a single value.
    strides = np.where(group.t >= 1, deltas, np.uint64(0))
    return _stride_predictions(np, group, strides)


def _plan_two_delta(np, group: _Grouping):
    deltas = _deltas(np, group)
    prev_deltas = np.zeros(group.n, dtype=np.uint64)
    if group.n > 1:
        prev_deltas[1:] = deltas[:-1]
    # s2 adopts the observed delta on the first delta ever and whenever it
    # repeats the previous one; otherwise it keeps its old value, which a
    # forward-fill of the last adoption point reproduces.  t == 0 rows are
    # adoption points of stride zero so fills never leak across groups.
    adopt = (group.t <= 1) | ((group.t >= 2) & (deltas == prev_deltas))
    source = np.where(group.t >= 1, deltas, np.uint64(0))
    fill = np.maximum.accumulate(np.where(adopt, np.arange(group.n), -1))
    strides = source[fill] if group.n else source
    return _stride_predictions(np, group, strides)


def _plan_fcm(np, group: _Grouping, order: int):
    stream = np.flatnonzero(group.t >= order)
    keys = group.gid[stream]
    for back in range(1, order + 1):
        keys = _factorize_pairs(np, keys, group.vs[stream - back])
    stream_has, stream_pred = _fcm_stream(np, keys, group.vs[stream])
    has = np.zeros(group.n, dtype=bool)
    pred = np.zeros(group.n, dtype=np.int64)
    has[stream] = stream_has
    pred[stream] = stream_pred
    return has, pred


def _plan_blended_fcm(np, group: _Grouping, order: int):
    has = np.zeros(group.n, dtype=bool)
    pred = np.zeros(group.n, dtype=np.int64)
    remaining = np.ones(group.n, dtype=bool)
    # Lazy exclusion, top-down: the records still unmatched at order o that
    # have seen >= o values are exactly the ones that update order o's
    # table, so each round's candidate stream doubles as that order's
    # updater stream; a record matches at the highest order where a
    # previous same-context candidate exists.
    for model_order in range(order, -1, -1):
        candidates = np.flatnonzero(remaining & (group.t >= model_order))
        if candidates.size == 0:
            continue
        keys = group.gid[candidates]
        for back in range(1, model_order + 1):
            keys = _factorize_pairs(np, keys, group.vs[candidates - back])
        stream_has, stream_pred = _fcm_stream(np, keys, group.vs[candidates])
        matched = candidates[stream_has]
        has[matched] = True
        pred[matched] = stream_pred[stream_has]
        remaining[matched] = False
    return has, pred


def vector_plan(predictor_name: str):
    """The vector plan for a registry name, or ``None`` (scalar fallback).

    Detection inspects the *instantiated* configuration, so dynamic names
    and re-bound registry entries select the right plan (or none).
    """
    from repro.core.blending import BlendedFcmPredictor
    from repro.core.fcm import FcmPredictor
    from repro.core.last_value import LastValuePredictor
    from repro.core.registry import create_predictor
    from repro.core.stride import SimpleStridePredictor, TwoDeltaStridePredictor

    predictor = create_predictor(predictor_name)
    kind = type(predictor)
    if kind is LastValuePredictor and predictor.hysteresis == "always":
        return _plan_last_value
    if kind is SimpleStridePredictor:
        return _plan_simple_stride
    if kind is TwoDeltaStridePredictor:
        return _plan_two_delta
    if kind is FcmPredictor and predictor.counter_max is None:
        order = predictor.order
        return lambda np, group: _plan_fcm(np, group, order)
    if (
        kind is BlendedFcmPredictor
        and predictor.counter_max is None
        and predictor.update_policy == "lazy-exclusion"
    ):
        order = predictor.order
        return lambda np, group: _plan_blended_fcm(np, group, order)
    return None


# --------------------------------------------------------------------------- #
# Result assembly — dict insertion orders must match the scalar loop's,
# because cache entries are JSON renderings of these dicts and the two
# kernels must produce byte-identical entries.
# --------------------------------------------------------------------------- #
def _first_occurrence_order(np, keys):
    """Unique keys with counts, ordered by first occurrence in ``keys``."""
    unique, first, counts = np.unique(keys, return_index=True, return_counts=True)
    order = np.argsort(first, kind="stable")
    return unique[order], first[order], counts[order]


def _category_counts(np, columns, codes):
    """Category -> count, keyed in first-occurrence order of ``codes``."""
    unique, _, counts = _first_occurrence_order(np, codes)
    return {
        columns.categories[code]: count
        for code, count in zip(unique.tolist(), counts.tolist())
    }


def _category_totals(np, columns):
    """Per-category record counts — identical for every predictor's shard."""
    totals = columns.scratch.get("category_totals")
    if totals is None:
        totals = _category_counts(np, columns, columns.category_codes)
        columns.scratch["category_totals"] = totals
    return totals


def simulate_shard_vector(columns: "TraceColumns", predictor_name: str):
    """Vectorized :func:`~repro.simulation.simulator.simulate_shard`.

    Returns ``None`` when the predictor has no vector plan or a size guard
    trips — callers then run the scalar reference loop.
    """
    from repro.simulation.simulator import (
        SIMULATION_COUNTER,
        PredictorResult,
        PredictorShard,
    )

    np = numpy_or_none()
    if np is None:
        return None
    plan = vector_plan(predictor_name)
    if plan is None:
        return None
    group = _grouping(np, columns)
    try:
        has_sorted, pred_sorted = plan(np, group)
    except _VectorizationUnsupported:
        return None
    SIMULATION_COUNTER.increment()
    n = group.n
    has = np.empty(n, dtype=bool)
    pred = np.empty(n, dtype=np.int64)
    has[group.order] = has_sorted
    pred[group.order] = pred_sorted
    correct = has & (pred == columns.values)

    correct_pcs, _, correct_counts = _first_occurrence_order(np, columns.pcs[correct])
    result = PredictorResult(
        predictor=predictor_name,
        total=n,
        correct=int(correct.sum()),
        category_total=dict(_category_totals(np, columns)),
        category_correct=_category_counts(np, columns, columns.category_codes[correct]),
        pc_correct=dict(zip(correct_pcs.tolist(), correct_counts.tolist())),
    )
    return PredictorShard(
        result=result,
        correctness=np.packbits(correct, bitorder="little").tobytes(),
        record_count=n,
    )


def merge_shards_vector(
    columns: "TraceColumns", shards: Mapping[str, "PredictorShard"]
) -> "SimulationResult | None":
    """Vectorized :func:`~repro.simulation.simulator.merge_shards`.

    The caller validates shard/record counts first; ``None`` means the
    merge is outside the vector path (no numpy, or more than 62
    predictors, whose joint outcomes no longer pack into one int64 key).
    """
    from repro.simulation.simulator import SimulationResult

    np = numpy_or_none()
    names = tuple(shards)
    if np is None or len(names) > 62:
        return None
    n = len(columns)

    key = np.zeros(n, dtype=np.uint64)
    for position, name in enumerate(names):
        bits = np.unpackbits(
            np.frombuffer(shards[name].correctness, dtype=np.uint8),
            count=n,
            bitorder="little",
        )
        key |= bits.astype(np.uint64) << np.uint64(position)

    width = len(names)

    def outcome_tuple(packed: int) -> tuple[bool, ...]:
        return tuple(bool(packed >> position & 1) for position in range(width))

    def subset_dict(keys) -> dict:
        unique, _, counts = _first_occurrence_order(np, keys)
        return {
            outcome_tuple(packed): count
            for packed, count in zip(unique.tolist(), counts.tolist())
        }

    subset_counts = subset_dict(key)
    subset_by_category: dict = {}
    category_codes, _, _ = _first_occurrence_order(np, columns.category_codes)
    for code in category_codes:
        mask = columns.category_codes == code
        subset_by_category[columns.categories[int(code)]] = subset_dict(key[mask])

    unique_pcs, first_seen, pc_counts = _first_occurrence_order(np, columns.pcs)
    pc_total = dict(zip(unique_pcs.tolist(), pc_counts.tolist()))
    first_codes = columns.category_codes[first_seen].tolist()
    pc_category = {
        pc: columns.categories[code]
        for pc, code in zip(unique_pcs.tolist(), first_codes)
    }
    return SimulationResult(
        trace_name=columns.name,
        predictor_names=names,
        total_records=n,
        results={name: shards[name].result for name in names},
        pc_total=pc_total,
        pc_category=pc_category,
        subset_counts=subset_counts,
        subset_counts_by_category=subset_by_category,
    )
