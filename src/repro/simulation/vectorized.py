"""Columnar (numpy) simulation kernel — batched, bit-identical to scalar.

The scalar loop in :mod:`repro.simulation.simulator` is the golden
reference: one :meth:`~repro.core.base.ValuePredictor.observe` call per
record.  This module re-expresses the paper's predictor table walks as
whole-trace array passes over the columnar form of a trace
(:class:`repro.trace.io.TraceColumns`):

* **last value / stride / two-delta** become segmented scans over per-PC
  groups — sort by PC (stable, so program order survives within a group),
  then shifted compares and a forward-fill give every record the table
  state its scalar ``predict`` would have seen;
* **saturating-counter variants** (``lv-counter``, ``lv-consecutive``,
  ``stride-counter``) are feedback state machines, so they run in
  *lockstep*: step ``k`` processes the ``k``-th record of every PC group
  at once, advancing one small state vector per group.  Total elementwise
  work stays O(n) because the active set shrinks with depth;
* **FCM** becomes a hash-then-scatter pass: records are grouped by their
  exact (PC, context) key, occurrence counts come from a running count of
  (group, value) pairs, and the scalar tie-break of
  :func:`repro.core.fcm.select_maximum_count` — most-recent wins a tie,
  otherwise the first-inserted of the maximal set — is reproduced with a
  segmented cumulative maximum over packed ``count * R + (R - 1 - rank)``
  keys, where ``rank`` is the value's insertion rank within its group.
  The ``counter_max`` halve-on-saturation variant and snapshot-seeded
  counts use the same pair/rank tables driven in lockstep;
* **blended FCM** runs the FCM pass top-down over orders ``k..0``.  Under
  lazy exclusion each order's candidate stream is exactly the records not
  matched at a higher order (which is precisely the set that updates that
  order's table); under full update every gated record feeds every order
  and a record keeps the highest-order match;
* **hybrids** compose their components' plans and vectorize the chooser:
  ``PcChooser`` scores are a segmented prefix scan over the saturating-add
  monoid ``y -> min(C, max(B, y + A))``, ``CategoryChooser`` is a static
  per-category gather, and ``OracleChooser`` is an OR over component
  correctness.

Every registered configuration (and every dynamic ``fcmN`` /
``fcmN-single`` / ``fcmN-small`` / ``fcmN-full`` spelling) has a plan.
Plans can also start from a restored predictor snapshot
(:mod:`repro.simulation.state`), which lets ``simulate-window`` shards of
an intra-trace sharded run execute on the vector kernel: snapshot tables
are folded in either as seeded per-group state vectors or as virtual
prefix records that drive a fresh scan into exactly the snapshot state.
Cache keys never include the kernel: both kernels produce byte-identical
entries, and the differential parity harness
(``tests/simulation/test_kernel_parity.py``) pins that equivalence.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Mapping

from repro.errors import SimulationError
from repro.isa.registers import wrap_value

if TYPE_CHECKING:  # imported lazily at runtime to avoid cycles
    from repro.simulation.simulator import PredictorShard, SimulationResult
    from repro.trace.io import TraceColumns

#: Valid values of the ``kernel`` parameter / ``--kernel`` flag.
KERNELS = ("scalar", "vector", "auto")

#: Environment variable consulted when no kernel is passed explicitly.
KERNEL_ENV = "REPRO_KERNEL"

_NUMPY_UNSET = object()
_numpy_module = _NUMPY_UNSET


def numpy_or_none():
    """The numpy module, or ``None`` when it is not importable (memoised)."""
    global _numpy_module
    if _numpy_module is _NUMPY_UNSET:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
    return _numpy_module


def resolve_kernel(kernel: str | None) -> str:
    """Resolve a kernel request to ``"scalar"`` or ``"vector"``.

    ``None`` consults :data:`KERNEL_ENV` and defaults to ``"scalar"``;
    ``"auto"`` selects ``"vector"`` exactly when numpy is importable; an
    explicit (or environment-forced) ``"vector"`` without numpy raises a
    clean :class:`SimulationError` instead of an ``ImportError`` deep in
    a worker.
    """
    source = "kernel"
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV) or "scalar"
        source = f"{KERNEL_ENV} environment variable"
    if kernel not in KERNELS:
        raise SimulationError(
            f"unknown simulation kernel {kernel!r} (from {source}); "
            f"expected one of {', '.join(KERNELS)}"
        )
    if kernel == "auto":
        return "vector" if numpy_or_none() is not None else "scalar"
    if kernel == "vector" and numpy_or_none() is None:
        raise SimulationError(
            "the 'vector' simulation kernel requires numpy, which is not "
            "importable here; use '--kernel auto' to fall back automatically"
        )
    return kernel


class _VectorizationUnsupported(Exception):
    """Internal: a size guard tripped; the caller retries on the scalar path."""


# --------------------------------------------------------------------------- #
# Per-PC grouping (shared by every plan over one trace)
# --------------------------------------------------------------------------- #
class _Grouping:
    """Stable per-PC grouping of a trace's columns.

    ``order`` sorts records by PC (stable, so within each group the
    records keep program order — the axis every predictor table walks).
    ``gid`` is a dense group id per sorted position, ``t`` the occurrence
    index of the record within its PC's stream, ``vs`` the values in the
    sorted domain.  ``starts``/``sizes``/``unique_pcs`` describe the
    groups themselves: the lockstep plans index records as
    ``starts[g] + k`` and snapshot tables are joined on ``unique_pcs``
    (ascending, so ``searchsorted`` applies).
    """

    def __init__(self, np, columns) -> None:
        n = len(columns)
        self.n = n
        self.order = np.argsort(columns.pcs, kind="stable")
        self.vs = columns.values[self.order]
        sorted_pcs = columns.pcs[self.order]
        new_group = np.empty(n, dtype=bool)
        if n:
            new_group[0] = True
            new_group[1:] = sorted_pcs[1:] != sorted_pcs[:-1]
        self.gid = np.cumsum(new_group) - 1
        starts = np.flatnonzero(new_group)
        self.t = np.arange(n) - (starts[self.gid] if n else 0)
        self.starts = starts
        self.sizes = np.diff(np.append(starts, n))
        self.unique_pcs = sorted_pcs[starts]


def _grouping(np, columns) -> _Grouping:
    grouping = columns.scratch.get("grouping")
    if grouping is None:
        grouping = _Grouping(np, columns)
        columns.scratch["grouping"] = grouping
    return grouping


def _factorize_pairs(np, a, b):
    """Dense ids for the distinct ``(a[i], b[i])`` pairs (order-arbitrary)."""
    if len(a) == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.lexsort((b, a))
    a_sorted = a[order]
    b_sorted = b[order]
    boundary = np.empty(len(a), dtype=bool)
    boundary[0] = True
    boundary[1:] = (a_sorted[1:] != a_sorted[:-1]) | (b_sorted[1:] != b_sorted[:-1])
    ids = np.empty(len(a), dtype=np.int64)
    ids[order] = np.cumsum(boundary) - 1
    return ids


def _segmented_cummax(np, gid, keys, key_bound: int):
    """Running maximum of ``keys`` within each contiguous ascending group."""
    if len(gid) and int(gid[-1] + 1) * key_bound >= 2**62:
        raise _VectorizationUnsupported("packed cummax key would overflow int64")
    packed = gid * np.int64(key_bound) + keys
    return np.maximum.accumulate(packed) - gid * np.int64(key_bound)


# --------------------------------------------------------------------------- #
# Snapshot joins and virtual-record augmentation
# --------------------------------------------------------------------------- #
def _as_int64(np, values):
    """Materialise snapshot scalars as int64, or punt to the scalar path."""
    try:
        return np.asarray(list(values), dtype=np.int64)
    except (OverflowError, TypeError, ValueError):
        raise _VectorizationUnsupported("snapshot value outside the int64 domain")


def _snapshot_gids(np, group, pcs):
    """Dense group ids for snapshot PC keys, ``-1`` where the PC does not
    occur in this shard (such entries cannot influence any output)."""
    keys = _as_int64(np, pcs)
    if len(group.unique_pcs) == 0 or len(keys) == 0:
        return np.full(len(keys), -1, dtype=np.int64)
    slot = np.searchsorted(group.unique_pcs, keys)
    slot = np.minimum(slot, len(group.unique_pcs) - 1)
    return np.where(group.unique_pcs[slot] == keys, slot, -1)


def _present_entries(np, group, state):
    """Snapshot table entries whose PC occurs in this shard, by group id."""
    table = state["table"] if state is not None else []
    if not table:
        return []
    present = [
        (gid, payload)
        for (_, payload), gid in zip(table, _snapshot_gids(np, group, [pc for pc, _ in table]).tolist())
        if gid >= 0
    ]
    present.sort(key=lambda item: item[0])
    return present


class _AugmentedGroup:
    """A grouping-shaped view with per-group virtual prefix records.

    Snapshot state folds into a stateless scan by prepending, per group,
    a short synthetic value sequence; the unmodified scan runs over the
    extended columns and the outputs at the ``real`` positions are the
    answers.  For FCM plans the prefix is the entry's value history, used
    only for context lookback — virtual positions never join any
    update stream.
    """

    def __init__(self, np, group, prefix_lengths, prefix_values) -> None:
        group_count = len(group.sizes)
        sizes = group.sizes + prefix_lengths
        n = int(sizes.sum())
        starts = np.zeros(group_count, dtype=np.int64)
        if group_count:
            starts[1:] = np.cumsum(sizes)[:-1]
        self.n = n
        self.sizes = sizes
        self.starts = starts
        self.gid = np.repeat(np.arange(group_count, dtype=np.int64), sizes)
        self.t = np.arange(n, dtype=np.int64) - starts[self.gid]
        self.real = self.t >= prefix_lengths[self.gid]
        values = np.empty(n, dtype=np.int64)
        values[self.real] = group.vs
        values[~self.real] = prefix_values
        self.vs = values


def _augment_from_table(np, group, state, virtual_records):
    """Augment ``group`` with the virtual records of a snapshot table.

    ``virtual_records(fields)`` maps one table entry to the shortest value
    sequence that drives a fresh scalar entry into exactly the snapshot
    state (verified per predictor against the scalar update rules).
    """
    prefix_lengths = np.zeros(len(group.sizes), dtype=np.int64)
    values = []
    for gid, fields in _present_entries(np, group, state):
        sequence = virtual_records(fields)
        prefix_lengths[gid] = len(sequence)
        values.extend(sequence)
    return _AugmentedGroup(np, group, prefix_lengths, _as_int64(np, values))


def _scan_plan(core, virtual_records):
    """Wrap a stateless segmented-scan plan with snapshot-start support."""

    def plan(np, columns, group, state):
        if state is None or not state["table"]:
            return core(np, group)
        augmented = _augment_from_table(np, group, state, virtual_records)
        has, pred = core(np, augmented)
        real = np.flatnonzero(augmented.real)
        return has[real], pred[real]

    return plan


def _virtual_last_value(fields):
    # hysteresis == "always": only the stored value affects predictions.
    return [fields[0]]


def _virtual_simple_stride(fields):
    last_value, stride = fields[0], fields[1]
    if stride is None:
        return [last_value]
    return [wrap_value(last_value - stride), last_value]


def _virtual_two_delta(fields):
    last_value, stride, transient = fields[0], fields[1], fields[3]
    if stride is None and transient is None:
        return [last_value]
    if stride is None or transient is None:
        # The scalar update sets both together; a half-set entry cannot
        # come from a real snapshot.
        raise _VectorizationUnsupported("inconsistent two-delta snapshot entry")
    # Replaying [L - t - s, L - t, L] leaves stride == s whether or not
    # the two virtual deltas coincide (they do exactly when s == t).
    return [
        wrap_value(last_value - transient - stride),
        wrap_value(last_value - transient),
        last_value,
    ]


# --------------------------------------------------------------------------- #
# Lockstep scheduling (feedback state machines: counters, saturating FCM)
# --------------------------------------------------------------------------- #
def _lockstep_schedule(np, sizes, n):
    """Schedule per-group state machines over the group depth.

    Step ``k`` touches the ``k``-th record of every group that has one;
    the active set is a prefix of the groups ordered by descending size,
    so total elementwise work stays O(n).  The guard rejects the
    pathological shape (one dominant group driving thousands of tiny
    steps) where per-step overhead would lose to the scalar loop anyway.
    """
    depth = int(sizes.max()) if len(sizes) else 0
    if depth > 4096 and depth * 32 > n:
        raise _VectorizationUnsupported("dominant group too deep for lockstep")
    by_size = np.argsort(-sizes, kind="stable")
    negative_sizes = -sizes[by_size]
    return by_size, negative_sizes, depth


def _active_groups(np, by_size, negative_sizes, step):
    """Groups whose size exceeds ``step`` (their ``step``-th record exists)."""
    return by_size[: int(np.searchsorted(negative_sizes, -step, side="left"))]


# --------------------------------------------------------------------------- #
# The FCM count/argmax machinery (shared by single-order and blended plans)
# --------------------------------------------------------------------------- #
def _fcm_stream(np, group_ids, y):
    """Predict each element of a (group, value) stream from its group's past.

    The stream must list observations in time order.  For each element
    returns ``has`` (a previous same-group element exists, i.e. the
    context has non-empty counts) and ``pred`` (the value
    :func:`~repro.core.fcm.select_maximum_count` would pick from the
    counts of the previous same-group elements, with the immediately
    preceding one as the recency tie-breaker).
    """
    m = len(y)
    if m == 0:
        return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64)
    order = np.argsort(group_ids, kind="stable")
    y2 = y[order]
    g_sorted = group_ids[order]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    new_group[1:] = g_sorted[1:] != g_sorted[:-1]
    gid = np.cumsum(new_group) - 1
    u = np.arange(m) - np.flatnonzero(new_group)[gid]

    # Running count c of each (group, value) pair at each occurrence.
    pid = _factorize_pairs(np, gid, y2)
    pair_order = np.argsort(pid, kind="stable")
    pid_sorted = pid[pair_order]
    pair_start = np.empty(m, dtype=bool)
    pair_start[0] = True
    pair_start[1:] = pid_sorted[1:] != pid_sorted[:-1]
    counts = np.empty(m, dtype=np.int64)
    counts[pair_order] = (
        np.arange(m) - np.flatnonzero(pair_start)[np.cumsum(pair_start) - 1] + 1
    )

    # Running maximum count per group.
    count_bound = int(counts.max()) + 1
    running_max = _segmented_cummax(np, gid, counts, count_bound)

    # Insertion rank of each pair within its group, plus the group-local
    # table decoding (group, rank) back to the pair's value.
    pair_count = int(pid.max()) + 1
    first_pos = np.empty(pair_count, dtype=np.int64)
    first_pos[pid_sorted[pair_start]] = pair_order[pair_start]
    pair_gid = gid[first_pos]
    rank_order = np.lexsort((first_pos, pair_gid))
    ranked_gid = pair_gid[rank_order]
    rank_start = np.empty(pair_count, dtype=bool)
    rank_start[0] = True
    rank_start[1:] = ranked_gid[1:] != ranked_gid[:-1]
    # Every group holds at least one pair and pair_gid is dense, so the
    # group-change positions double as per-group base offsets.
    group_base = np.flatnonzero(rank_start)
    rank_sorted = np.arange(pair_count) - group_base[np.cumsum(rank_start) - 1]
    rank_of_pair = np.empty(pair_count, dtype=np.int64)
    rank_of_pair[rank_order] = rank_sorted
    value_by_rank = y2[first_pos][rank_order]

    # Leader = first-inserted value among the current maximal-count set.
    # Packing count (major) against inverted insertion rank (minor) makes
    # the running key-max decode to exactly that value: a value's latest
    # occurrence carries its full count, so the maximal key belongs to the
    # max-count value with the smallest rank.
    rank_bound = int(rank_of_pair.max()) + 2
    keys = counts * np.int64(rank_bound) + (
        np.int64(rank_bound - 1) - rank_of_pair[pid]
    )
    key_max = _segmented_cummax(np, gid, keys, count_bound * rank_bound)
    leader_rank = np.int64(rank_bound - 1) - (key_max % np.int64(rank_bound))
    leader = value_by_rank[group_base[gid] + leader_rank]

    # The prediction for element p reads the state after element p-1 of
    # its group: recent value, its count, the running max and the leader.
    has = u >= 1
    recent = np.zeros(m, dtype=np.int64)
    prev_count = np.zeros(m, dtype=np.int64)
    prev_max = np.full(m, -1, dtype=np.int64)
    prev_leader = np.zeros(m, dtype=np.int64)
    if m > 1:
        recent[1:] = y2[:-1]
        prev_count[1:] = counts[:-1]
        prev_max[1:] = running_max[:-1]
        prev_leader[1:] = leader[:-1]
    pred = np.where(prev_count == prev_max, recent, prev_leader)

    has_out = np.empty(m, dtype=bool)
    pred_out = np.empty(m, dtype=np.int64)
    has_out[order] = has
    pred_out[order] = pred
    return has_out, pred_out


# --------------------------------------------------------------------------- #
# Stateless scan plans (operate in any grouping-shaped sorted domain)
# --------------------------------------------------------------------------- #
def _plan_last_value(np, group):
    has = group.t >= 1
    pred = np.zeros(group.n, dtype=np.int64)
    if group.n > 1:
        pred[1:] = group.vs[:-1]
    return has, pred


def _deltas(np, group):
    """64-bit wrapping value deltas within each PC group (uint64 domain)."""
    values = group.vs.view(np.uint64)
    deltas = np.zeros(group.n, dtype=np.uint64)
    if group.n > 1:
        deltas[1:] = values[1:] - values[:-1]
    return deltas


def _stride_predictions(np, group, strides):
    """``last_value + stride`` with 64-bit wrap, given per-position strides."""
    values = group.vs.view(np.uint64)
    pred = np.zeros(group.n, dtype=np.uint64)
    if group.n > 1:
        pred[1:] = values[:-1] + strides[:-1]
    return group.t >= 1, pred.view(np.int64)


def _plan_simple_stride(np, group):
    deltas = _deltas(np, group)
    # Stride state after each update: the latest delta; zero (i.e. plain
    # last-value) while the entry has seen a single value.
    strides = np.where(group.t >= 1, deltas, np.uint64(0))
    return _stride_predictions(np, group, strides)


def _plan_two_delta(np, group):
    deltas = _deltas(np, group)
    prev_deltas = np.zeros(group.n, dtype=np.uint64)
    if group.n > 1:
        prev_deltas[1:] = deltas[:-1]
    # s2 adopts the observed delta on the first delta ever and whenever it
    # repeats the previous one; otherwise it keeps its old value, which a
    # forward-fill of the last adoption point reproduces.  t == 0 rows are
    # adoption points of stride zero so fills never leak across groups.
    adopt = (group.t <= 1) | ((group.t >= 2) & (deltas == prev_deltas))
    source = np.where(group.t >= 1, deltas, np.uint64(0))
    fill = np.maximum.accumulate(np.where(adopt, np.arange(group.n), -1))
    strides = source[fill] if group.n else source
    return _stride_predictions(np, group, strides)


# --------------------------------------------------------------------------- #
# Lockstep counter plans (hysteresis feeds back into the stored value, so
# no closed-form scan exists; the per-group state machines advance in
# lockstep instead, seeded directly from any snapshot)
# --------------------------------------------------------------------------- #
def _plan_lv_counter(np, group, state, counter_max, threshold):
    """``lv-counter``: replace the value only when the counter sags."""
    group_count = len(group.sizes)
    exists = np.zeros(group_count, dtype=bool)
    value = np.zeros(group_count, dtype=np.int64)
    counter = np.zeros(group_count, dtype=np.int64)
    entries = _present_entries(np, group, state)
    if entries:
        target = _as_int64(np, [gid for gid, _ in entries])
        exists[target] = True
        value[target] = _as_int64(np, [fields[0] for _, fields in entries])
        counter[target] = _as_int64(np, [fields[1] for _, fields in entries])
    by_size, negative_sizes, depth = _lockstep_schedule(np, group.sizes, group.n)
    has = np.zeros(group.n, dtype=bool)
    pred = np.zeros(group.n, dtype=np.int64)
    maximum = np.int64(counter_max)
    limit = np.int64(threshold)
    for step in range(depth):
        active = _active_groups(np, by_size, negative_sizes, step)
        position = group.starts[active] + step
        actual = group.vs[position]
        alive = exists[active]
        stored = value[active]
        has[position] = alive
        pred[position] = np.where(alive, stored, 0)
        # Mirror LastValuePredictor._update_counter: bump on a hit, decay
        # on a miss, replace (and zero) when the decayed counter is below
        # the threshold.  Fresh entries store the value with counter 0.
        hit = stored == actual
        count = np.where(
            hit,
            np.minimum(maximum, counter[active] + 1),
            np.maximum(np.int64(0), counter[active] - 1),
        )
        replace = ~hit & (count < limit)
        fresh = ~alive
        value[active] = np.where(fresh | replace, actual, stored)
        counter[active] = np.where(fresh | replace, 0, count)
        exists[active] = True
    return has, pred


def _plan_lv_consecutive(np, group, state, required_run):
    """``lv-consecutive``: replace after a run of identical new values."""
    group_count = len(group.sizes)
    exists = np.zeros(group_count, dtype=bool)
    value = np.zeros(group_count, dtype=np.int64)
    candidate = np.zeros(group_count, dtype=np.int64)
    has_candidate = np.zeros(group_count, dtype=bool)
    run = np.zeros(group_count, dtype=np.int64)
    entries = _present_entries(np, group, state)
    if entries:
        target = _as_int64(np, [gid for gid, _ in entries])
        candidates = [fields[2] for _, fields in entries]
        exists[target] = True
        value[target] = _as_int64(np, [fields[0] for _, fields in entries])
        has_candidate[target] = np.asarray(
            [item is not None for item in candidates], dtype=bool
        )
        candidate[target] = _as_int64(
            np, [0 if item is None else item for item in candidates]
        )
        run[target] = _as_int64(np, [fields[3] for _, fields in entries])
    by_size, negative_sizes, depth = _lockstep_schedule(np, group.sizes, group.n)
    has = np.zeros(group.n, dtype=bool)
    pred = np.zeros(group.n, dtype=np.int64)
    required = np.int64(required_run)
    for step in range(depth):
        active = _active_groups(np, by_size, negative_sizes, step)
        position = group.starts[active] + step
        actual = group.vs[position]
        alive = exists[active]
        stored = value[active]
        has[position] = alive
        pred[position] = np.where(alive, stored, 0)
        # Mirror LastValuePredictor._update_consecutive: a hit clears the
        # candidate; a miss extends (or restarts) the candidate run, and a
        # long enough run promotes the candidate to the stored value.
        hit = stored == actual
        extend = has_candidate[active] & (candidate[active] == actual)
        streak = np.where(
            hit, np.int64(0), np.where(extend, run[active] + 1, np.int64(1))
        )
        promote = ~hit & (streak >= required)
        value[active] = np.where(~alive | promote, actual, stored)
        candidate[active] = np.where(alive & ~hit, actual, 0)
        has_candidate[active] = alive & ~hit & ~promote
        run[active] = np.where(alive & ~promote, streak, 0)
        exists[active] = True
    return has, pred


def _plan_stride_counter(np, group, state, counter_max, threshold):
    """``stride-counter``: replace the stride only when the counter sags."""
    group_count = len(group.sizes)
    exists = np.zeros(group_count, dtype=bool)
    last = np.zeros(group_count, dtype=np.uint64)
    stride = np.zeros(group_count, dtype=np.uint64)
    has_stride = np.zeros(group_count, dtype=bool)
    counter = np.zeros(group_count, dtype=np.int64)
    entries = _present_entries(np, group, state)
    if entries:
        target = _as_int64(np, [gid for gid, _ in entries])
        strides = [fields[1] for _, fields in entries]
        exists[target] = True
        last[target] = _as_int64(np, [fields[0] for _, fields in entries]).view(
            np.uint64
        )
        has_stride[target] = np.asarray(
            [item is not None for item in strides], dtype=bool
        )
        stride[target] = _as_int64(
            np, [0 if item is None else item for item in strides]
        ).view(np.uint64)
        counter[target] = _as_int64(np, [fields[2] for _, fields in entries])
    by_size, negative_sizes, depth = _lockstep_schedule(np, group.sizes, group.n)
    values = group.vs.view(np.uint64)
    has = np.zeros(group.n, dtype=bool)
    pred = np.zeros(group.n, dtype=np.int64)
    maximum = np.int64(counter_max)
    limit = np.int64(threshold)
    for step in range(depth):
        active = _active_groups(np, by_size, negative_sizes, step)
        position = group.starts[active] + step
        actual = values[position]
        alive = exists[active]
        base = last[active]
        known = has_stride[active]
        guess = base + np.where(known, stride[active], np.uint64(0))
        has[position] = alive
        pred[position] = np.where(alive, guess, np.uint64(0)).view(np.int64)
        # Mirror CounterStridePredictor.update: score the prediction, and
        # only a miss with a sagging counter (or a still-empty stride
        # field) adopts the observed delta.  All arithmetic wraps in the
        # uint64 domain, matching wrap_value.
        observed = actual - base
        hit = guess == actual
        count = np.where(
            hit,
            np.minimum(maximum, counter[active] + 1),
            np.maximum(np.int64(0), counter[active] - 1),
        )
        adopt = (~hit & (count < limit)) | ~known
        stride[active] = np.where(
            alive & adopt, observed, np.where(alive, stride[active], np.uint64(0))
        )
        has_stride[active] = alive
        counter[active] = np.where(alive, count, 0)
        last[active] = actual
        exists[active] = True
    return has, pred


# --------------------------------------------------------------------------- #
# FCM with saturating counters and/or snapshot-seeded counts
# --------------------------------------------------------------------------- #
def _ragged_arange(np, counts):
    """``[0..counts[0]), [0..counts[1]), ...`` concatenated."""
    total = int(counts.sum())
    starts = np.zeros(len(counts), dtype=np.int64)
    if len(counts):
        starts[1:] = np.cumsum(counts)[:-1]
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _fcm_eval(np, group_ids, y, counter_max=None, init=None):
    """(has, pred) for a (context, value) stream in time order.

    ``init`` (optional) seeds counts from a predictor snapshot: arrays
    ``(group, value, count, is_recent)`` listing the seeded pairs in
    snapshot insertion order per context, in the same id space as
    ``group_ids``.  The pure scan handles the stateless exact-count case;
    saturation and seeding run the same pair/rank tables in lockstep.
    """
    if counter_max is None and (init is None or len(init[0]) == 0):
        return _fcm_stream(np, group_ids, y)
    return _fcm_lockstep(np, group_ids, y, counter_max, init)


def _fcm_lockstep(np, group_ids, y, counter_max, init):
    """The FCM count/argmax pass as per-context lockstep state machines.

    Covers the two features the closed-form scan cannot: halve-on-
    saturation counters (``counter_max``) and counts seeded from a
    snapshot.  Predictions mirror
    :func:`~repro.core.fcm.select_maximum_count` exactly — the recent
    value wins a count tie, otherwise the first-inserted of the maximal
    set (its insertion *rank*) is chosen.
    """
    m = len(y)
    if m == 0:
        return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64)
    if init is None:
        init = (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=bool),
        )
    init_group, init_value, init_count, init_is_recent = init

    order = np.argsort(group_ids, kind="stable")
    g_sorted = group_ids[order]
    y2 = y[order]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    new_group[1:] = g_sorted[1:] != g_sorted[:-1]
    gid = np.cumsum(new_group) - 1
    starts = np.flatnonzero(new_group)
    group_count = int(gid[-1]) + 1
    sizes = np.diff(np.append(starts, m))
    unique_ids = g_sorted[starts]

    # Seeded pairs whose context never occurs in the stream cannot affect
    # any prediction; drop them and re-key the rest to dense group ids.
    if len(init_group):
        slot = np.searchsorted(unique_ids, init_group)
        slot = np.minimum(slot, group_count - 1)
        keep = unique_ids[slot] == init_group
        init_gid = slot[keep]
        init_value = init_value[keep]
        init_count = init_count[keep]
        init_is_recent = init_is_recent[keep]
    else:
        init_gid = np.zeros(0, dtype=np.int64)

    # One dense id per distinct (context, value) pair across init+stream.
    # First-occurrence positions are taken over the concatenation, so
    # seeded pairs keep their snapshot insertion ranks ahead of any pair
    # first produced by the stream — exactly the scalar dict order.
    seeded_pairs = len(init_gid)
    all_gid = np.concatenate((init_gid, gid))
    all_value = np.concatenate((init_value, y2))
    pair_id = _factorize_pairs(np, all_gid, all_value)
    pair_count = int(pair_id.max()) + 1
    by_pair = np.argsort(pair_id, kind="stable")
    pair_sorted = pair_id[by_pair]
    pair_start = np.empty(len(pair_id), dtype=bool)
    pair_start[0] = True
    pair_start[1:] = pair_sorted[1:] != pair_sorted[:-1]
    first_pos = np.empty(pair_count, dtype=np.int64)
    first_pos[pair_sorted[pair_start]] = by_pair[pair_start]
    pair_gid = all_gid[first_pos]
    rank_order = np.lexsort((first_pos, pair_gid))
    ranked_gid = pair_gid[rank_order]
    rank_start = np.empty(pair_count, dtype=bool)
    rank_start[0] = True
    rank_start[1:] = ranked_gid[1:] != ranked_gid[:-1]
    # Every dense group has at least one stream element, hence at least
    # one pair, so the group-change positions double as base offsets.
    group_base = np.flatnonzero(rank_start)
    rank_sorted = np.arange(pair_count) - group_base[np.cumsum(rank_start) - 1]
    rank_of_pair = np.empty(pair_count, dtype=np.int64)
    rank_of_pair[rank_order] = rank_sorted
    value_of_pair = all_value[first_pos]
    value_by_rank = value_of_pair[rank_order]
    pairs_per_group = np.bincount(pair_gid, minlength=group_count)

    rank_bound = int(rank_of_pair.max()) + 2
    top_count = m + (int(init_count.max()) if len(init_count) else 0) + 1
    if top_count * rank_bound >= 2**62:
        raise _VectorizationUnsupported("packed count key would overflow int64")

    # Mutable per-pair counts and per-group running state.
    counts = np.zeros(pair_count, dtype=np.int64)
    has_counts = np.zeros(group_count, dtype=bool)
    max_count = np.zeros(group_count, dtype=np.int64)
    leader_rank = np.zeros(group_count, dtype=np.int64)
    recent_pair = np.zeros(group_count, dtype=np.int64)
    if seeded_pairs:
        init_pid = pair_id[:seeded_pairs]
        counts[init_pid] = init_count
        has_counts[init_gid] = True
        packed = np.full(group_count, -1, dtype=np.int64)
        key = init_count * np.int64(rank_bound) + (
            np.int64(rank_bound - 1) - rank_of_pair[init_pid]
        )
        np.maximum.at(packed, init_gid, key)
        seeded = packed >= 0
        max_count[seeded] = packed[seeded] // rank_bound
        leader_rank[seeded] = np.int64(rank_bound - 1) - packed[seeded] % rank_bound
        recent_source = init_pid[init_is_recent]
        recent_pair[pair_gid[recent_source]] = recent_source
        # The scalar update writes `recent` whenever it touches counts, so
        # every seeded context must carry exactly one recent marker.
        marks = np.bincount(pair_gid[recent_source], minlength=group_count)
        if not bool(np.all(marks[seeded] == 1)) or bool(np.any(marks[~seeded])):
            raise _VectorizationUnsupported("snapshot recent markers inconsistent")

    by_size, negative_sizes, depth = _lockstep_schedule(np, sizes, m)
    stream_pid = pair_id[seeded_pairs:]
    has2 = np.empty(m, dtype=bool)
    pred2 = np.empty(m, dtype=np.int64)
    saturation = None if counter_max is None else np.int64(counter_max)
    for step in range(depth):
        active = _active_groups(np, by_size, negative_sizes, step)
        position = starts[active] + step
        pair = stream_pid[position]
        actual = y2[position]
        known = has_counts[active]
        recent = recent_pair[active]
        recent_hot = counts[recent] == max_count[active]
        leader_value = value_by_rank[group_base[active] + leader_rank[active]]
        has2[position] = known
        pred2[position] = np.where(
            known, np.where(recent_hot, value_of_pair[recent], leader_value), 0
        )
        # Update: bump this pair, move the leader if the pair now wins the
        # (count, -rank) order, and mark it recent.
        bumped = counts[pair] + 1
        counts[pair] = bumped
        rank = rank_of_pair[pair]
        promote = ~known | (bumped > max_count[active])
        tie = known & (bumped == max_count[active]) & (rank < leader_rank[active])
        max_count[active] = np.where(promote, bumped, max_count[active])
        leader_rank[active] = np.where(promote | tie, rank, leader_rank[active])
        recent_pair[active] = pair
        has_counts[active] = True
        if saturation is not None:
            hot = np.flatnonzero(bumped >= saturation)
            if len(hot):
                _halve_and_rescan(
                    np,
                    counts,
                    active[hot],
                    group_base,
                    pairs_per_group,
                    rank_order,
                    rank_bound,
                    rank_of_pair,
                    max_count,
                    leader_rank,
                )

    has_out = np.empty(m, dtype=bool)
    pred_out = np.empty(m, dtype=np.int64)
    has_out[order] = has2
    pred_out[order] = pred2
    return has_out, pred_out


def _halve_and_rescan(
    np,
    counts,
    groups,
    group_base,
    pairs_per_group,
    rank_order,
    rank_bound,
    rank_of_pair,
    max_count,
    leader_rank,
):
    """Halve every live count of the saturated ``groups`` in place.

    A halved count never drops below 1 and never-seen pairs stay at 0
    (mirroring the scalar loop over the live dict only), then each
    group's running max and leader are recomputed from scratch.
    """
    base = group_base[groups]
    width = pairs_per_group[groups]
    segment = np.repeat(base, width) + _ragged_arange(np, width)
    pairs = rank_order[segment]
    live = counts[pairs]
    counts[pairs] = np.where(live > 0, np.maximum(np.int64(1), live // 2), 0)
    keys = counts[pairs] * np.int64(rank_bound) + (
        np.int64(rank_bound - 1) - rank_of_pair[pairs]
    )
    offsets = np.zeros(len(groups), dtype=np.int64)
    offsets[1:] = np.cumsum(width)[:-1]
    best = np.maximum.reduceat(keys, offsets)
    max_count[groups] = best // rank_bound
    leader_rank[groups] = np.int64(rank_bound - 1) - best % rank_bound


# --------------------------------------------------------------------------- #
# FCM plans: context keys, snapshot seeding, single and blended orders
# --------------------------------------------------------------------------- #
def _context_keys(np, group, order, stream, init_contexts):
    """Dense context ids for stream records and snapshot contexts together.

    A context is (group, last ``order`` values); chaining the pair
    factorisation over stream lookbacks and snapshot context tuples at
    once puts both in a single id space.
    """
    stream_keys = group.gid[stream]
    init_keys = _as_int64(np, [gid for gid, _ in init_contexts])
    for back in range(1, order + 1):
        merged = _factorize_pairs(
            np,
            np.concatenate((stream_keys, init_keys)),
            np.concatenate(
                (
                    group.vs[stream - back],
                    _as_int64(np, [context[-back] for _, context in init_contexts]),
                )
            ),
        )
        stream_keys = merged[: len(stream)]
        init_keys = merged[len(stream):]
    return stream_keys, init_keys


def _fcm_seed(np, group, order, stream, seeds):
    """Context ids plus the init-pair arrays for one FCM order.

    ``seeds`` lists ``(gid, counts_encoded, recent_encoded)`` per snapshot
    entry, in the transport encoding of :mod:`repro.simulation.state`
    (pairs lists preserving dict insertion order).
    """
    init_contexts = []
    pair_context, pair_value, pair_count, pair_recent = [], [], [], []
    for gid, counts_encoded, recent_encoded in seeds:
        recent_map = {tuple(context): value for context, value in recent_encoded}
        for context_list, pairs in counts_encoded:
            context = tuple(context_list)
            if len(context) != order or not pairs:
                raise _VectorizationUnsupported("malformed snapshot context")
            recent_value = recent_map.get(context)
            flags = [value == recent_value for value, _ in pairs]
            if not any(flags):
                raise _VectorizationUnsupported(
                    "snapshot recent value missing from its context counts"
                )
            for (value, count), flag in zip(pairs, flags):
                pair_context.append(len(init_contexts))
                pair_value.append(value)
                pair_count.append(count)
                pair_recent.append(flag)
            init_contexts.append((gid, context))
    stream_keys, init_keys = _context_keys(np, group, order, stream, init_contexts)
    if not pair_context:
        return stream_keys, None
    return stream_keys, (
        init_keys[np.asarray(pair_context, dtype=np.int64)],
        _as_int64(np, pair_value),
        _as_int64(np, pair_count),
        np.asarray(pair_recent, dtype=bool),
    )


def _plan_fcm(np, group, order):
    stream = np.flatnonzero(group.t >= order)
    keys = group.gid[stream]
    for back in range(1, order + 1):
        keys = _factorize_pairs(np, keys, group.vs[stream - back])
    stream_has, stream_pred = _fcm_stream(np, keys, group.vs[stream])
    has = np.zeros(group.n, dtype=bool)
    pred = np.zeros(group.n, dtype=np.int64)
    has[stream] = stream_has
    pred[stream] = stream_pred
    return has, pred


def _history_augment(np, group, order, entries):
    """Fold snapshot value histories in as lookback-only virtual records.

    The ``t`` of the augmented grouping then counts *all* values the PC
    has produced (capped at ``order``), so the scalar gate
    ``len(history) >= order`` is exactly ``t >= order``.
    """
    prefix_lengths = np.zeros(len(group.sizes), dtype=np.int64)
    values = []
    for gid, entry in entries:
        history = list(entry["history"])[-order:] if order else []
        prefix_lengths[gid] = len(history)
        values.extend(history)
    return _AugmentedGroup(np, group, prefix_lengths, _as_int64(np, values))


def _plan_fcm_stateful(np, group, order, counter_max, state):
    """Single fixed-order FCM, with optional saturation and snapshot."""
    if state is None and counter_max is None:
        return _plan_fcm(np, group, order)
    entries = _present_entries(np, group, state)
    augmented = _history_augment(np, group, order, entries)
    stream = np.flatnonzero(augmented.real & (augmented.t >= order))
    seeds = [(gid, entry["counts"], entry["recent"]) for gid, entry in entries]
    stream_keys, init = _fcm_seed(np, augmented, order, stream, seeds)
    stream_has, stream_pred = _fcm_eval(
        np, stream_keys, augmented.vs[stream], counter_max, init
    )
    has = np.zeros(augmented.n, dtype=bool)
    pred = np.zeros(augmented.n, dtype=np.int64)
    has[stream] = stream_has
    pred[stream] = stream_pred
    real = np.flatnonzero(augmented.real)
    return has[real], pred[real]


def _plan_blended_fcm(np, group, order):
    has = np.zeros(group.n, dtype=bool)
    pred = np.zeros(group.n, dtype=np.int64)
    remaining = np.ones(group.n, dtype=bool)
    # Lazy exclusion, top-down: the records still unmatched at order o that
    # have seen >= o values are exactly the ones that update order o's
    # table, so each round's candidate stream doubles as that order's
    # updater stream; a record matches at the highest order where a
    # previous same-context candidate exists.
    for model_order in range(order, -1, -1):
        candidates = np.flatnonzero(remaining & (group.t >= model_order))
        if candidates.size == 0:
            continue
        keys = group.gid[candidates]
        for back in range(1, model_order + 1):
            keys = _factorize_pairs(np, keys, group.vs[candidates - back])
        stream_has, stream_pred = _fcm_stream(np, keys, group.vs[candidates])
        matched = candidates[stream_has]
        has[matched] = True
        pred[matched] = stream_pred[stream_has]
        remaining[matched] = False
    return has, pred


def _plan_blended_stateful(np, group, order, counter_max, update_policy, state):
    """Blended FCM over orders ``order..0`` under either update policy."""
    if state is None and counter_max is None and update_policy == "lazy-exclusion":
        return _plan_blended_fcm(np, group, order)
    entries = _present_entries(np, group, state)
    for _, entry in entries:
        if len(entry["tables"]) != order + 1 or len(entry["recent"]) != order + 1:
            raise _VectorizationUnsupported("blended snapshot order mismatch")
    augmented = _history_augment(np, group, order, entries)
    has = np.zeros(augmented.n, dtype=bool)
    pred = np.zeros(augmented.n, dtype=np.int64)
    if update_policy == "lazy-exclusion":
        remaining = augmented.real.copy()
        for model_order in range(order, -1, -1):
            candidates = np.flatnonzero(remaining & (augmented.t >= model_order))
            seeds = [
                (gid, entry["tables"][model_order], entry["recent"][model_order])
                for gid, entry in entries
            ]
            stream_keys, init = _fcm_seed(np, augmented, model_order, candidates, seeds)
            if candidates.size == 0:
                continue
            stream_has, stream_pred = _fcm_eval(
                np, stream_keys, augmented.vs[candidates], counter_max, init
            )
            matched = candidates[stream_has]
            has[matched] = True
            pred[matched] = stream_pred[stream_has]
            remaining[matched] = False
    else:
        # Full update: every gated record feeds every order's table, and a
        # record keeps the highest-order context match.
        assigned = np.zeros(augmented.n, dtype=bool)
        for model_order in range(order, -1, -1):
            candidates = np.flatnonzero(augmented.real & (augmented.t >= model_order))
            seeds = [
                (gid, entry["tables"][model_order], entry["recent"][model_order])
                for gid, entry in entries
            ]
            stream_keys, init = _fcm_seed(np, augmented, model_order, candidates, seeds)
            if candidates.size == 0:
                continue
            stream_has, stream_pred = _fcm_eval(
                np, stream_keys, augmented.vs[candidates], counter_max, init
            )
            fresh = stream_has & ~assigned[candidates]
            chosen = candidates[fresh]
            has[chosen] = True
            pred[chosen] = stream_pred[fresh]
            assigned[candidates[stream_has]] = True
    real = np.flatnonzero(augmented.real)
    return has[real], pred[real]


# --------------------------------------------------------------------------- #
# Hybrid plans: component composition plus vectorized choosers
# --------------------------------------------------------------------------- #
def _hybrid_components(np, columns, group, plans, state):
    """Run every component plan; return (has, pred) pairs and correctness."""
    if state is not None:
        states = state["components"]
        if len(states) != len(plans):
            raise _VectorizationUnsupported("hybrid snapshot component mismatch")
    else:
        states = [None] * len(plans)
    results = [
        plan(np, columns, group, component_state)
        for plan, component_state in zip(plans, states)
    ]
    correct = [has & (pred == group.vs) for has, pred in results]
    return results, correct


def _gather_selected(np, results, selection):
    """Per-record gather of (has, pred) from the selected component.

    Fancy indexing accepts the same negative indices Python list indexing
    does, so exotic chooser mappings behave exactly like the scalar
    ``components[index]`` access.
    """
    all_has = np.stack([has for has, _ in results])
    all_pred = np.stack([pred for _, pred in results])
    index = np.arange(all_has.shape[1])
    return all_has[selection, index], all_pred[selection, index]


def _pc_chooser_select(np, group, correct, score_max, state):
    """Vectorized :class:`~repro.core.hybrid.PcChooser` selection.

    Each component's per-PC score stream is a prefix composition of
    saturating ±1 steps.  The step ``y -> min(C, max(B, y + A))`` is
    closed under composition, so a segmented Hillis–Steele doubling scan
    yields, per record, the transform of all earlier same-PC records;
    applied to the entry's initial score that is exactly the score the
    scalar ``select`` reads (``train`` runs after selection).
    """
    n = group.n
    width = len(correct)
    group_count = len(group.sizes)
    seeded = np.zeros(group_count, dtype=bool)
    base_scores = np.zeros((width, group_count), dtype=np.int64)
    entries = _present_entries(np, group, state) if state is not None else []
    if entries:
        for _, scores in entries:
            if len(scores) != width:
                raise _VectorizationUnsupported("chooser snapshot width mismatch")
        target = _as_int64(np, [gid for gid, _ in entries])
        seeded[target] = True
        for component in range(width):
            base_scores[component][target] = _as_int64(
                np, [scores[component] for _, scores in entries]
            )
    depth = int(group.sizes.max()) if group_count else 0
    top = np.int64(score_max)
    scores = []
    for component in range(width):
        shift = np.where(correct[component], np.int64(1), np.int64(-1))
        low = np.zeros(n, dtype=np.int64)
        high = np.full(n, top, dtype=np.int64)
        span = 1
        while span < depth:
            later = np.flatnonzero(group.t >= span)
            earlier = later - span
            shift_early = shift[earlier]
            low_early = low[earlier]
            high_early = high[earlier]
            shift_late = shift[later]
            low_late = low[later]
            high_late = high[later]
            new_high = np.minimum(
                high_late, np.maximum(low_late, high_early + shift_late)
            )
            new_low = np.minimum(
                new_high, np.maximum(low_late, low_early + shift_late)
            )
            shift[later] = shift_early + shift_late
            low[later] = new_low
            high[later] = new_high
            span *= 2
        value = np.empty(n, dtype=np.int64)
        initial = base_scores[component][group.gid]
        first = group.t == 0
        value[first] = initial[first]
        later = np.flatnonzero(~first)
        earlier = later - 1
        value[later] = np.minimum(
            high[earlier], np.maximum(low[earlier], initial[later] + shift[earlier])
        )
        scores.append(value)
    # Argmax with the scalar's earlier-index tie-break; records whose PC
    # has no chooser entry yet (first occurrence, unseeded) take index 0.
    selection = np.zeros(n, dtype=np.int64)
    best = scores[0]
    for component in range(1, width):
        better = scores[component] > best
        selection = np.where(better, np.int64(component), selection)
        best = np.where(better, scores[component], best)
    exists = (group.t >= 1) | seeded[group.gid]
    return np.where(exists, selection, np.int64(0))


def _plan_hybrid(predictor, component_plans):
    """Build the plan closure for one hybrid configuration."""
    from repro.core.hybrid import CategoryChooser, OracleChooser, PcChooser

    chooser = predictor.chooser
    if isinstance(chooser, OracleChooser):

        def plan(np, columns, group, state):
            _, correct = _hybrid_components(np, columns, group, component_plans, state)
            combined = np.zeros(group.n, dtype=bool)
            for flags in correct:
                combined |= flags
            # correct == has & (pred == value): emitting the true value as
            # the prediction makes the bitmap exactly "any component hit".
            return combined, group.vs

        return plan
    if isinstance(chooser, CategoryChooser):
        mapping = dict(chooser.mapping)
        default = chooser.default

        def plan(np, columns, group, state):
            results, _ = _hybrid_components(np, columns, group, component_plans, state)
            lookup = _as_int64(
                np, [mapping.get(category, default) for category in columns.categories]
            )
            selection = lookup[columns.category_codes[group.order]]
            return _gather_selected(np, results, selection)

        return plan
    if isinstance(chooser, PcChooser):
        if chooser.num_components != len(component_plans):
            return None
        score_max = chooser.score_max

        def plan(np, columns, group, state):
            chooser_state = state["chooser"] if state is not None else None
            results, correct = _hybrid_components(
                np, columns, group, component_plans, state
            )
            selection = _pc_chooser_select(np, group, correct, score_max, chooser_state)
            return _gather_selected(np, results, selection)

        return plan
    return None


# --------------------------------------------------------------------------- #
# Plan resolution (memoised per registry name)
# --------------------------------------------------------------------------- #
def _plan_for(predictor):
    """Build the vector plan for a predictor instance, or ``None``.

    Every plan is a pure closure ``plan(np, columns, group, state)``
    returning ``(has, pred)`` in the grouping's sorted domain; ``state``
    is a :func:`repro.simulation.state.snapshot_predictor` dict (or
    ``None`` for a cold start).  Dispatch inspects the instantiated
    configuration, so dynamic names and re-bound registry entries select
    the right plan.
    """
    from repro.core.blending import BlendedFcmPredictor
    from repro.core.fcm import FcmPredictor
    from repro.core.hybrid import HybridPredictor
    from repro.core.last_value import LastValuePredictor
    from repro.core.stride import (
        CounterStridePredictor,
        SimpleStridePredictor,
        TwoDeltaStridePredictor,
    )

    kind = type(predictor)
    if kind is LastValuePredictor:
        if predictor.hysteresis == "always":
            return _scan_plan(_plan_last_value, _virtual_last_value)
        if predictor.hysteresis == "counter":
            maximum = predictor.counter_max
            limit = predictor.counter_threshold
            return lambda np, columns, group, state: _plan_lv_counter(
                np, group, state, maximum, limit
            )
        required = predictor.required_run
        return lambda np, columns, group, state: _plan_lv_consecutive(
            np, group, state, required
        )
    if kind is SimpleStridePredictor:
        return _scan_plan(_plan_simple_stride, _virtual_simple_stride)
    if kind is TwoDeltaStridePredictor:
        return _scan_plan(_plan_two_delta, _virtual_two_delta)
    if kind is CounterStridePredictor:
        maximum = predictor.counter_max
        limit = predictor.threshold
        return lambda np, columns, group, state: _plan_stride_counter(
            np, group, state, maximum, limit
        )
    if kind is FcmPredictor:
        order = predictor.order
        saturation = predictor.counter_max
        return lambda np, columns, group, state: _plan_fcm_stateful(
            np, group, order, saturation, state
        )
    if kind is BlendedFcmPredictor:
        order = predictor.order
        saturation = predictor.counter_max
        policy = predictor.update_policy
        return lambda np, columns, group, state: _plan_blended_stateful(
            np, group, order, saturation, policy, state
        )
    if kind is HybridPredictor:
        component_plans = [
            _plan_for(component.predictor) for component in predictor.components
        ]
        if any(plan is None for plan in component_plans):
            return None
        return _plan_hybrid(predictor, component_plans)
    return None


#: name -> (registered factory at resolution time, plan).  The factory
#: object is the cache validity token: re-registering a name swaps the
#: factory and invalidates the entry, while dynamic ``fcmN*`` spellings
#: (token ``None``) are fixed by construction and cache indefinitely.
_PLAN_CACHE: dict[str, tuple[object, object]] = {}


def vector_plan(predictor_name: str):
    """The vector plan for a registry name, or ``None`` (scalar fallback).

    Resolution is memoised per name: sharded runs resolve the same few
    names once per window otherwise, and instantiating a throwaway
    predictor per resolution is the expensive part.  The cache is
    validated against the registry's current factory object, so
    ``register_predictor(..., overwrite=True)`` takes effect immediately.
    """
    from repro.core.registry import create_predictor, registered_factory

    token = registered_factory(predictor_name)
    cached = _PLAN_CACHE.get(predictor_name)
    if cached is not None and cached[0] is token:
        return cached[1]
    plan = _plan_for(create_predictor(predictor_name))
    _PLAN_CACHE[predictor_name] = (token, plan)
    return plan


# --------------------------------------------------------------------------- #
# Result assembly — dict insertion orders must match the scalar loop's,
# because cache entries are JSON renderings of these dicts and the two
# kernels must produce byte-identical entries.
# --------------------------------------------------------------------------- #
def _first_occurrence_order(np, keys):
    """Unique keys with counts, ordered by first occurrence in ``keys``."""
    unique, first, counts = np.unique(keys, return_index=True, return_counts=True)
    order = np.argsort(first, kind="stable")
    return unique[order], first[order], counts[order]


def _category_counts(np, columns, codes):
    """Category -> count, keyed in first-occurrence order of ``codes``."""
    unique, _, counts = _first_occurrence_order(np, codes)
    return {
        columns.categories[code]: count
        for code, count in zip(unique.tolist(), counts.tolist())
    }


def _category_totals(np, columns):
    """Per-category record counts — identical for every predictor's shard."""
    totals = columns.scratch.get("category_totals")
    if totals is None:
        totals = _category_counts(np, columns, columns.category_codes)
        columns.scratch["category_totals"] = totals
    return totals


def simulate_shard_vector(
    columns: "TraceColumns",
    predictor_name: str,
    state: dict | None = None,
    count_simulation: bool = True,
):
    """Vectorized :func:`~repro.simulation.simulator.simulate_shard`.

    ``state`` starts the plan from a restored predictor snapshot
    (:mod:`repro.simulation.state`), which is how ``simulate-window``
    tasks of an intra-trace sharded run execute mid-trace windows on the
    vector kernel.  ``count_simulation=False`` suppresses the process-wide
    simulation counter — window shards count once per (trace, predictor)
    pair, at the window that starts the trace.

    Returns ``None`` when the predictor has no vector plan or a size
    guard trips — callers then run the scalar reference loop.
    """
    from repro.simulation.simulator import (
        SIMULATION_COUNTER,
        PredictorResult,
        PredictorShard,
    )

    np = numpy_or_none()
    if np is None:
        return None
    plan = vector_plan(predictor_name)
    if plan is None:
        return None
    group = _grouping(np, columns)
    try:
        has_sorted, pred_sorted = plan(np, columns, group, state)
    except _VectorizationUnsupported:
        return None
    if count_simulation:
        SIMULATION_COUNTER.increment()
    n = group.n
    has = np.empty(n, dtype=bool)
    pred = np.empty(n, dtype=np.int64)
    has[group.order] = has_sorted
    pred[group.order] = pred_sorted
    correct = has & (pred == columns.values)

    correct_pcs, _, correct_counts = _first_occurrence_order(np, columns.pcs[correct])
    result = PredictorResult(
        predictor=predictor_name,
        total=n,
        correct=int(correct.sum()),
        category_total=dict(_category_totals(np, columns)),
        category_correct=_category_counts(np, columns, columns.category_codes[correct]),
        pc_correct=dict(zip(correct_pcs.tolist(), correct_counts.tolist())),
    )
    return PredictorShard(
        result=result,
        correctness=np.packbits(correct, bitorder="little").tobytes(),
        record_count=n,
    )


def merge_shards_vector(
    columns: "TraceColumns", shards: Mapping[str, "PredictorShard"]
) -> "SimulationResult | None":
    """Vectorized :func:`~repro.simulation.simulator.merge_shards`.

    The caller validates shard/record counts first; ``None`` means the
    merge is outside the vector path (no numpy, or more than 62
    predictors, whose joint outcomes no longer pack into one int64 key).
    """
    from repro.simulation.simulator import SimulationResult

    np = numpy_or_none()
    names = tuple(shards)
    if np is None or len(names) > 62:
        return None
    n = len(columns)

    key = np.zeros(n, dtype=np.uint64)
    for position, name in enumerate(names):
        bits = np.unpackbits(
            np.frombuffer(shards[name].correctness, dtype=np.uint8),
            count=n,
            bitorder="little",
        )
        key |= bits.astype(np.uint64) << np.uint64(position)

    width = len(names)

    def outcome_tuple(packed: int) -> tuple[bool, ...]:
        return tuple(bool(packed >> position & 1) for position in range(width))

    def subset_dict(keys) -> dict:
        unique, _, counts = _first_occurrence_order(np, keys)
        return {
            outcome_tuple(packed): count
            for packed, count in zip(unique.tolist(), counts.tolist())
        }

    subset_counts = subset_dict(key)
    subset_by_category: dict = {}
    category_codes, _, _ = _first_occurrence_order(np, columns.category_codes)
    for code in category_codes:
        mask = columns.category_codes == code
        subset_by_category[columns.categories[int(code)]] = subset_dict(key[mask])

    unique_pcs, first_seen, pc_counts = _first_occurrence_order(np, columns.pcs)
    pc_total = dict(zip(unique_pcs.tolist(), pc_counts.tolist()))
    first_codes = columns.category_codes[first_seen].tolist()
    pc_category = {
        pc: columns.categories[code]
        for pc, code in zip(unique_pcs.tolist(), first_codes)
    }
    return SimulationResult(
        trace_name=columns.name,
        predictor_names=names,
        total_records=n,
        results={name: shards[name].result for name in names},
        pc_total=pc_total,
        pc_category=pc_category,
        subset_counts=subset_counts,
        subset_counts_by_category=subset_by_category,
    )



