"""Prediction simulation harness and the paper's analyses.

The simulator follows the paper's idealised methodology: unbounded prediction
tables indexed by PC only, immediate table update with the true value after
every prediction, and accounting over all register-writing instructions.
On top of the raw simulation results the package provides the analyses of
Section 4: per-category accuracy, predicted-set correlation (Figure 8),
cumulative FCM-over-stride improvement (Figure 9), unique-value profiles
(Figure 10) and the sensitivity studies (Tables 6-7, Figure 11).
"""

from repro.simulation.simulator import (
    SIMULATION_COUNTER,
    PredictionSimulator,
    PredictorResult,
    PredictorShard,
    SimulationResult,
    merge_shards,
    simulate_shard,
    simulate_trace,
)
from repro.simulation.metrics import AccuracyReport, build_accuracy_report, arithmetic_mean
from repro.simulation.correlation import CorrelationBreakdown, correlation_breakdown, SUBSET_LABELS
from repro.simulation.improvement import ImprovementCurve, improvement_curve
from repro.simulation.value_profile import ValueProfile, value_profile, VALUE_BUCKETS
from repro.simulation.sensitivity import (
    order_sensitivity,
    input_sensitivity,
    flag_sensitivity,
)
from repro.simulation.campaign import (
    campaign_scale_for,
    run_campaign,
    set_campaign_defaults,
)

__all__ = [
    "SIMULATION_COUNTER",
    "PredictionSimulator",
    "PredictorResult",
    "PredictorShard",
    "SimulationResult",
    "merge_shards",
    "simulate_shard",
    "simulate_trace",
    "AccuracyReport",
    "build_accuracy_report",
    "arithmetic_mean",
    "CorrelationBreakdown",
    "correlation_breakdown",
    "SUBSET_LABELS",
    "ImprovementCurve",
    "improvement_curve",
    "ValueProfile",
    "value_profile",
    "VALUE_BUCKETS",
    "order_sensitivity",
    "input_sensitivity",
    "flag_sensitivity",
    "run_campaign",
    "campaign_scale_for",
    "set_campaign_defaults",
]
