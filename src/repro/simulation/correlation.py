"""Predicted-set correlation analysis (Figure 8 of the paper).

Three predictors — last value (``l``), stride (``s``) and fcm (``f``) — are
simulated in lockstep and every prediction is assigned to one of eight
mutually exclusive subsets according to which predictors got it right:
``np`` (none), ``l``, ``s``, ``f`` (exactly one), ``ls``, ``lf``, ``sf``
(exactly two) and ``lsf`` (all three).  The fractions of all predictions in
each subset, overall and per instruction category, are what Figure 8 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import SimulationError
from repro.isa.opcodes import Category, REPORTED_CATEGORIES
from repro.simulation.metrics import arithmetic_mean
from repro.simulation.simulator import SimulationResult

#: Subset labels in the order the paper's Figure 8 legend lists them.
SUBSET_LABELS: tuple[str, ...] = ("np", "l", "s", "ls", "f", "lf", "sf", "lsf")

#: Mapping from a (last, stride, fcm) correctness tuple to its subset label.
_OUTCOME_TO_LABEL: dict[tuple[bool, bool, bool], str] = {
    (False, False, False): "np",
    (True, False, False): "l",
    (False, True, False): "s",
    (True, True, False): "ls",
    (False, False, True): "f",
    (True, False, True): "lf",
    (False, True, True): "sf",
    (True, True, True): "lsf",
}


@dataclass
class CorrelationBreakdown:
    """Fractions (%) of predictions falling into each correctness subset."""

    #: overall[label] -> percentage of all predictions
    overall: dict[str, float]
    #: by_category[category][label] -> percentage of that category's predictions
    by_category: dict[Category, dict[str, float]]

    def fraction_correct_by_any(self) -> float:
        """Percentage of predictions correct under at least one predictor."""
        return 100.0 - self.overall["np"]

    def fraction_only_fcm(self) -> float:
        """Percentage captured by fcm alone (the paper's >20% observation)."""
        return self.overall["f"]

    def fraction_all_three(self) -> float:
        """Percentage captured by every predictor (the paper's ~40%)."""
        return self.overall["lsf"]

    def fraction_missed_by_fcm_caught_by_others(self) -> float:
        """Correct predictions fcm misses but last-value/stride catch (<5%)."""
        return self.overall["l"] + self.overall["s"] + self.overall["ls"]


def _percentages(
    counts: Mapping[tuple[bool, ...], int], indices: tuple[int, int, int]
) -> dict[str, float]:
    total = sum(counts.values())
    percentages = {label: 0.0 for label in SUBSET_LABELS}
    if total == 0:
        return percentages
    for outcome, count in counts.items():
        projected = tuple(bool(outcome[index]) for index in indices)
        label = _OUTCOME_TO_LABEL[projected]
        percentages[label] += 100.0 * count / total
    return percentages


def correlation_breakdown(
    simulation: SimulationResult,
    predictors: tuple[str, str, str] = ("l", "s2", "fcm3"),
    categories: tuple[Category, ...] = REPORTED_CATEGORIES,
) -> CorrelationBreakdown:
    """Compute the Figure 8 subsets for one benchmark's simulation.

    ``predictors`` names the (last value, stride, fcm) triple, in that order;
    other predictors present in the simulation are marginalised away, so the
    breakdown can be computed from the standard five-predictor campaign
    without re-simulating.
    """
    try:
        indices = tuple(simulation.predictor_names.index(name) for name in predictors)
    except ValueError as exc:
        raise SimulationError(
            f"simulation lacks one of {predictors}; has {simulation.predictor_names}"
        ) from exc
    overall = _percentages(simulation.subset_counts, indices)
    by_category = {
        category: _percentages(simulation.subset_counts_by_category.get(category, {}), indices)
        for category in categories
    }
    return CorrelationBreakdown(overall=overall, by_category=by_category)


def average_correlation(
    breakdowns: Sequence[CorrelationBreakdown],
    categories: tuple[Category, ...] = REPORTED_CATEGORIES,
) -> CorrelationBreakdown:
    """Average several per-benchmark breakdowns (arithmetic mean, as the paper)."""
    if not breakdowns:
        raise SimulationError("cannot average zero correlation breakdowns")
    overall = {
        label: arithmetic_mean(breakdown.overall[label] for breakdown in breakdowns)
        for label in SUBSET_LABELS
    }
    by_category = {
        category: {
            label: arithmetic_mean(
                breakdown.by_category.get(category, {}).get(label, 0.0)
                for breakdown in breakdowns
            )
            for label in SUBSET_LABELS
        }
        for category in categories
    }
    return CorrelationBreakdown(overall=overall, by_category=by_category)
