"""Predictor-state snapshot, restore and boundary replay.

Intra-trace sharding (:mod:`repro.engine.sharding`) splits one trace into
windows and runs each window as an independent work unit.  A window that
does not start at record 0 must begin from exactly the predictor state the
preceding records would have produced — otherwise the composed outcome
diverges from the monolithic run.  This module provides the three pieces
that make the handoff exact:

* :func:`replay_records` — advance a fresh predictor over a trace prefix
  using ``update()`` only.  Every registered predictor's ``observe()`` is
  ``predict`` (pure) → stats accounting (never read by ``predict``) →
  ``update``, and :class:`~repro.core.hybrid.HybridPredictor.observe`
  additionally touches only per-component selection tallies — so
  update-only replay reproduces the *prediction-affecting* state of a full
  simulation bit-exactly, at roughly half the cost.
* :func:`snapshot_predictor` — serialize that state into a JSON-safe dict.
  Every mapping is rendered as a ``[[key, value], ...]`` pairs list so the
  original *insertion order* survives any transport (in-process, pickle,
  or the remote backend's JSON wire).  Order is load-bearing:
  :func:`~repro.core.fcm.select_maximum_count` breaks count ties by dict
  iteration order, so a reordered table would change predictions.
* :func:`restore_predictor` — rebuild a fresh predictor's tables from a
  snapshot, inserting keys in the recorded order.

Snapshots feed both kernels: the scalar window path restores a predictor
object and runs the reference observe loop, while the vector kernel's
plans (:mod:`repro.simulation.vectorized`) consume the snapshot dict
directly — seeding per-group state arrays and virtual-record prefixes —
so ``--kernel vector`` composes with ``--shard-window``.

Snapshots are a transport format between one replay and the windows it
feeds, not a cache format: they are never persisted, so the encoding can
evolve freely with the predictor classes (both travel inside one
``TASK_FORMAT_VERSION``-pinned task payload).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.base import ValuePredictor
from repro.core.blending import BlendedFcmPredictor, _BlendedEntry
from repro.core.fcm import FcmPredictor, _FcmEntry
from repro.core.hybrid import HybridPredictor, PcChooser, _ScoreEntry
from repro.core.last_value import LastValuePredictor, _LastValueEntry
from repro.core.stride import _StrideEntry, _StridePredictorBase
from repro.errors import SimulationError


def replay_records(predictor: ValuePredictor, records: Iterable) -> None:
    """Advance ``predictor`` over ``records`` with update-only replay.

    Equivalent to calling ``observe`` per record as far as any future
    prediction is concerned (see the module docstring), but skips the
    predict/compare half of the loop.  Never touches the process-wide
    ``SIMULATION_COUNTER`` — a replay is bookkeeping for a window handoff,
    not a simulation.
    """
    update = predictor.update
    for record in records:
        update(record.pc, record.value, record.category)


# --------------------------------------------------------------------------- #
# Snapshot — JSON-safe, insertion-order-preserving
# --------------------------------------------------------------------------- #
def snapshot_predictor(predictor: ValuePredictor) -> dict:
    """Serialize a predictor's prediction-affecting state to a JSON-safe dict."""
    if isinstance(predictor, HybridPredictor):
        return {
            "components": [
                snapshot_predictor(component.predictor)
                for component in predictor.components
            ],
            "chooser": _snapshot_chooser(predictor.chooser),
        }
    if isinstance(predictor, LastValuePredictor):
        return {
            "table": [
                [pc, [e.value, e.counter, e.candidate, e.candidate_run]]
                for pc, e in predictor._table.items()
            ]
        }
    if isinstance(predictor, _StridePredictorBase):
        return {
            "table": [
                [pc, [e.last_value, e.stride, e.counter, e.transient_stride]]
                for pc, e in predictor._table.items()
            ]
        }
    if isinstance(predictor, BlendedFcmPredictor):
        return {
            "table": [
                [
                    pc,
                    {
                        "history": list(e.history),
                        "tables": [_encode_counts(table) for table in e.tables],
                        "recent": [_encode_recent(recent) for recent in e.recent],
                    },
                ]
                for pc, e in predictor._table.items()
            ]
        }
    if isinstance(predictor, FcmPredictor):
        return {
            "table": [
                [
                    pc,
                    {
                        "history": list(e.history),
                        "counts": _encode_counts(e.counts),
                        "recent": _encode_recent(e.recent),
                    },
                ]
                for pc, e in predictor._table.items()
            ]
        }
    raise SimulationError(
        f"predictor {getattr(predictor, 'name', '?')!r} "
        f"({type(predictor).__name__}) has no state codec; intra-trace "
        f"sharding cannot hand its state across window boundaries"
    )


def restore_predictor(predictor: ValuePredictor, state: dict) -> None:
    """Rebuild a fresh predictor's tables from :func:`snapshot_predictor` output.

    Keys are inserted in the snapshot's recorded order, reproducing the
    dict iteration orders (and therefore the tie-breaking) of a predictor
    that processed the prefix natively.
    """
    if isinstance(predictor, HybridPredictor):
        components = state["components"]
        if len(components) != len(predictor.components):
            raise SimulationError(
                f"hybrid state carries {len(components)} component(s), "
                f"predictor {predictor.name!r} has {len(predictor.components)}"
            )
        for component, component_state in zip(predictor.components, components):
            restore_predictor(component.predictor, component_state)
        _restore_chooser(predictor.chooser, state["chooser"])
        return
    if isinstance(predictor, LastValuePredictor):
        predictor._table = {
            pc: _LastValueEntry(
                value=fields[0],
                counter=fields[1],
                candidate=fields[2],
                candidate_run=fields[3],
            )
            for pc, fields in state["table"]
        }
        return
    if isinstance(predictor, _StridePredictorBase):
        predictor._table = {
            pc: _StrideEntry(
                last_value=fields[0],
                stride=fields[1],
                counter=fields[2],
                transient_stride=fields[3],
            )
            for pc, fields in state["table"]
        }
        return
    if isinstance(predictor, BlendedFcmPredictor):
        predictor._table = {
            pc: _BlendedEntry(
                history=list(entry["history"]),
                tables=[_decode_counts(table) for table in entry["tables"]],
                recent=[_decode_recent(recent) for recent in entry["recent"]],
            )
            for pc, entry in state["table"]
        }
        return
    if isinstance(predictor, FcmPredictor):
        predictor._table = {
            pc: _FcmEntry(
                history=list(entry["history"]),
                counts=_decode_counts(entry["counts"]),
                recent=_decode_recent(entry["recent"]),
            )
            for pc, entry in state["table"]
        }
        return
    raise SimulationError(
        f"predictor {getattr(predictor, 'name', '?')!r} "
        f"({type(predictor).__name__}) has no state codec; intra-trace "
        f"sharding cannot hand its state across window boundaries"
    )


# --------------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------------- #
def _encode_counts(counts: dict) -> list:
    # context tuple -> {value -> count}, both levels order-preserving.
    return [
        [list(context), [[value, count] for value, count in values.items()]]
        for context, values in counts.items()
    ]


def _decode_counts(encoded: list) -> dict:
    return {
        tuple(context): {value: count for value, count in values}
        for context, values in encoded
    }


def _encode_recent(recent: dict) -> list:
    return [[list(context), value] for context, value in recent.items()]


def _decode_recent(encoded: list) -> dict:
    return {tuple(context): value for context, value in encoded}


def _snapshot_chooser(chooser) -> dict | None:
    # CategoryChooser and OracleChooser are stateless: their selection is a
    # pure function of the inputs, so there is nothing to hand off.
    if isinstance(chooser, PcChooser):
        return {
            "table": [
                [pc, list(entry.scores)] for pc, entry in chooser._table.items()
            ]
        }
    return None


def _restore_chooser(chooser, state: dict | None) -> None:
    if isinstance(chooser, PcChooser):
        if state is None:
            raise SimulationError("hybrid state is missing its chooser table")
        chooser._table = {
            pc: _ScoreEntry(scores=list(scores)) for pc, scores in state["table"]
        }
    elif state is not None:
        raise SimulationError(
            f"hybrid state carries a chooser table but {type(chooser).__name__} "
            f"is stateless"
        )
