"""Accuracy reporting across benchmarks and instruction categories.

The paper reports prediction accuracy per benchmark (Figure 3) and per
instruction category (Figures 4-7), and averages across benchmarks with the
arithmetic mean "so each benchmark effectively contributes the same number of
total predictions".  :class:`AccuracyReport` packages those views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.isa.opcodes import Category, REPORTED_CATEGORIES
from repro.simulation.simulator import SimulationResult


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty input."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


@dataclass
class AccuracyReport:
    """Accuracy (%) per benchmark and per predictor, overall and by category."""

    predictor_names: tuple[str, ...]
    benchmark_names: tuple[str, ...]
    #: overall[benchmark][predictor] -> accuracy %
    overall: dict[str, dict[str, float]]
    #: by_category[category][benchmark][predictor] -> accuracy %
    by_category: dict[Category, dict[str, dict[str, float]]]

    def mean_overall(self, predictor: str) -> float:
        """Arithmetic mean accuracy of one predictor over all benchmarks."""
        return arithmetic_mean(
            self.overall[benchmark][predictor] for benchmark in self.benchmark_names
        )

    def mean_by_category(self, predictor: str, category: Category) -> float:
        """Mean accuracy of one predictor for one category over benchmarks."""
        rows = self.by_category.get(category, {})
        return arithmetic_mean(
            rows[benchmark][predictor] for benchmark in self.benchmark_names if benchmark in rows
        )

    def benchmark_series(self, predictor: str, category: Category | None = None) -> list[float]:
        """Per-benchmark accuracy series for one predictor (a figure's bars)."""
        if category is None:
            return [self.overall[benchmark][predictor] for benchmark in self.benchmark_names]
        rows = self.by_category.get(category, {})
        return [
            rows.get(benchmark, {}).get(predictor, 0.0) for benchmark in self.benchmark_names
        ]


def build_accuracy_report(
    simulations: Mapping[str, SimulationResult],
    categories: tuple[Category, ...] = REPORTED_CATEGORIES,
) -> AccuracyReport:
    """Aggregate per-benchmark simulation results into an accuracy report."""
    benchmark_names = tuple(simulations)
    predictor_names: tuple[str, ...] = ()
    overall: dict[str, dict[str, float]] = {}
    by_category: dict[Category, dict[str, dict[str, float]]] = {
        category: {} for category in categories
    }
    for benchmark, simulation in simulations.items():
        predictor_names = simulation.predictor_names
        overall[benchmark] = {
            name: simulation.results[name].accuracy for name in simulation.predictor_names
        }
        for category in categories:
            by_category[category][benchmark] = {
                name: simulation.results[name].category_accuracy(category)
                for name in simulation.predictor_names
            }
    return AccuracyReport(
        predictor_names=predictor_names,
        benchmark_names=benchmark_names,
        overall=overall,
        by_category=by_category,
    )
