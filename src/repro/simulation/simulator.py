"""Trace-driven prediction simulation (Section 3 of the paper).

For every record of a value trace and every predictor under study the
simulator performs the paper's loop: look up the prediction for the record's
PC, compare it with the true value, then immediately update the table with
the true value.  All predictors see the same trace in lockstep, which also
lets the simulator tabulate the joint outcomes needed by the predicted-set
correlation analysis (Figure 8).

The same accounting is also available *split per predictor*: because every
predictor's table only ever sees its own updates, simulating one predictor
alone over a trace yields exactly the per-record outcomes it would have in
the lockstep loop.  :func:`simulate_shard` produces one such
:class:`PredictorShard` (per-predictor totals plus the packed per-record
correctness bits) and :func:`merge_shards` recombines shards into the same
joint :class:`SimulationResult` — including ``subset_counts`` — that the
lockstep loop produces.  The execution engine (:mod:`repro.engine`) relies
on this to scatter (trace, predictor) pairs across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.base import ValuePredictor
from repro.core.registry import create_predictor
from repro.errors import SimulationError
from repro.isa.opcodes import Category
from repro.trace.stream import ValueTrace


class SimulationCounter:
    """Counts (trace, predictor) simulations actually performed.

    The engine's warm-cache tests hook this to assert that a cached rerun
    performs **zero** simulations in-process.  Worker subprocesses keep
    their own copy, so under ``jobs > 1`` consult the engine's
    :class:`~repro.engine.scheduler.EngineStats` instead.
    """

    def __init__(self) -> None:
        self.count = 0

    def increment(self, amount: int = 1) -> None:
        self.count += amount

    def reset(self) -> None:
        self.count = 0


#: Process-wide counter incremented once per (trace, predictor) simulation.
SIMULATION_COUNTER = SimulationCounter()


@dataclass
class PredictorResult:
    """Accuracy bookkeeping for one predictor over one trace."""

    predictor: str
    total: int = 0
    correct: int = 0
    category_total: dict[Category, int] = field(default_factory=dict)
    category_correct: dict[Category, int] = field(default_factory=dict)
    pc_correct: dict[int, int] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Overall accuracy in percent."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.correct / self.total

    def category_accuracy(self, category: Category) -> float:
        """Accuracy in percent for one instruction category."""
        total = self.category_total.get(category, 0)
        if total == 0:
            return 0.0
        return 100.0 * self.category_correct.get(category, 0) / total


@dataclass
class SimulationResult:
    """Joint result of simulating several predictors over one trace."""

    trace_name: str
    predictor_names: tuple[str, ...]
    total_records: int
    results: dict[str, PredictorResult]
    pc_total: dict[int, int]
    pc_category: dict[int, Category]
    #: Joint outcome counts: tuple of per-predictor correctness -> count.
    subset_counts: dict[tuple[bool, ...], int]
    #: Joint outcome counts per instruction category.
    subset_counts_by_category: dict[Category, dict[tuple[bool, ...], int]]

    def result_for(self, predictor_name: str) -> PredictorResult:
        """Return the per-predictor result, raising on unknown names."""
        try:
            return self.results[predictor_name]
        except KeyError as exc:
            raise SimulationError(
                f"no result for predictor {predictor_name!r}; simulated: {self.predictor_names}"
            ) from exc


class PredictionSimulator:
    """Runs one or more predictors over value traces."""

    def __init__(self, predictors: dict[str, ValuePredictor]) -> None:
        if not predictors:
            raise SimulationError("at least one predictor is required")
        self.predictors = predictors

    @classmethod
    def from_names(cls, names: tuple[str, ...] | list[str]) -> "PredictionSimulator":
        """Build a simulator with fresh predictors from registry names."""
        return cls({name: create_predictor(name) for name in names})

    def run(self, trace: ValueTrace) -> SimulationResult:
        """Simulate every configured predictor over ``trace``."""
        names = tuple(self.predictors)
        SIMULATION_COUNTER.increment(len(names))
        predictor_objects = [self.predictors[name] for name in names]
        results = {name: PredictorResult(predictor=name) for name in names}
        result_objects = [results[name] for name in names]
        pc_total: dict[int, int] = {}
        pc_category: dict[int, Category] = {}
        subset_counts: dict[tuple[bool, ...], int] = {}
        subset_by_category: dict[Category, dict[tuple[bool, ...], int]] = {}

        for record in trace.records:
            pc = record.pc
            value = record.value
            category = record.category
            pc_total[pc] = pc_total.get(pc, 0) + 1
            pc_category.setdefault(pc, category)
            outcome: list[bool] = []
            for predictor, result in zip(predictor_objects, result_objects):
                correct = predictor.observe(pc, value, category)
                outcome.append(correct)
                result.total += 1
                result.category_total[category] = result.category_total.get(category, 0) + 1
                if correct:
                    result.correct += 1
                    result.category_correct[category] = (
                        result.category_correct.get(category, 0) + 1
                    )
                    result.pc_correct[pc] = result.pc_correct.get(pc, 0) + 1
            key = tuple(outcome)
            subset_counts[key] = subset_counts.get(key, 0) + 1
            per_category = subset_by_category.setdefault(category, {})
            per_category[key] = per_category.get(key, 0) + 1

        return SimulationResult(
            trace_name=trace.name,
            predictor_names=names,
            total_records=len(trace),
            results=results,
            pc_total=pc_total,
            pc_category=pc_category,
            subset_counts=subset_counts,
            subset_counts_by_category=subset_by_category,
        )


def simulate_trace(
    trace: ValueTrace,
    predictor_names: tuple[str, ...] | list[str],
    kernel: str | None = None,
) -> SimulationResult:
    """Convenience wrapper: fresh predictors by name, one trace, one result.

    ``kernel`` selects the execution strategy (see
    :mod:`repro.simulation.vectorized`): ``"scalar"`` runs the reference
    lockstep loop, ``"vector"`` simulates per-predictor shards on the
    columnar kernel and merges them, ``"auto"`` picks vector when numpy is
    importable and ``None`` defers to the ``REPRO_KERNEL`` environment
    variable.  Results are bit-identical either way.
    """
    from repro.simulation.vectorized import resolve_kernel

    names = tuple(predictor_names)
    if names and resolve_kernel(kernel) == "vector":
        shards = {name: simulate_shard(trace, name, kernel="vector") for name in names}
        return merge_shards(trace, shards, kernel="vector")
    return PredictionSimulator.from_names(names).run(trace)


# --------------------------------------------------------------------------- #
# Split accounting: one predictor at a time, recombined losslessly
# --------------------------------------------------------------------------- #
def pack_outcomes(outcomes: Iterable[bool]) -> bytes:
    """Pack a per-record correctness sequence into bits (LSB-first)."""
    packed = bytearray()
    current = 0
    filled = 0
    for outcome in outcomes:
        if outcome:
            current |= 1 << filled
        filled += 1
        if filled == 8:
            packed.append(current)
            current = 0
            filled = 0
    if filled:
        packed.append(current)
    return bytes(packed)


def outcome_at(packed: bytes, index: int) -> bool:
    """Read back one correctness bit written by :func:`pack_outcomes`."""
    return bool(packed[index >> 3] & (1 << (index & 7)))


@dataclass
class PredictorShard:
    """One predictor's complete outcome over one trace.

    Besides the aggregate :class:`PredictorResult` this keeps the packed
    per-record correctness bits, which is exactly the extra information
    needed to rebuild the joint ``subset_counts`` of the lockstep loop when
    several shards over the same trace are merged.
    """

    result: PredictorResult
    correctness: bytes
    record_count: int


def simulate_shard(
    trace: ValueTrace, predictor_name: str, kernel: str | None = None
) -> PredictorShard:
    """Simulate a single fresh predictor over ``trace``.

    Produces bit-identical per-record outcomes to the same predictor's slot
    in the lockstep loop: predictor tables are private, so no other
    predictor can influence them.  Under the ``"vector"`` kernel (see
    :func:`simulate_trace`) the columnar kernel computes the same shard —
    identical down to the dict insertion orders the cache serialises.
    Every registered configuration has a vector plan; this scalar loop
    remains the golden reference and the fallback when a plan declines at
    runtime (e.g. a pathological trace tripping a depth guard).
    """
    from repro.simulation.vectorized import resolve_kernel

    if resolve_kernel(kernel) == "vector":
        from repro.simulation.vectorized import simulate_shard_vector
        from repro.trace.io import trace_columns

        columns = trace_columns(trace)
        if columns is not None:
            shard = simulate_shard_vector(columns, predictor_name)
            if shard is not None:
                return shard
    SIMULATION_COUNTER.increment()
    predictor = create_predictor(predictor_name)
    result = PredictorResult(predictor=predictor_name)
    outcomes: list[bool] = []
    for record in trace.records:
        category = record.category
        correct = predictor.observe(record.pc, record.value, category)
        outcomes.append(correct)
        result.total += 1
        result.category_total[category] = result.category_total.get(category, 0) + 1
        if correct:
            result.correct += 1
            result.category_correct[category] = result.category_correct.get(category, 0) + 1
            result.pc_correct[record.pc] = result.pc_correct.get(record.pc, 0) + 1
    return PredictorShard(
        result=result, correctness=pack_outcomes(outcomes), record_count=len(trace)
    )


def merge_shards(
    trace: ValueTrace,
    shards: Mapping[str, PredictorShard],
    kernel: str | None = None,
) -> SimulationResult:
    """Recombine per-predictor shards into the joint lockstep result.

    The shard mapping's order fixes ``predictor_names`` and therefore the
    position of each predictor in the ``subset_counts`` outcome tuples.
    Under the ``"vector"`` kernel the per-record unpack/tally loop runs as
    array passes with identical output (see :func:`simulate_trace`).
    """
    from repro.simulation.vectorized import resolve_kernel

    if not shards:
        raise SimulationError("at least one shard is required to merge")
    names = tuple(shards)
    for name in names:
        if shards[name].record_count != len(trace):
            raise SimulationError(
                f"shard for {name!r} covers {shards[name].record_count} records, "
                f"trace {trace.name!r} has {len(trace)}"
            )
    if resolve_kernel(kernel) == "vector":
        from repro.simulation.vectorized import merge_shards_vector
        from repro.trace.io import trace_columns

        columns = trace_columns(trace)
        if columns is not None:
            merged = merge_shards_vector(columns, shards)
            if merged is not None:
                return merged
    packed = [shards[name].correctness for name in names]
    pc_total: dict[int, int] = {}
    pc_category: dict[int, Category] = {}
    subset_counts: dict[tuple[bool, ...], int] = {}
    subset_by_category: dict[Category, dict[tuple[bool, ...], int]] = {}
    for index, record in enumerate(trace.records):
        pc_total[record.pc] = pc_total.get(record.pc, 0) + 1
        pc_category.setdefault(record.pc, record.category)
        key = tuple(outcome_at(bits, index) for bits in packed)
        subset_counts[key] = subset_counts.get(key, 0) + 1
        per_category = subset_by_category.setdefault(record.category, {})
        per_category[key] = per_category.get(key, 0) + 1
    return SimulationResult(
        trace_name=trace.name,
        predictor_names=names,
        total_records=len(trace),
        results={name: shards[name].result for name in names},
        pc_total=pc_total,
        pc_category=pc_category,
        subset_counts=subset_counts,
        subset_counts_by_category=subset_by_category,
    )
