"""Trace-driven prediction simulation (Section 3 of the paper).

For every record of a value trace and every predictor under study the
simulator performs the paper's loop: look up the prediction for the record's
PC, compare it with the true value, then immediately update the table with
the true value.  All predictors see the same trace in lockstep, which also
lets the simulator tabulate the joint outcomes needed by the predicted-set
correlation analysis (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import ValuePredictor
from repro.core.registry import create_predictor
from repro.errors import SimulationError
from repro.isa.opcodes import Category
from repro.trace.stream import ValueTrace


@dataclass
class PredictorResult:
    """Accuracy bookkeeping for one predictor over one trace."""

    predictor: str
    total: int = 0
    correct: int = 0
    category_total: dict[Category, int] = field(default_factory=dict)
    category_correct: dict[Category, int] = field(default_factory=dict)
    pc_correct: dict[int, int] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Overall accuracy in percent."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.correct / self.total

    def category_accuracy(self, category: Category) -> float:
        """Accuracy in percent for one instruction category."""
        total = self.category_total.get(category, 0)
        if total == 0:
            return 0.0
        return 100.0 * self.category_correct.get(category, 0) / total


@dataclass
class SimulationResult:
    """Joint result of simulating several predictors over one trace."""

    trace_name: str
    predictor_names: tuple[str, ...]
    total_records: int
    results: dict[str, PredictorResult]
    pc_total: dict[int, int]
    pc_category: dict[int, Category]
    #: Joint outcome counts: tuple of per-predictor correctness -> count.
    subset_counts: dict[tuple[bool, ...], int]
    #: Joint outcome counts per instruction category.
    subset_counts_by_category: dict[Category, dict[tuple[bool, ...], int]]

    def result_for(self, predictor_name: str) -> PredictorResult:
        """Return the per-predictor result, raising on unknown names."""
        try:
            return self.results[predictor_name]
        except KeyError as exc:
            raise SimulationError(
                f"no result for predictor {predictor_name!r}; simulated: {self.predictor_names}"
            ) from exc


class PredictionSimulator:
    """Runs one or more predictors over value traces."""

    def __init__(self, predictors: dict[str, ValuePredictor]) -> None:
        if not predictors:
            raise SimulationError("at least one predictor is required")
        self.predictors = predictors

    @classmethod
    def from_names(cls, names: tuple[str, ...] | list[str]) -> "PredictionSimulator":
        """Build a simulator with fresh predictors from registry names."""
        return cls({name: create_predictor(name) for name in names})

    def run(self, trace: ValueTrace) -> SimulationResult:
        """Simulate every configured predictor over ``trace``."""
        names = tuple(self.predictors)
        predictor_objects = [self.predictors[name] for name in names]
        results = {name: PredictorResult(predictor=name) for name in names}
        result_objects = [results[name] for name in names]
        pc_total: dict[int, int] = {}
        pc_category: dict[int, Category] = {}
        subset_counts: dict[tuple[bool, ...], int] = {}
        subset_by_category: dict[Category, dict[tuple[bool, ...], int]] = {}

        for record in trace.records:
            pc = record.pc
            value = record.value
            category = record.category
            pc_total[pc] = pc_total.get(pc, 0) + 1
            pc_category.setdefault(pc, category)
            outcome: list[bool] = []
            for predictor, result in zip(predictor_objects, result_objects):
                correct = predictor.observe(pc, value, category)
                outcome.append(correct)
                result.total += 1
                result.category_total[category] = result.category_total.get(category, 0) + 1
                if correct:
                    result.correct += 1
                    result.category_correct[category] = (
                        result.category_correct.get(category, 0) + 1
                    )
                    result.pc_correct[pc] = result.pc_correct.get(pc, 0) + 1
            key = tuple(outcome)
            subset_counts[key] = subset_counts.get(key, 0) + 1
            per_category = subset_by_category.setdefault(category, {})
            per_category[key] = per_category.get(key, 0) + 1

        return SimulationResult(
            trace_name=trace.name,
            predictor_names=names,
            total_records=len(trace),
            results=results,
            pc_total=pc_total,
            pc_category=pc_category,
            subset_counts=subset_counts,
            subset_counts_by_category=subset_by_category,
        )


def simulate_trace(
    trace: ValueTrace, predictor_names: tuple[str, ...] | list[str]
) -> SimulationResult:
    """Convenience wrapper: fresh predictors by name, one trace, one result."""
    return PredictionSimulator.from_names(tuple(predictor_names)).run(trace)
