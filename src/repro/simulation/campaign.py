"""Whole-suite simulation campaigns with caching.

Most of the paper's evaluation artefacts (Tables 2, 4, 5 and Figures 3-10)
are different views of the *same* underlying run: every benchmark traced
once, every trace fed to the same predictor line-up.  A campaign performs
that run once and the experiment modules share it; results are cached by
``(scale, predictors, benchmarks)`` so regenerating several tables and
figures in one process does not re-simulate the suite each time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.registry import PAPER_PREDICTORS
from repro.simulation.simulator import SimulationResult, simulate_trace
from repro.trace.stream import TraceStatistics, ValueTrace
from repro.workloads.suite import BENCHMARK_ORDER, run_suite

#: Default scale used by experiments when none is specified.  Chosen so a
#: full campaign (7 benchmarks x 5 predictors) completes in well under a
#: minute of pure-Python simulation while leaving every predictor deep in
#: steady state; pass a different scale to trade time for trace length.
DEFAULT_SCALE = 1.0

#: Reduced scale used by unit/integration tests and quick CLI runs.  Large
#: enough that the paper's qualitative ordering (last value < stride < fcm)
#: already holds, small enough to keep the test suite fast.
QUICK_SCALE = 0.3


@dataclass
class CampaignResult:
    """Everything produced by one suite-wide run."""

    scale: float
    predictor_names: tuple[str, ...]
    traces: dict[str, ValueTrace]
    statistics: dict[str, TraceStatistics]
    simulations: dict[str, SimulationResult]

    def benchmarks(self) -> tuple[str, ...]:
        return tuple(self.traces)


_CACHE: dict[tuple, CampaignResult] = {}


def campaign_scale_for(profile: str) -> float:
    """Map a profile name (``"default"``/``"quick"``) to a scale factor."""
    return QUICK_SCALE if profile == "quick" else DEFAULT_SCALE


def run_campaign(
    scale: float = DEFAULT_SCALE,
    predictors: tuple[str, ...] = PAPER_PREDICTORS,
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER,
    use_cache: bool = True,
) -> CampaignResult:
    """Trace every benchmark and simulate every predictor over each trace."""
    key = (round(scale, 6), tuple(predictors), tuple(benchmarks))
    if use_cache and key in _CACHE:
        return _CACHE[key]

    runs = run_suite(scale=scale, benchmarks=benchmarks)
    traces = {name: run.trace for name, run in runs.items()}
    statistics = {name: trace.statistics() for name, trace in traces.items()}
    simulations = {
        name: simulate_trace(trace, predictors) for name, trace in traces.items()
    }
    result = CampaignResult(
        scale=scale,
        predictor_names=tuple(predictors),
        traces=traces,
        statistics=statistics,
        simulations=simulations,
    )
    if use_cache:
        _CACHE[key] = result
    return result


def clear_campaign_cache() -> None:
    """Drop all cached campaign results (used by tests)."""
    _CACHE.clear()


def campaign_statistics(campaign: CampaignResult) -> Mapping[str, TraceStatistics]:
    """Convenience accessor kept for symmetry with the experiment modules."""
    return campaign.statistics
