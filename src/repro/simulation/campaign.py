"""Whole-suite simulation campaigns — a façade over the execution engine.

Most of the paper's evaluation artefacts (Tables 2, 4, 5 and Figures 3-10)
are different views of the *same* underlying run: every benchmark traced
once, every trace fed to the same predictor line-up.  :func:`run_campaign`
performs that run through :class:`repro.engine.ExecutionEngine`, which
decomposes it into independent work units, optionally spreads them over a
``multiprocessing`` pool (``jobs``) and backs them with a persistent
on-disk cache (``cache_dir``) shared across processes.

Within one process, results are additionally memoised by
``(scale, predictor fingerprints, benchmarks)`` so regenerating several
tables and figures does not re-simulate the suite each time.  The
fingerprint covers each predictor's *configuration* (not just its registry
name), so re-binding a name to a different configuration cannot serve
stale results.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.core.registry import PAPER_PREDICTORS
from repro.simulation.simulator import SimulationResult
from repro.trace.stream import TraceStatistics, ValueTrace
from repro.workloads.suite import BENCHMARK_ORDER

if TYPE_CHECKING:  # imported lazily at runtime: repro.engine imports this
    # module's CampaignResult, so a top-level import would be circular.
    from repro.engine.progress import ProgressListener
    from repro.engine.scheduler import EngineStats

#: Default scale used by experiments when none is specified.  Chosen so a
#: full campaign (7 benchmarks x 5 predictors) completes in well under a
#: minute of pure-Python simulation while leaving every predictor deep in
#: steady state; pass a different scale to trade time for trace length.
DEFAULT_SCALE = 1.0

#: Reduced scale used by unit/integration tests and quick CLI runs.  Large
#: enough that the paper's qualitative ordering (last value < stride < fcm)
#: already holds, small enough to keep the test suite fast.
QUICK_SCALE = 0.3


@dataclass
class CampaignResult:
    """Everything produced by one suite-wide run."""

    scale: float
    predictor_names: tuple[str, ...]
    traces: dict[str, ValueTrace]
    statistics: dict[str, TraceStatistics]
    simulations: dict[str, SimulationResult]

    def benchmarks(self) -> tuple[str, ...]:
        return tuple(self.traces)


@dataclass
class EngineDefaults:
    """Process-wide engine settings used when ``run_campaign`` and
    ``run_sweep`` callers (e.g. the experiment modules) do not pass their
    own."""

    jobs: int = 1
    cache_dir: str | Path | None = None
    use_cache: bool = True
    cache_format: str = "binary"
    cache_max_bytes: int | None = None
    cache_max_age: float | None = None
    backend: str | None = None
    workers: tuple[str, ...] | None = None
    #: Telemetry sink engines built from the defaults report into
    #: (:class:`repro.engine.telemetry.Telemetry`); ``None`` means the
    #: always-cheap null sink.  The CLI wires ``--telemetry-dir`` here so
    #: experiment entry points record runs without signature changes.
    telemetry: object | None = None
    #: Simulation kernel (``"scalar"``/``"vector"``/``"auto"``); ``None``
    #: defers to the ``REPRO_KERNEL`` environment variable.  Never part of
    #: cache keys — kernels are bit-identical.
    kernel: str | None = None
    #: Intra-trace sharding window (:mod:`repro.engine.sharding`):
    #: ``None`` (off), a positive record count, or ``"auto"``.  Like the
    #: kernel, never part of cache keys — sharded and unsharded runs are
    #: bit-identical.
    shard_window: int | str | None = None


_CACHE: dict[tuple, CampaignResult] = {}
_ENGINE_DEFAULTS = EngineDefaults()
_LAST_STATS: EngineStats | None = None
#: Shared executor backends, keyed by (name, jobs).  Only the persistent
#: backend is stateful enough to be worth sharing: handing every engine
#: built from the process-wide defaults the *same* instance keeps its
#: warm workers alive across campaigns and sweeps (e.g. the tables and
#: figures of one ``repro-vp experiments`` invocation), which is the
#: whole point of that backend.
_SHARED_BACKENDS: dict[tuple[str, int], object] = {}


def campaign_scale_for(profile: str) -> float:
    """Map a profile name (``"default"``/``"quick"``) to a scale factor."""
    return QUICK_SCALE if profile == "quick" else DEFAULT_SCALE


def set_campaign_defaults(
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    use_cache: bool | None = None,
    cache_format: str | None = None,
    cache_max_bytes: int | None = None,
    cache_max_age: float | None = None,
    backend: str | None = None,
    workers: tuple[str, ...] | None = None,
    telemetry: object | None = None,
    kernel: str | None = None,
    shard_window: int | str | None = None,
) -> None:
    """Configure the engine used by default for subsequent campaigns/sweeps.

    The CLI routes ``--jobs``/``--cache-dir``/``--no-cache``/
    ``--cache-format``/``--cache-max-bytes``/``--cache-max-age``/
    ``--backend``/``--workers``/``--kernel``/``--shard-window`` through
    here so that the experiment entry points — whose signatures only carry
    ``scale`` — still execute on the configured engine.
    """
    if jobs is not None:
        _ENGINE_DEFAULTS.jobs = max(1, int(jobs))
    if cache_dir is not None:
        _ENGINE_DEFAULTS.cache_dir = cache_dir
    if use_cache is not None:
        _ENGINE_DEFAULTS.use_cache = use_cache
    if cache_format is not None:
        _ENGINE_DEFAULTS.cache_format = cache_format
    if cache_max_bytes is not None:
        _ENGINE_DEFAULTS.cache_max_bytes = cache_max_bytes
    if cache_max_age is not None:
        _ENGINE_DEFAULTS.cache_max_age = cache_max_age
    if backend is not None:
        _ENGINE_DEFAULTS.backend = backend
    if workers is not None:
        _ENGINE_DEFAULTS.workers = tuple(workers)
    if telemetry is not None:
        _ENGINE_DEFAULTS.telemetry = telemetry
    if kernel is not None:
        _ENGINE_DEFAULTS.kernel = kernel
    if shard_window is not None:
        _ENGINE_DEFAULTS.shard_window = shard_window


def reset_campaign_defaults() -> None:
    """Restore the serial, cache-less engine defaults (used by tests)."""
    _ENGINE_DEFAULTS.jobs = 1
    _ENGINE_DEFAULTS.cache_dir = None
    _ENGINE_DEFAULTS.use_cache = True
    _ENGINE_DEFAULTS.cache_format = "binary"
    _ENGINE_DEFAULTS.cache_max_bytes = None
    _ENGINE_DEFAULTS.cache_max_age = None
    _ENGINE_DEFAULTS.backend = None
    _ENGINE_DEFAULTS.workers = None
    _ENGINE_DEFAULTS.telemetry = None
    _ENGINE_DEFAULTS.kernel = None
    _ENGINE_DEFAULTS.shard_window = None
    for shared in _SHARED_BACKENDS.values():
        shared.close()
    _SHARED_BACKENDS.clear()


def engine_defaults() -> EngineDefaults:
    """The live process-wide engine defaults (shared with the sweep layer)."""
    return _ENGINE_DEFAULTS


def build_engine(
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
    progress: ProgressListener | None = None,
    cache_format: str | None = None,
    backend: str | None = None,
    workers: tuple[str, ...] | None = None,
    telemetry=None,
    kernel: str | None = None,
    shard_window: int | str | None = None,
):
    """Construct an :class:`ExecutionEngine` from the process-wide defaults.

    Used by :func:`run_campaign` and :func:`repro.engine.sweeps.run_sweep`
    so both entry points resolve unset parameters — including the
    post-run GC bounds and the executor backend — identically.  The
    ``"persistent"`` and ``"remote"`` backends resolve to one
    process-wide shared instance per configuration, so warm local workers
    (and handshaken remote connections) survive across the engines these
    façades build.
    """
    from repro.engine.scheduler import ExecutionEngine

    jobs = _ENGINE_DEFAULTS.jobs if jobs is None else jobs
    backend = _ENGINE_DEFAULTS.backend if backend is None else backend
    workers = _ENGINE_DEFAULTS.workers if workers is None else tuple(workers)
    if backend == "persistent":
        key = (backend, jobs)
        shared = _SHARED_BACKENDS.get(key)
        if shared is None:
            from repro.engine.backends import PersistentWorkerBackend

            shared = PersistentWorkerBackend(jobs)
            _SHARED_BACKENDS[key] = shared
        backend = shared
    elif backend == "remote":
        key = (backend, jobs, workers)
        shared = _SHARED_BACKENDS.get(key)
        if shared is None:
            from repro.engine.backends import resolve_backend

            shared = resolve_backend("remote", jobs, workers=workers)
            _SHARED_BACKENDS[key] = shared
        backend = shared
    return ExecutionEngine(
        jobs=jobs,
        cache_dir=_ENGINE_DEFAULTS.cache_dir if cache_dir is None else cache_dir,
        use_cache=use_cache,
        progress=progress,
        cache_format=_ENGINE_DEFAULTS.cache_format if cache_format is None else cache_format,
        cache_max_bytes=_ENGINE_DEFAULTS.cache_max_bytes,
        cache_max_age=_ENGINE_DEFAULTS.cache_max_age,
        backend=backend,
        workers=workers,
        telemetry=_ENGINE_DEFAULTS.telemetry if telemetry is None else telemetry,
        kernel=_ENGINE_DEFAULTS.kernel if kernel is None else kernel,
        shard_window=(
            _ENGINE_DEFAULTS.shard_window if shard_window is None else shard_window
        ),
    )


def last_engine_stats() -> EngineStats | None:
    """Stats of the most recent engine run (``None`` before any run)."""
    return _LAST_STATS


def record_engine_stats(stats: EngineStats) -> None:
    """Publish an engine run's stats as the most recent (sweeps use this)."""
    global _LAST_STATS
    _LAST_STATS = stats


def run_campaign(
    scale: float = DEFAULT_SCALE,
    predictors: tuple[str, ...] = PAPER_PREDICTORS,
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER,
    use_cache: bool = True,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    progress: ProgressListener | None = None,
    cache_format: str | None = None,
    backend: str | None = None,
    workers: tuple[str, ...] | None = None,
    kernel: str | None = None,
    shard_window: int | str | None = None,
) -> CampaignResult:
    """Trace every benchmark and simulate every predictor over each trace.

    ``use_cache`` governs both the in-process memo and the on-disk cache;
    ``jobs``/``cache_dir``/``backend``/``workers`` default to the
    process-wide engine settings (see :func:`set_campaign_defaults`).
    """
    from repro.engine.fingerprint import predictors_fingerprint

    global _LAST_STATS
    use_cache = use_cache and _ENGINE_DEFAULTS.use_cache
    key = (
        round(scale, 6),
        predictors_fingerprint(predictors),
        tuple(benchmarks),
    )
    if use_cache and key in _CACHE:
        return _CACHE[key]

    engine = build_engine(
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        progress=progress,
        cache_format=cache_format,
        backend=backend,
        workers=workers,
        kernel=kernel,
        shard_window=shard_window,
    )
    try:
        result = engine.run(
            scale=scale, predictors=tuple(predictors), benchmarks=tuple(benchmarks)
        )
    finally:
        engine.close()
    _LAST_STATS = engine.stats
    if use_cache:
        _CACHE[key] = result
    return result


def clear_campaign_cache() -> None:
    """Drop all in-process cached campaign results (used by tests)."""
    _CACHE.clear()


def campaign_statistics(campaign: CampaignResult) -> Mapping[str, TraceStatistics]:
    """Convenience accessor kept for symmetry with the experiment modules."""
    return campaign.statistics
