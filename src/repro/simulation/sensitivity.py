"""Sensitivity studies (Section 4.4: Tables 6-7 and Figure 11).

The paper examines, for the gcc benchmark, how context-based prediction
accuracy responds to (a) different input files, (b) different compilation
flags and (c) the predictor order.  These helpers run the corresponding
sweeps on the synthetic workloads; they work for any benchmark, defaulting
to gcc as the paper does.

Since the sweep refactor these functions are thin façades over
:mod:`repro.engine.sweeps`: each builds the matching :class:`SweepSpec`
and executes it through the campaign execution engine's shared phase
executor, so the studies get ``--jobs`` parallelism, the pluggable
executor backends (``--backend``, including persistent warm workers),
shared-trace deduplication and the persistent result cache for free —
the CLI's engine flags reach them through
:func:`repro.simulation.campaign.set_campaign_defaults`, which
``repro-vp experiments`` wires up before regenerating any sweep-backed
table.  The numbers are bit-identical to the historical serial loops
(one fresh predictor per setting, ``simulate_trace`` per point) on every
backend; the regression tests in ``tests/engine/test_sweeps.py`` pin
that equivalence down for all three axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.sweeps import SweepSpec, run_sweep


@dataclass(frozen=True)
class SensitivityPoint:
    """One row of a sensitivity table."""

    setting: str
    predictions: int
    accuracy: float


def input_sensitivity(
    benchmark: str = "gcc",
    predictor: str = "fcm2",
    scale: float = 1.0,
    inputs: tuple[str, ...] | None = None,
) -> list[SensitivityPoint]:
    """Accuracy of one predictor across the benchmark's input files (Table 6)."""
    spec = SweepSpec.input_study(
        benchmark=benchmark, predictor=predictor, scale=scale, inputs=inputs
    )
    sweep = run_sweep(spec)
    return [
        SensitivityPoint(
            setting=entry.point.input_name,
            predictions=entry.record_count,
            accuracy=entry.accuracy,
        )
        for entry in sweep.points
    ]


def flag_sensitivity(
    benchmark: str = "gcc",
    predictor: str = "fcm2",
    scale: float = 1.0,
    input_name: str | None = None,
    flags: tuple[str, ...] | None = None,
) -> list[SensitivityPoint]:
    """Accuracy of one predictor across flag settings (Table 7)."""
    spec = SweepSpec.flag_study(
        benchmark=benchmark,
        predictor=predictor,
        scale=scale,
        input_name=input_name,
        flags=flags,
    )
    sweep = run_sweep(spec)
    return [
        SensitivityPoint(
            setting=entry.point.flags,
            predictions=entry.record_count,
            accuracy=entry.accuracy,
        )
        for entry in sweep.points
    ]


def order_sensitivity(
    benchmark: str = "gcc",
    orders: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
    scale: float = 1.0,
    input_name: str | None = None,
) -> dict[int, float]:
    """Accuracy of blended fcm predictors of increasing order (Figure 11).

    The trace is collected once and re-simulated with a fresh predictor per
    order, exactly as the paper's experiment holds the input fixed and varies
    only the order — the sweep layer's trace deduplication makes that sharing
    structural rather than incidental.
    """
    spec = SweepSpec.order_study(
        benchmark=benchmark, orders=orders, scale=scale, input_name=input_name
    )
    sweep = run_sweep(spec)
    return {
        order: entry.accuracy for order, entry in zip(orders, sweep.points)
    }
