"""Sensitivity studies (Section 4.4: Tables 6-7 and Figure 11).

The paper examines, for the gcc benchmark, how context-based prediction
accuracy responds to (a) different input files, (b) different compilation
flags and (c) the predictor order.  These helpers run the corresponding
sweeps on the synthetic workloads; they work for any benchmark, defaulting
to gcc as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.simulator import simulate_trace
from repro.workloads.suite import get_workload


@dataclass(frozen=True)
class SensitivityPoint:
    """One row of a sensitivity table."""

    setting: str
    predictions: int
    accuracy: float


def input_sensitivity(
    benchmark: str = "gcc",
    predictor: str = "fcm2",
    scale: float = 1.0,
    inputs: tuple[str, ...] | None = None,
) -> list[SensitivityPoint]:
    """Accuracy of one predictor across the benchmark's input files (Table 6)."""
    workload = get_workload(benchmark)
    names = inputs if inputs is not None else workload.input_sets
    points: list[SensitivityPoint] = []
    for input_name in names:
        trace = workload.trace(scale=scale, input_name=input_name)
        result = simulate_trace(trace, (predictor,))
        points.append(
            SensitivityPoint(
                setting=input_name,
                predictions=len(trace),
                accuracy=result.results[predictor].accuracy,
            )
        )
    return points


def flag_sensitivity(
    benchmark: str = "gcc",
    predictor: str = "fcm2",
    scale: float = 1.0,
    input_name: str | None = None,
    flags: tuple[str, ...] | None = None,
) -> list[SensitivityPoint]:
    """Accuracy of one predictor across flag settings (Table 7)."""
    workload = get_workload(benchmark)
    names = flags if flags is not None else workload.flag_sets
    points: list[SensitivityPoint] = []
    for flag_setting in names:
        trace = workload.trace(scale=scale, input_name=input_name, flags=flag_setting)
        result = simulate_trace(trace, (predictor,))
        points.append(
            SensitivityPoint(
                setting=flag_setting,
                predictions=len(trace),
                accuracy=result.results[predictor].accuracy,
            )
        )
    return points


def order_sensitivity(
    benchmark: str = "gcc",
    orders: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
    scale: float = 1.0,
    input_name: str | None = None,
) -> dict[int, float]:
    """Accuracy of blended fcm predictors of increasing order (Figure 11).

    The trace is collected once and re-simulated with a fresh predictor per
    order, exactly as the paper's experiment holds the input fixed and varies
    only the order.
    """
    workload = get_workload(benchmark)
    trace = workload.trace(scale=scale, input_name=input_name)
    accuracies: dict[int, float] = {}
    for order in orders:
        name = f"fcm{order}"
        result = simulate_trace(trace, (name,))
        accuracies[order] = result.results[name].accuracy
    return accuracies
