"""Cumulative FCM-over-stride improvement (Figure 9 of the paper).

For every static instruction where the fcm predictor is correct more often
than the stride predictor, the improvement is the difference in correct
predictions.  Sorting static instructions by decreasing improvement and
accumulating shows how concentrated the fcm advantage is: the paper finds
that about 20% of those static instructions account for roughly 97% of the
total improvement, which motivates a hybrid predictor with a per-PC chooser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError
from repro.isa.opcodes import Category, REPORTED_CATEGORIES
from repro.simulation.simulator import SimulationResult


@dataclass
class ImprovementCurve:
    """Cumulative improvement of fcm over stride versus static instructions.

    ``points`` maps an x-axis percentage (share of the improving static
    instructions considered, after sorting by decreasing improvement) to the
    normalised cumulative improvement (%).
    """

    total_improvement: int
    improving_static_instructions: int
    points: dict[int, float]

    def improvement_at(self, static_percent: int) -> float:
        """Normalised cumulative improvement at an x-axis position."""
        if not self.points:
            return 0.0
        available = [x for x in self.points if x <= static_percent]
        if not available:
            return 0.0
        return self.points[max(available)]

    def static_fraction_for(self, target_improvement_percent: float) -> int:
        """Smallest x (in %) whose cumulative improvement reaches the target."""
        for x in sorted(self.points):
            if self.points[x] >= target_improvement_percent:
                return x
        return 100


def _curve_from_improvements(improvements: list[int], steps: int = 20) -> ImprovementCurve:
    improvements = sorted((value for value in improvements if value > 0), reverse=True)
    total = sum(improvements)
    points: dict[int, float] = {}
    if not improvements or total == 0:
        return ImprovementCurve(total_improvement=0, improving_static_instructions=0, points={})
    count = len(improvements)
    for step in range(steps + 1):
        x_percent = int(round(100 * step / steps))
        take = int(round(count * step / steps))
        points[x_percent] = 100.0 * sum(improvements[:take]) / total
    return ImprovementCurve(
        total_improvement=total, improving_static_instructions=count, points=points
    )


def improvement_curve(
    simulation: SimulationResult,
    fcm_name: str,
    stride_name: str,
    category: Category | None = None,
    steps: int = 20,
) -> ImprovementCurve:
    """Build the Figure 9 curve from one benchmark's simulation result."""
    if fcm_name not in simulation.results or stride_name not in simulation.results:
        raise SimulationError(
            f"simulation lacks predictors {fcm_name!r}/{stride_name!r}: "
            f"has {simulation.predictor_names}"
        )
    fcm = simulation.results[fcm_name]
    stride = simulation.results[stride_name]
    improvements: list[int] = []
    for pc in simulation.pc_total:
        if category is not None and simulation.pc_category.get(pc) is not category:
            continue
        improvement = fcm.pc_correct.get(pc, 0) - stride.pc_correct.get(pc, 0)
        improvements.append(improvement)
    return _curve_from_improvements(improvements, steps=steps)


def improvement_curves_by_category(
    simulation: SimulationResult,
    fcm_name: str,
    stride_name: str,
    categories: tuple[Category, ...] = REPORTED_CATEGORIES,
    steps: int = 20,
) -> dict[str, ImprovementCurve]:
    """Curves for "All" plus each reported category, as Figure 9 plots."""
    curves: dict[str, ImprovementCurve] = {
        "All": improvement_curve(simulation, fcm_name, stride_name, steps=steps)
    }
    for category in categories:
        curves[category.value] = improvement_curve(
            simulation, fcm_name, stride_name, category=category, steps=steps
        )
    return curves


def _per_pc_improvements(
    simulation: SimulationResult,
    fcm_name: str,
    stride_name: str,
    category: Category | None,
) -> list[int]:
    fcm = simulation.result_for(fcm_name)
    stride = simulation.result_for(stride_name)
    improvements: list[int] = []
    for pc in simulation.pc_total:
        if category is not None and simulation.pc_category.get(pc) is not category:
            continue
        improvements.append(fcm.pc_correct.get(pc, 0) - stride.pc_correct.get(pc, 0))
    return improvements


def combined_improvement_curve(
    simulations: Sequence[SimulationResult],
    fcm_name: str,
    stride_name: str,
    category: Category | None = None,
    steps: int = 20,
) -> ImprovementCurve:
    """Figure 9 curve pooled over several benchmarks' static instructions."""
    if not simulations:
        raise SimulationError("cannot build an improvement curve from zero simulations")
    improvements: list[int] = []
    for simulation in simulations:
        improvements.extend(
            _per_pc_improvements(simulation, fcm_name, stride_name, category)
        )
    return _curve_from_improvements(improvements, steps=steps)


def combined_improvement_curves_by_category(
    simulations: Sequence[SimulationResult],
    fcm_name: str,
    stride_name: str,
    categories: tuple[Category, ...] = REPORTED_CATEGORIES,
    steps: int = 20,
) -> dict[str, ImprovementCurve]:
    """Pooled curves for "All" plus each reported category."""
    curves = {
        "All": combined_improvement_curve(simulations, fcm_name, stride_name, steps=steps)
    }
    for category in categories:
        curves[category.value] = combined_improvement_curve(
            simulations, fcm_name, stride_name, category=category, steps=steps
        )
    return curves
