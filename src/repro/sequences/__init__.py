"""Value-sequence taxonomy of Section 1.1 of the paper.

The paper classifies value sequences into constant (C), stride (S),
non-stride (NS), repeated stride (RS) and repeated non-stride (RNS)
sequences, and analyses each predictor's *learning time* (LT — values
observed before the first correct prediction) and *learning degree* (LD —
the fraction of correct predictions after the first correct one) on each
class.  This package provides generators for those sequence classes, a
classifier, and the LT/LD measurement used to regenerate Table 1 and
Figure 2.
"""

from repro.sequences.generators import (
    SequenceClass,
    constant_sequence,
    stride_sequence,
    non_stride_sequence,
    repeated_stride_sequence,
    repeated_non_stride_sequence,
    generate_sequence,
)
from repro.sequences.classify import classify_sequence
from repro.sequences.analysis import LearningProfile, measure_learning, predictor_behaviour_table

__all__ = [
    "SequenceClass",
    "constant_sequence",
    "stride_sequence",
    "non_stride_sequence",
    "repeated_stride_sequence",
    "repeated_non_stride_sequence",
    "generate_sequence",
    "classify_sequence",
    "LearningProfile",
    "measure_learning",
    "predictor_behaviour_table",
]
