"""Learning time / learning degree measurement (Table 1 and Figure 2).

The paper defines two characteristics for a predictor on a value sequence:

* **Learning Time (LT)** — the number of values that have to be observed
  before the first correct prediction.
* **Learning Degree (LD)** — the percentage of correct predictions following
  the first correct prediction.

:func:`measure_learning` measures both empirically by feeding a sequence to
a fresh predictor exactly the way the simulator does (predict, score, update
immediately), and :func:`predictor_behaviour_table` regenerates the structure
of Table 1 for any set of predictors and sequence classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.base import ValuePredictor
from repro.core.registry import create_predictor
from repro.sequences.generators import SequenceClass, generate_sequence


@dataclass(frozen=True)
class LearningProfile:
    """Measured learning behaviour of one predictor on one sequence.

    Attributes
    ----------
    learning_time:
        Values observed before the first correct prediction, or ``None`` when
        the predictor never predicted correctly ("-" rows in Table 1).
    learning_degree:
        Percentage of correct predictions after (and excluding) the first
        correct one; ``None`` when no prediction was ever correct or the
        first correct prediction was the final element.
    correct:
        Total number of correct predictions over the sequence.
    total:
        Sequence length.
    """

    learning_time: int | None
    learning_degree: float | None
    correct: int
    total: int

    @property
    def accuracy(self) -> float:
        """Overall accuracy over the whole sequence (%)."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.correct / self.total


def measure_learning(
    predictor: ValuePredictor, values: Sequence[int], pc: int = 0
) -> LearningProfile:
    """Feed ``values`` through ``predictor`` and measure LT / LD."""
    outcomes: list[bool] = []
    for value in values:
        outcomes.append(predictor.observe(pc, int(value)))

    correct_total = sum(outcomes)
    first_correct_index = next((i for i, ok in enumerate(outcomes) if ok), None)
    if first_correct_index is None:
        return LearningProfile(
            learning_time=None, learning_degree=None, correct=0, total=len(values)
        )
    after = outcomes[first_correct_index + 1 :]
    learning_degree = 100.0 * sum(after) / len(after) if after else None
    return LearningProfile(
        learning_time=first_correct_index,
        learning_degree=learning_degree,
        correct=correct_total,
        total=len(values),
    )


def predictor_behaviour_table(
    predictor_names: Iterable[str] = ("l", "s2", "fcm3"),
    sequence_classes: Iterable[SequenceClass] = tuple(SequenceClass),
    length: int = 64,
    period: int = 4,
) -> dict[SequenceClass, dict[str, LearningProfile]]:
    """Regenerate the structure of Table 1 by direct measurement.

    Each (sequence class, predictor) cell contains the measured
    :class:`LearningProfile` for a fresh predictor instance on a freshly
    generated sequence of the given class.
    """
    table: dict[SequenceClass, dict[str, LearningProfile]] = {}
    for sequence_class in sequence_classes:
        values = generate_sequence(sequence_class, length=length, period=period)
        row: dict[str, LearningProfile] = {}
        for name in predictor_names:
            predictor = create_predictor(name)
            row[name] = measure_learning(predictor, values)
        table[sequence_class] = row
    return table


def prediction_outcomes(
    predictor: ValuePredictor, values: Sequence[int], pc: int = 0
) -> list[tuple[int | None, bool]]:
    """Return ``(predicted value, correct?)`` for every element of ``values``.

    This is the data behind Figure 2 of the paper, which steps through a
    repeated stride sequence and shows each predictor's prediction at every
    position.
    """
    outcomes: list[tuple[int | None, bool]] = []
    for value in values:
        prediction = predictor.predict(pc)
        outcomes.append((prediction.value, prediction.is_correct(int(value))))
        predictor.stats.record(prediction, int(value), None)
        predictor.update(pc, int(value))
    return outcomes
