"""Generators for the value-sequence classes of Section 1.1."""

from __future__ import annotations

import enum
import random

from repro.errors import ReproError


class SequenceClass(str, enum.Enum):
    """The five sequence classes defined in Section 1.1 of the paper."""

    CONSTANT = "C"
    STRIDE = "S"
    NON_STRIDE = "NS"
    REPEATED_STRIDE = "RS"
    REPEATED_NON_STRIDE = "RNS"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def constant_sequence(length: int, value: int = 5) -> list[int]:
    """A constant sequence: ``value value value ...``."""
    _check_length(length)
    return [value] * length


def stride_sequence(length: int, start: int = 1, stride: int = 1) -> list[int]:
    """A stride sequence: consecutive elements differ by ``stride``.

    ``stride`` may be negative; a zero stride degenerates to a constant
    sequence, mirroring the paper's remark that constants are zero-stride.
    """
    _check_length(length)
    return [start + i * stride for i in range(length)]


def non_stride_sequence(length: int, seed: int = 7, low: int = -500, high: int = 500) -> list[int]:
    """A non-stride sequence: values with no constant difference.

    A seeded PRNG draws values and the generator retries whenever the last
    three drawn values happen to form a stride, so the result is guaranteed
    to contain no three-term arithmetic run.
    """
    _check_length(length)
    if low >= high:
        raise ReproError("non_stride_sequence requires low < high")
    rng = random.Random(seed)
    values: list[int] = []
    while len(values) < length:
        candidate = rng.randint(low, high)
        if len(values) >= 2 and (candidate - values[-1]) == (values[-1] - values[-2]):
            candidate = candidate + 1 if candidate < high else low
            if (candidate - values[-1]) == (values[-1] - values[-2]):
                continue
        values.append(candidate)
    return values


def repeated_stride_sequence(length: int, period: int = 4, start: int = 1, stride: int = 1) -> list[int]:
    """A repeated stride sequence, e.g. ``1 2 3 4 1 2 3 4 ...``."""
    _check_length(length)
    if period < 2:
        raise ReproError("repeated_stride_sequence requires period >= 2")
    base = stride_sequence(period, start=start, stride=stride)
    return [base[i % period] for i in range(length)]


def repeated_non_stride_sequence(length: int, period: int = 4, seed: int = 7) -> list[int]:
    """A repeated non-stride sequence, e.g. ``1 -13 -99 7 1 -13 -99 7 ...``."""
    _check_length(length)
    if period < 2:
        raise ReproError("repeated_non_stride_sequence requires period >= 2")
    base = non_stride_sequence(period, seed=seed)
    return [base[i % period] for i in range(length)]


def generate_sequence(sequence_class: SequenceClass, length: int, period: int = 4, seed: int = 7) -> list[int]:
    """Generate a sequence of the given class with default parameters."""
    if sequence_class is SequenceClass.CONSTANT:
        return constant_sequence(length)
    if sequence_class is SequenceClass.STRIDE:
        return stride_sequence(length)
    if sequence_class is SequenceClass.NON_STRIDE:
        return non_stride_sequence(length, seed=seed)
    if sequence_class is SequenceClass.REPEATED_STRIDE:
        return repeated_stride_sequence(length, period=period)
    if sequence_class is SequenceClass.REPEATED_NON_STRIDE:
        return repeated_non_stride_sequence(length, period=period, seed=seed)
    raise ReproError(f"unknown sequence class {sequence_class!r}")


def _check_length(length: int) -> None:
    if length < 1:
        raise ReproError("sequence length must be positive")
