"""Classify a value sequence into the taxonomy of Section 1.1.

The classifier is intentionally simple — the paper's taxonomy is informal —
but it is useful both for validating the generators and for characterising
the per-PC value streams that the synthetic workloads produce.
"""

from __future__ import annotations

from typing import Sequence

from repro.sequences.generators import SequenceClass


def _is_constant(values: Sequence[int]) -> bool:
    return all(value == values[0] for value in values)


def _is_stride(values: Sequence[int]) -> bool:
    if len(values) < 3:
        return False
    stride = values[1] - values[0]
    if stride == 0:
        return False
    return all(values[i + 1] - values[i] == stride for i in range(len(values) - 1))


def _repetition_period(values: Sequence[int]) -> int | None:
    """Smallest period p >= 2 such that the sequence repeats with period p."""
    n = len(values)
    for period in range(2, n // 2 + 1):
        if all(values[i] == values[i % period] for i in range(n)):
            return period
    return None


def classify_sequence(values: Sequence[int]) -> SequenceClass:
    """Classify ``values`` as C, S, RS, RNS or NS.

    At least two full repetitions are required before a sequence is labelled
    as repeating; otherwise shorter prefixes would be ambiguous.
    """
    if not values:
        raise ValueError("cannot classify an empty sequence")
    if _is_constant(values):
        return SequenceClass.CONSTANT
    if _is_stride(values):
        return SequenceClass.STRIDE
    period = _repetition_period(values)
    if period is not None:
        one_period = values[:period]
        if _is_stride(one_period) or _is_constant(one_period) or period == 2:
            return SequenceClass.REPEATED_STRIDE
        return SequenceClass.REPEATED_NON_STRIDE
    return SequenceClass.NON_STRIDE
