"""Exception hierarchy for the value-prediction reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers embedding the library can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class PredictorError(ReproError):
    """Raised when a value predictor is misused or misconfigured."""


class PredictorConfigError(PredictorError):
    """Raised when a predictor is constructed with invalid parameters."""


class UnknownPredictorError(PredictorError):
    """Raised when the predictor registry is asked for an unknown name."""


class IsaError(ReproError):
    """Base class for errors raised by the ISA substrate."""


class InvalidRegisterError(IsaError):
    """Raised when a register index outside the architectural file is used."""


class InvalidInstructionError(IsaError):
    """Raised when an instruction is malformed (bad operands, bad opcode)."""


class MemoryError_(IsaError):
    """Raised for invalid memory accesses (negative or misaligned address)."""


class ProgramError(IsaError):
    """Raised when a program is structurally invalid (e.g. unknown label)."""


class ExecutionError(IsaError):
    """Raised when execution cannot proceed (e.g. runaway program)."""


class ExecutionLimitExceeded(ExecutionError):
    """Raised when a program exceeds the dynamic instruction budget."""


class TraceError(ReproError):
    """Raised for malformed traces or trace-serialisation failures."""


class WorkloadError(ReproError):
    """Raised when a workload is configured with invalid parameters."""


class UnknownWorkloadError(WorkloadError):
    """Raised when the workload suite is asked for an unknown benchmark."""


class SimulationError(ReproError):
    """Raised when a prediction simulation is configured incorrectly."""


class SweepError(ReproError):
    """Raised when a parameter-sweep specification is invalid."""


class ReportingError(ReproError):
    """Raised when experiment/report generation fails."""
