"""Exception hierarchy for the value-prediction reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers embedding the library can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class PredictorError(ReproError):
    """Raised when a value predictor is misused or misconfigured."""


class PredictorConfigError(PredictorError):
    """Raised when a predictor is constructed with invalid parameters."""


class UnknownPredictorError(PredictorError):
    """Raised when the predictor registry is asked for an unknown name."""


class IsaError(ReproError):
    """Base class for errors raised by the ISA substrate."""


class InvalidRegisterError(IsaError):
    """Raised when a register index outside the architectural file is used."""


class InvalidInstructionError(IsaError):
    """Raised when an instruction is malformed (bad operands, bad opcode)."""


class MemoryError_(IsaError):
    """Raised for invalid memory accesses (negative or misaligned address)."""


class ProgramError(IsaError):
    """Raised when a program is structurally invalid (e.g. unknown label)."""


class ExecutionError(IsaError):
    """Raised when execution cannot proceed (e.g. runaway program)."""


class ExecutionLimitExceeded(ExecutionError):
    """Raised when a program exceeds the dynamic instruction budget."""


class TraceError(ReproError):
    """Raised for malformed traces or trace-serialisation failures."""


class WorkloadError(ReproError):
    """Raised when a workload is configured with invalid parameters."""


class UnknownWorkloadError(WorkloadError):
    """Raised when the workload suite is asked for an unknown benchmark."""


class SimulationError(ReproError):
    """Raised when a prediction simulation is configured incorrectly."""


class SweepError(ReproError):
    """Raised when a parameter-sweep specification is invalid."""


class DispatchError(ReproError):
    """Raised when an executor backend cannot complete a dispatch.

    This is an *infrastructure* failure — workers unreachable, a protocol
    violation on the wire, every remote worker lost mid-run — as opposed
    to a work unit's own exception, which propagates as whatever the task
    raised (wrapped in :class:`RemoteTaskError` when it happened on a
    remote worker)."""


class RemoteProtocolError(DispatchError):
    """Raised when the remote worker protocol is violated.

    Covers malformed frames (truncated headers, oversized or undecodable
    bodies), out-of-sequence responses, and handshake rejections — a
    worker running mismatched task/cache schema versions is refused up
    front so it can never poison the shared result cache."""


class RemoteWorkerError(DispatchError):
    """Raised when remote workers are lost and no replacement remains.

    A single worker loss is retried silently (its in-flight units are
    re-dispatched to surviving workers); this error surfaces only when no
    worker remains to take the pending work."""


class RemoteTaskError(ReproError):
    """Raised when a work unit itself raised on a remote worker.

    Carries the remote traceback text; unlike worker loss this is never
    retried — the task graph is deterministic, so the unit would fail
    identically anywhere."""

    def __init__(self, message: str, remote_traceback: str | None = None) -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback


class ReportingError(ReproError):
    """Raised when experiment/report generation fails."""


class ArtifactError(ReproError):
    """Raised for reproduction-artifact failures (:mod:`repro.artifact`).

    Covers malformed or missing artifact manifests, ``--only`` selectors
    matching no deliverable, and golden files that cannot be read.  A
    *mismatch* between regenerated numbers and committed goldens is not an
    exception — it is a :class:`repro.artifact.check.CheckReport` with
    per-cell diffs, surfaced through the CLI's exit code."""
