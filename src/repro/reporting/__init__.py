"""Turning simulation results into the paper's tables and figures.

:mod:`repro.reporting.experiments` exposes one function per evaluation
artefact (``table1`` ... ``figure11``); each returns an
:class:`ExperimentArtifact` whose ``render()`` produces the table/series the
paper reports, regenerated from this repository's synthetic substrate.
"""

from repro.reporting.tables import format_table
from repro.reporting.figures import FigureSeries
from repro.reporting.experiments import (
    ExperimentArtifact,
    ALL_EXPERIMENTS,
    run_experiment,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    figure1,
    figure2,
    figure3,
    figure4_7,
    figure8,
    figure9,
    figure10,
    figure11,
)

__all__ = [
    "format_table",
    "FigureSeries",
    "ExperimentArtifact",
    "ALL_EXPERIMENTS",
    "run_experiment",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "figure1",
    "figure2",
    "figure3",
    "figure4_7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
]
