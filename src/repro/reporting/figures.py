"""Series containers for figure-style experiment outputs.

The original figures are bar/line charts; this reproduction reports the same
data as labelled numeric series (one per bar group / line), which keeps the
library dependency-free while preserving every number a plot would show.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.reporting.tables import Grid


@dataclass
class FigureSeries:
    """Numeric series sharing one x-axis, like the paper's grouped bar charts.

    Attributes
    ----------
    name:
        Figure identifier (e.g. ``"Figure 3"``).
    x_label / y_label:
        Axis descriptions.
    x_values:
        Labels along the x axis (benchmarks, orders, percentages, ...).
    series:
        Mapping from series name (predictor, category, ...) to its values,
        one value per x position.
    """

    name: str
    x_label: str
    y_label: str
    x_values: list[str]
    series: dict[str, list[float]] = field(default_factory=dict)

    def add_series(self, label: str, values: list[float]) -> None:
        """Add one labelled series; its length must match the x axis."""
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} values for {len(self.x_values)} x positions"
            )
        self.series[label] = list(values)

    def value(self, label: str, x_value: str) -> float:
        """Look up a single data point by series label and x position."""
        return self.series[label][self.x_values.index(x_value)]

    def to_grid(self) -> Grid:
        """The figure's data as a machine-readable grid (x axis as rows).

        This is the canonical form the artifact layer digests and diffs;
        :meth:`render` is its plain-text rendering, so the two can never
        disagree.
        """
        headers = [self.x_label] + list(self.series)
        rows = []
        for index, x_value in enumerate(self.x_values):
            rows.append([x_value] + [self.series[label][index] for label in self.series])
        return Grid(title=f"{self.name} — {self.y_label}", headers=headers, rows=rows)

    def render(self) -> str:
        """Render the series as a plain-text table (x axis as rows)."""
        return self.to_grid().render()
