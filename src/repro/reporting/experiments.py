"""One entry point per table and figure of the paper's evaluation.

Every function regenerates the corresponding artefact from the synthetic
substrate and returns an :class:`ExperimentArtifact` holding both the raw
data (for programmatic checks — the test-suite and EXPERIMENTS.md use these)
and a rendered plain-text form.

The suite-wide artefacts (Tables 2/4/5, Figures 3-10) share one cached
campaign per ``scale``, so regenerating all of them costs a single suite
simulation; the sensitivity artefacts (Tables 6-7, Figure 11) run as
parameter sweeps on the same engine (:mod:`repro.engine.sweeps`).  Both
paths execute on :class:`repro.engine.ExecutionEngine`:
``repro.simulation.campaign.set_campaign_defaults`` (which the CLI wires to
``--jobs``/``--cache-dir``/``--no-cache``) selects worker-pool parallelism
and a persistent result cache without touching the entry points below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.fcm import FcmPredictor
from repro.core.registry import create_predictor
from repro.errors import ReportingError
from repro.isa.opcodes import CATEGORY_OF, Category, REPORTED_CATEGORIES
from repro.reporting.figures import FigureSeries
from repro.reporting.tables import Grid
from repro.sequences.analysis import (
    measure_learning,
    prediction_outcomes,
    predictor_behaviour_table,
)
from repro.sequences.generators import repeated_stride_sequence
from repro.simulation.campaign import DEFAULT_SCALE, CampaignResult, run_campaign
from repro.simulation.correlation import SUBSET_LABELS, average_correlation, correlation_breakdown
from repro.simulation.improvement import combined_improvement_curves_by_category
from repro.simulation.metrics import build_accuracy_report
from repro.simulation.sensitivity import flag_sensitivity, input_sensitivity, order_sensitivity
from repro.simulation.value_profile import average_value_profiles, bucket_labels, value_profile


@dataclass
class ExperimentArtifact:
    """A regenerated table or figure.

    Attributes
    ----------
    identifier:
        The paper's name for the artefact (``"table2"``, ``"figure3"``, ...).
    title:
        Human-readable caption mirroring the paper's caption.
    data:
        Structured result (dict, :class:`FigureSeries`, ...) for programmatic
        consumption.
    text:
        Rendered plain-text form (what the CLI prints).
    grids:
        Machine-readable grids (:class:`repro.reporting.tables.Grid`),
        one per table the text rendering shows.  This is the canonical
        numeric form the reproduction artifact digests, diffs and writes
        as CSV/Markdown (see :mod:`repro.artifact`); ``text`` is always a
        rendering of these grids, so the two cannot disagree.
    """

    identifier: str
    title: str
    data: Any
    text: str
    grids: tuple[Grid, ...] = ()

    def render(self) -> str:
        return self.text


def _grid_artifact(identifier: str, title: str, data: Any, *grids: Grid) -> ExperimentArtifact:
    """Build an artifact whose text renders its grids (the common case)."""
    return ExperimentArtifact(
        identifier, title, data, "\n\n".join(grid.render() for grid in grids), grids=tuple(grids)
    )


# --------------------------------------------------------------------------- #
# Micro-experiments (no workload substrate required)
# --------------------------------------------------------------------------- #
def table1(length: int = 64, period: int = 4) -> ExperimentArtifact:
    """Table 1: learning time / learning degree per sequence class."""
    measured = predictor_behaviour_table(
        predictor_names=("l", "s2", "fcm3"), length=length, period=period
    )
    headers = ["Sequence", "L: LT", "L: LD(%)", "S2: LT", "S2: LD(%)", "FCM3: LT", "FCM3: LD(%)"]
    rows = []
    for sequence_class, row in measured.items():
        cells: list[object] = [sequence_class.value]
        for name in ("l", "s2", "fcm3"):
            profile = row[name]
            cells.append(profile.learning_time)
            cells.append(profile.learning_degree)
        rows.append(cells)
    grid = Grid("Table 1 — predictor behaviour per sequence class", headers, rows)
    return _grid_artifact(
        "table1", "Behaviour of prediction models for value sequences", measured, grid
    )


def figure1(sequence: str = "aaabcaaabcaaa") -> ExperimentArtifact:
    """Figure 1: finite context models of orders 0-3 on the example sequence."""
    symbols = sorted(set(sequence))
    encoding = {symbol: index + 1 for index, symbol in enumerate(symbols)}
    decoding = {code: symbol for symbol, code in encoding.items()}
    values = [encoding[symbol] for symbol in sequence]
    models: dict[int, dict[str, Any]] = {}
    for order in range(4):
        predictor = FcmPredictor(order=order)
        for value in values:
            predictor.update(0, value)
        prediction = predictor.predict(0)
        contexts = {
            "".join(decoding[v] for v in context): {
                decoding[value]: count for value, count in counts.items()
            }
            for context, counts in predictor.contexts_for(0).items()
        }
        models[order] = {
            "prediction": decoding.get(prediction.value),
            "contexts": contexts,
        }
    rows = [[order, models[order]["prediction"], models[order]["contexts"]] for order in models]
    grid = Grid(
        f"Figure 1 — finite context models over {sequence!r}",
        ["Order", "Prediction", "Context counts"],
        rows,
    )
    return _grid_artifact("figure1", "Finite context models", models, grid)


def figure2(period: int = 4, repetitions: int = 3) -> ExperimentArtifact:
    """Figure 2: stride vs order-2 fcm behaviour on a repeated stride sequence."""
    values = repeated_stride_sequence(period * repetitions, period=period)
    stride_outcomes = prediction_outcomes(create_predictor("s2"), values)
    fcm_outcomes = prediction_outcomes(create_predictor("fcm2"), values)
    stride_profile = measure_learning(create_predictor("s2"), values)
    fcm_profile = measure_learning(create_predictor("fcm2"), values)
    data = {
        "sequence": values,
        "stride": {"outcomes": stride_outcomes, "profile": stride_profile},
        "fcm2": {"outcomes": fcm_outcomes, "profile": fcm_profile},
    }
    rows = [
        ["sequence"] + values,
        ["stride prediction"] + [p if p is not None else "-" for p, _ in stride_outcomes],
        ["stride correct"] + ["y" if ok else "." for _, ok in stride_outcomes],
        ["fcm2 prediction"] + [p if p is not None else "-" for p, _ in fcm_outcomes],
        ["fcm2 correct"] + ["y" if ok else "." for _, ok in fcm_outcomes],
    ]
    headers = ["step"] + [str(i) for i in range(len(values))]
    grid = Grid("Figure 2 — computational vs context based prediction", headers, rows)
    return _grid_artifact("figure2", "Computational vs context based prediction", data, grid)


def table3() -> ExperimentArtifact:
    """Table 3: instruction categories and their opcodes."""
    groups: dict[Category, list[str]] = {}
    for opcode, category in CATEGORY_OF.items():
        groups.setdefault(category, []).append(opcode.value)
    rows = [
        [category.value, ", ".join(sorted(opcodes))]
        for category, opcodes in groups.items()
        if category not in (Category.STORE, Category.CONTROL)
    ]
    grid = Grid("Table 3 — instruction categories", ["Category", "Opcodes"], rows)
    return _grid_artifact("table3", "Instruction categories", groups, grid)


# --------------------------------------------------------------------------- #
# Suite-wide artefacts (share one campaign per scale)
# --------------------------------------------------------------------------- #
def _campaign(scale: float | None) -> CampaignResult:
    return run_campaign(scale=DEFAULT_SCALE if scale is None else scale)


def table2(scale: float | None = None) -> ExperimentArtifact:
    """Table 2: benchmark characteristics (dynamic and predicted instructions)."""
    campaign = _campaign(scale)
    rows = []
    data: dict[str, dict[str, float]] = {}
    for benchmark in campaign.benchmarks():
        stats = campaign.statistics[benchmark]
        data[benchmark] = {
            "dynamic_instructions": stats.total_dynamic_instructions,
            "predicted_instructions": stats.predicted_instructions,
            "fraction_predicted": stats.fraction_predicted,
        }
        rows.append(
            [
                benchmark,
                stats.total_dynamic_instructions,
                stats.predicted_instructions,
                100.0 * stats.fraction_predicted,
            ]
        )
    grid = Grid(
        "Table 2 — benchmark characteristics (synthetic suite)",
        ["Benchmark", "Dynamic instr.", "Predicted instr.", "Predicted (%)"],
        rows,
    )
    return _grid_artifact("table2", "Benchmark characteristics", data, grid)


def _category_table(scale: float | None, static: bool) -> tuple[dict, Grid]:
    campaign = _campaign(scale)
    categories = [category for category in Category if category.value in
                  ("AddSub", "Loads", "Logic", "Shift", "Set", "MultDiv", "Lui", "Other")]
    data: dict[str, dict[str, float]] = {}
    rows = []
    for category in categories:
        row: list[object] = [category.value]
        data[category.value] = {}
        for benchmark in campaign.benchmarks():
            stats = campaign.statistics[benchmark]
            if static:
                value: float = stats.category_static_counts.get(category, 0)
            else:
                value = stats.category_dynamic_percentages().get(category, 0.0)
            data[category.value][benchmark] = value
            row.append(value)
        rows.append(row)
    which = "static count" if static else "dynamic (%)"
    grid = Grid(
        f"Table {'4' if static else '5'} — predicted instructions, {which}",
        ["Type"] + list(campaign.benchmarks()),
        rows,
    )
    return data, grid


def table4(scale: float | None = None) -> ExperimentArtifact:
    """Table 4: static count of predicted instructions per category."""
    data, grid = _category_table(scale, static=True)
    return _grid_artifact("table4", "Predicted instructions — static count", data, grid)


def table5(scale: float | None = None) -> ExperimentArtifact:
    """Table 5: dynamic percentage of predicted instructions per category."""
    data, grid = _category_table(scale, static=False)
    return _grid_artifact("table5", "Predicted instructions — dynamic %", data, grid)


def _accuracy_figure(scale: float | None, category: Category | None, name: str, title: str) -> ExperimentArtifact:
    campaign = _campaign(scale)
    report = build_accuracy_report(campaign.simulations)
    figure = FigureSeries(
        name=title,
        x_label="benchmark",
        y_label="% of predictions correct",
        x_values=list(campaign.benchmarks()),
    )
    for predictor in campaign.predictor_names:
        figure.add_series(predictor, report.benchmark_series(predictor, category))
    return _grid_artifact(name, title, figure, figure.to_grid())


def figure3(scale: float | None = None) -> ExperimentArtifact:
    """Figure 3: overall prediction success for all instructions."""
    return _accuracy_figure(scale, None, "figure3", "Figure 3 — prediction success (all instructions)")


def figure4_7(scale: float | None = None) -> ExperimentArtifact:
    """Figures 4-7: prediction success for AddSub, Loads, Logic and Shift."""
    campaign = _campaign(scale)
    report = build_accuracy_report(campaign.simulations)
    figures: dict[str, FigureSeries] = {}
    mapping = {
        "figure4": Category.ADDSUB,
        "figure5": Category.LOADS,
        "figure6": Category.LOGIC,
        "figure7": Category.SHIFT,
    }
    grids = []
    for identifier, category in mapping.items():
        figure = FigureSeries(
            name=f"{identifier} ({category.value})",
            x_label="benchmark",
            y_label=f"% of predictions correct ({category.value})",
            x_values=list(campaign.benchmarks()),
        )
        for predictor in campaign.predictor_names:
            figure.add_series(predictor, report.benchmark_series(predictor, category))
        figures[identifier] = figure
        grids.append(figure.to_grid())
    return _grid_artifact(
        "figure4_7", "Prediction success per instruction type", figures, *grids
    )


def figure8(scale: float | None = None) -> ExperimentArtifact:
    """Figure 8: contribution of the different predictors (set correlation)."""
    campaign = _campaign(scale)
    breakdowns = [
        correlation_breakdown(simulation) for simulation in campaign.simulations.values()
    ]
    averaged = average_correlation(breakdowns)
    figure = FigureSeries(
        name="Figure 8",
        x_label="instruction group",
        y_label="% of predictions per correctness subset",
        x_values=["All"] + [category.value for category in REPORTED_CATEGORIES],
    )
    for label in SUBSET_LABELS:
        values = [averaged.overall[label]] + [
            averaged.by_category[category][label] for category in REPORTED_CATEGORIES
        ]
        figure.add_series(label, values)
    data = {"average": averaged, "per_benchmark": dict(zip(campaign.benchmarks(), breakdowns))}
    return _grid_artifact("figure8", "Contribution of different predictors", data, figure.to_grid())


def figure9(scale: float | None = None) -> ExperimentArtifact:
    """Figure 9: cumulative improvement of fcm over stride."""
    campaign = _campaign(scale)
    curves = combined_improvement_curves_by_category(
        list(campaign.simulations.values()), fcm_name="fcm3", stride_name="s2"
    )
    x_values = [str(x) for x in sorted(curves["All"].points)]
    figure = FigureSeries(
        name="Figure 9",
        x_label="% of improving static instructions",
        y_label="normalised cumulative improvement (%)",
        x_values=x_values,
    )
    for label, curve in curves.items():
        figure.add_series(
            label, [curve.points.get(int(x), 100.0 if curve.points else 0.0) for x in x_values]
        )
    return _grid_artifact("figure9", "Cumulative improvement of FCM over stride", curves, figure.to_grid())


def figure10(scale: float | None = None) -> ExperimentArtifact:
    """Figure 10: unique-value profiles of static and dynamic instructions."""
    campaign = _campaign(scale)
    profiles = [value_profile(trace) for trace in campaign.traces.values()]
    averaged = average_value_profiles(profiles)
    groups = ["All"] + [category.value for category in REPORTED_CATEGORIES]
    figure = FigureSeries(
        name="Figure 10",
        x_label="instruction group (s. = static view, d. = dynamic view)",
        y_label="% of instructions per unique-value bucket",
        x_values=[f"s.{group}" for group in groups] + [f"d.{group}" for group in groups],
    )
    for label in bucket_labels():
        values = [averaged.static_percent[group][label] for group in groups] + [
            averaged.dynamic_percent[group][label] for group in groups
        ]
        figure.add_series(label, values)
    data = {"average": averaged, "per_benchmark": dict(zip(campaign.benchmarks(), profiles))}
    return _grid_artifact("figure10", "Values and instruction behaviour", data, figure.to_grid())


# --------------------------------------------------------------------------- #
# Sensitivity studies (gcc)
#
# These render through the engine-backed sweep layer: each entry point is a
# thin façade over a SweepSpec executed by repro.engine.sweeps, so the
# studies honour the configured --jobs/--cache-dir defaults, deduplicate
# shared traces and are zero-compute on a warm cache, while remaining
# bit-identical to the historical serial loops.
# --------------------------------------------------------------------------- #
def table6(scale: float | None = None) -> ExperimentArtifact:
    """Table 6: gcc sensitivity to different input files (order-2 fcm)."""
    points = input_sensitivity(scale=DEFAULT_SCALE if scale is None else scale)
    rows = [[point.setting, point.predictions, point.accuracy] for point in points]
    grid = Grid(
        "Table 6 — gcc sensitivity to input files (fcm order 2)",
        ["Input file", "Predictions", "Correct (%)"],
        rows,
    )
    return _grid_artifact("table6", "gcc input-file sensitivity", points, grid)


def table7(scale: float | None = None) -> ExperimentArtifact:
    """Table 7: gcc sensitivity to compilation flags (order-2 fcm)."""
    points = flag_sensitivity(scale=DEFAULT_SCALE if scale is None else scale)
    rows = [[point.setting, point.predictions, point.accuracy] for point in points]
    grid = Grid(
        "Table 7 — gcc sensitivity to flags (fcm order 2)",
        ["Flags", "Predictions", "Correct (%)"],
        rows,
    )
    return _grid_artifact("table7", "gcc flag sensitivity", points, grid)


def figure11(scale: float | None = None, max_order: int = 8) -> ExperimentArtifact:
    """Figure 11: gcc prediction accuracy versus fcm order."""
    orders = tuple(range(1, max_order + 1))
    accuracies = order_sensitivity(
        orders=orders, scale=DEFAULT_SCALE if scale is None else scale
    )
    figure = FigureSeries(
        name="Figure 11",
        x_label="predictor order",
        y_label="prediction accuracy (%)",
        x_values=[str(order) for order in orders],
    )
    figure.add_series("fcm", [accuracies[order] for order in orders])
    return _grid_artifact("figure11", "gcc sensitivity to fcm order", accuracies, figure.to_grid())


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentArtifact]] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4_7": figure4_7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
}


def run_experiment(identifier: str, **kwargs) -> ExperimentArtifact:
    """Run one experiment by identifier (``"table2"``, ``"figure3"``, ...)."""
    try:
        factory = ALL_EXPERIMENTS[identifier]
    except KeyError as exc:
        raise ReportingError(
            f"unknown experiment {identifier!r}; known: {', '.join(sorted(ALL_EXPERIMENTS))}"
        ) from exc
    return factory(**kwargs)
