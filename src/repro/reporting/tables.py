"""Plain-text table rendering used by the experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    if cell is None:
        return "-"
    return str(cell)


def format_table(
    headers: Sequence[object],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Floats are shown with one decimal place (the paper's precision) and
    ``None`` cells become ``-`` (the paper's "not suitable" marker).
    """
    header_cells = [_stringify(cell) for cell in headers]
    body = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(cell) for cell in header_cells]
    for row in body:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_row(header_cells))
    lines.append(separator)
    for row in body:
        lines.append(render_row(row))
    lines.append(separator)
    return "\n".join(lines)
