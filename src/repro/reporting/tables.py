"""Table rendering and machine-readable grids for the experiment reports.

Historically this module only rendered aligned plain text.  The artifact
layer (:mod:`repro.artifact`) needs the *numbers* behind every table and
figure in a canonical, diffable form, so rendering now goes through
:class:`Grid` — one headers-plus-rows value object per table — which
renders to plain text (unchanged output), GitHub Markdown and CSV, and
canonicalises into a JSON-safe payload whose digest pins a deliverable.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Iterable, Sequence


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    if cell is None:
        return "-"
    return str(cell)


def canonical_cell(cell: object) -> object:
    """Map a grid cell to its canonical JSON-safe value.

    Numbers stay numbers (full precision — the artifact goldens pin exact
    values, not the 1-decimal rendering), ``None`` stays ``None``, and
    anything else (labels, nested context dicts) becomes its ``str``
    form.  ``bool`` is checked before ``int`` because it subclasses it.
    """
    if cell is None or isinstance(cell, str):
        return cell
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, (int, float)):
        return cell
    return str(cell)


@dataclass
class Grid:
    """One machine-readable table: a title, column headers and rows.

    The plain-text rendering is byte-identical to what
    :func:`format_table` always produced, so switching the experiment
    entry points to build grids changed nothing a human (or a golden
    test) sees; the Markdown/CSV/payload writers are the new surface the
    reproduction artifact is built on.
    """

    title: str
    headers: list
    rows: list = field(default_factory=list)

    def render(self) -> str:
        """Aligned plain text (what the CLI prints)."""
        return format_table(self.headers, self.rows, title=self.title)

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown table (1-decimal floats, like text)."""

        def md_cell(cell: object) -> str:
            return _stringify(cell).replace("|", "\\|")

        lines = []
        if self.title:
            lines.append(f"### {self.title}")
            lines.append("")
        lines.append("| " + " | ".join(md_cell(cell) for cell in self.headers) + " |")
        lines.append("|" + "|".join(" --- " for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(md_cell(cell) for cell in row) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV with canonical (full-precision) cells, headers first."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow([canonical_cell(cell) for cell in self.headers])
        for row in self.rows:
            writer.writerow([canonical_cell(cell) for cell in row])
        return buffer.getvalue()

    def to_payload(self) -> dict:
        """Canonical JSON-safe form: the unit the artifact goldens pin."""
        return {
            "title": self.title,
            "columns": [canonical_cell(cell) for cell in self.headers],
            "rows": [[canonical_cell(cell) for cell in row] for row in self.rows],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Grid":
        """Rebuild a grid from :meth:`to_payload` output (golden files)."""
        return cls(
            title=payload.get("title", ""),
            headers=list(payload.get("columns", [])),
            rows=[list(row) for row in payload.get("rows", [])],
        )


def format_table(
    headers: Sequence[object],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Floats are shown with one decimal place (the paper's precision) and
    ``None`` cells become ``-`` (the paper's "not suitable" marker).
    """
    header_cells = [_stringify(cell) for cell in headers]
    body = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(cell) for cell in header_cells]
    for row in body:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_row(header_cells))
    lines.append(separator)
    for row in body:
        lines.append(render_row(row))
    lines.append(separator)
    return "\n".join(lines)
