"""Opcode definitions and the instruction-category mapping of Table 3.

The paper groups predicted instructions into the categories AddSub, Loads,
Logic, Shift, Set, MultDiv, Lui and Other, and excludes stores, branches and
jumps from prediction.  This module is the single source of truth for that
mapping.
"""

from __future__ import annotations

import enum


class Category(str, enum.Enum):
    """Instruction categories used when reporting prediction results.

    The predicted categories correspond to Table 3 of the paper.  The
    ``CONTROL`` and ``STORE`` categories cover instructions that do not write
    a general purpose register and therefore are never predicted.
    """

    ADDSUB = "AddSub"
    LOADS = "Loads"
    LOGIC = "Logic"
    SHIFT = "Shift"
    SET = "Set"
    MULTDIV = "MultDiv"
    LUI = "Lui"
    OTHER = "Other"
    STORE = "Store"
    CONTROL = "Control"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Categories whose instructions write a general purpose register and are
#: therefore candidates for value prediction (Table 3 of the paper).
PREDICTED_CATEGORIES: tuple[Category, ...] = (
    Category.ADDSUB,
    Category.LOADS,
    Category.LOGIC,
    Category.SHIFT,
    Category.SET,
    Category.MULTDIV,
    Category.LUI,
    Category.OTHER,
)

#: The categories highlighted individually in the paper's Figures 4-8.
REPORTED_CATEGORIES: tuple[Category, ...] = (
    Category.ADDSUB,
    Category.LOADS,
    Category.LOGIC,
    Category.SHIFT,
    Category.SET,
)


class Opcode(str, enum.Enum):
    """Opcodes of the MIPS-like ISA used by the synthetic workloads."""

    # Addition / subtraction (register and immediate forms).
    ADD = "add"
    ADDI = "addi"
    SUB = "sub"
    SUBI = "subi"
    # Loads.
    LW = "lw"
    LB = "lb"
    # Logical operations.
    AND = "and"
    ANDI = "andi"
    OR = "or"
    ORI = "ori"
    XOR = "xor"
    XORI = "xori"
    NOR = "nor"
    # Shifts (immediate and variable shift amounts).
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLLV = "sllv"
    SRLV = "srlv"
    # Compare-and-set.
    SLT = "slt"
    SLTI = "slti"
    SLTU = "sltu"
    SEQ = "seq"
    SNE = "sne"
    # Multiply / divide.
    MULT = "mult"
    DIV = "div"
    REM = "rem"
    # Load upper immediate.
    LUI = "lui"
    # Other register-writing instructions.
    MOV = "mov"
    LI = "li"
    JAL = "jal"
    # Stores (not predicted).
    SW = "sw"
    SB = "sb"
    # Control flow (not predicted).
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLE = "ble"
    BGT = "bgt"
    J = "j"
    JR = "jr"
    # Administrative.
    NOP = "nop"
    HALT = "halt"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Mapping from opcode to the category used for reporting (Table 3).
CATEGORY_OF: dict[Opcode, Category] = {
    Opcode.ADD: Category.ADDSUB,
    Opcode.ADDI: Category.ADDSUB,
    Opcode.SUB: Category.ADDSUB,
    Opcode.SUBI: Category.ADDSUB,
    Opcode.LW: Category.LOADS,
    Opcode.LB: Category.LOADS,
    Opcode.AND: Category.LOGIC,
    Opcode.ANDI: Category.LOGIC,
    Opcode.OR: Category.LOGIC,
    Opcode.ORI: Category.LOGIC,
    Opcode.XOR: Category.LOGIC,
    Opcode.XORI: Category.LOGIC,
    Opcode.NOR: Category.LOGIC,
    Opcode.SLL: Category.SHIFT,
    Opcode.SRL: Category.SHIFT,
    Opcode.SRA: Category.SHIFT,
    Opcode.SLLV: Category.SHIFT,
    Opcode.SRLV: Category.SHIFT,
    Opcode.SLT: Category.SET,
    Opcode.SLTI: Category.SET,
    Opcode.SLTU: Category.SET,
    Opcode.SEQ: Category.SET,
    Opcode.SNE: Category.SET,
    Opcode.MULT: Category.MULTDIV,
    Opcode.DIV: Category.MULTDIV,
    Opcode.REM: Category.MULTDIV,
    Opcode.LUI: Category.LUI,
    Opcode.MOV: Category.OTHER,
    Opcode.LI: Category.OTHER,
    Opcode.JAL: Category.OTHER,
    Opcode.SW: Category.STORE,
    Opcode.SB: Category.STORE,
    Opcode.BEQ: Category.CONTROL,
    Opcode.BNE: Category.CONTROL,
    Opcode.BLT: Category.CONTROL,
    Opcode.BGE: Category.CONTROL,
    Opcode.BLE: Category.CONTROL,
    Opcode.BGT: Category.CONTROL,
    Opcode.J: Category.CONTROL,
    Opcode.JR: Category.CONTROL,
    Opcode.NOP: Category.CONTROL,
    Opcode.HALT: Category.CONTROL,
}

#: Opcodes that take an immediate operand instead of a second source register.
IMMEDIATE_OPCODES: frozenset[Opcode] = frozenset(
    {
        Opcode.ADDI,
        Opcode.SUBI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SLL,
        Opcode.SRL,
        Opcode.SRA,
        Opcode.SLTI,
        Opcode.LUI,
        Opcode.LI,
        Opcode.LW,
        Opcode.LB,
        Opcode.SW,
        Opcode.SB,
    }
)

#: Opcodes that transfer control (need a target label or register).
BRANCH_OPCODES: frozenset[Opcode] = frozenset(
    {
        Opcode.BEQ,
        Opcode.BNE,
        Opcode.BLT,
        Opcode.BGE,
        Opcode.BLE,
        Opcode.BGT,
    }
)

JUMP_OPCODES: frozenset[Opcode] = frozenset({Opcode.J, Opcode.JAL, Opcode.JR})


def category_of(opcode: Opcode) -> Category:
    """Return the reporting category of ``opcode`` (Table 3 mapping)."""
    return CATEGORY_OF[opcode]


def is_predicted_opcode(opcode: Opcode) -> bool:
    """Return ``True`` if results of ``opcode`` are candidates for prediction.

    The paper predicts instructions that write results into general purpose
    registers; stores, branches, plain jumps, nops and halt do not and are
    excluded.  ``jal`` writes a link register value, so it is included in the
    ``Other`` category.
    """
    return CATEGORY_OF[opcode] in PREDICTED_CATEGORIES
