"""The interpreter: fetch/decode/execute loop with value-trace emission.

The :class:`Machine` plays the role SimpleScalar plays in the paper: it runs
a program to completion and, for every retired instruction, reports the
instruction's PC, opcode, category and (when one exists) its result value.
Observers such as :class:`repro.trace.collector.TraceCollector` subscribe to
these retirement events and build the value traces the predictors consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ExecutionError, ExecutionLimitExceeded, InvalidInstructionError
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.isa.memory import SparseMemory
from repro.isa.opcodes import Category, Opcode
from repro.isa.program import Program
from repro.isa.registers import RegisterFile, to_unsigned, wrap_value

#: Default dynamic-instruction budget; guards against runaway programs.
DEFAULT_MAX_INSTRUCTIONS = 50_000_000


@dataclass(frozen=True)
class RetiredInstruction:
    """A single retirement event delivered to observers.

    ``value`` is ``None`` for instructions that do not write a register
    (stores, branches, jumps, nop, halt).
    """

    serial: int
    pc: int
    opcode: Opcode
    category: Category
    value: int | None
    annotation: str = ""


@dataclass
class ExecutionResult:
    """Summary of one program execution."""

    program_name: str
    retired_instructions: int = 0
    register_writes: int = 0
    halted: bool = False
    category_counts: dict[Category, int] = field(default_factory=dict)

    def fraction_predicted(self) -> float:
        """Fraction of retired instructions that wrote a register."""
        if self.retired_instructions == 0:
            return 0.0
        return self.register_writes / self.retired_instructions


RetirementObserver = Callable[[RetiredInstruction, Instruction], None]


class Machine:
    """Executes a :class:`Program` against a register file and memory."""

    def __init__(
        self,
        program: Program,
        memory: SparseMemory | None = None,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> None:
        if max_instructions <= 0:
            raise ExecutionError("max_instructions must be positive")
        self.program = program
        self.registers = RegisterFile()
        self.memory = memory if memory is not None else SparseMemory()
        self.max_instructions = max_instructions
        self._observers: list[RetirementObserver] = []
        self._serial = 0

    # ------------------------------------------------------------------ #
    # Observer management
    # ------------------------------------------------------------------ #
    def add_observer(self, observer: RetirementObserver) -> None:
        """Register a callback invoked for every retired instruction."""
        self._observers.append(observer)

    def remove_observer(self, observer: RetirementObserver) -> None:
        """Unregister a previously added observer."""
        self._observers.remove(observer)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self) -> ExecutionResult:
        """Execute the program until ``halt`` or the instruction budget."""
        result = ExecutionResult(program_name=self.program.name)
        instructions = self.program.instructions
        labels = self.program.labels
        registers = self.registers
        memory = self.memory
        observers = self._observers
        category_counts = result.category_counts
        index = 0
        limit = self.max_instructions
        retired = 0

        while True:
            if index < 0 or index >= len(instructions):
                raise ExecutionError(
                    f"{self.program.name!r}: control transferred outside the program "
                    f"(index {index})"
                )
            instruction = instructions[index]
            opcode = instruction.opcode
            if opcode is Opcode.HALT:
                result.halted = True
                break
            if retired >= limit:
                raise ExecutionLimitExceeded(
                    f"{self.program.name!r}: exceeded the budget of {limit} dynamic instructions"
                )

            next_index = index + 1
            value: int | None = None

            if opcode is Opcode.ADD:
                value = registers.write(
                    instruction.rd, registers.read(instruction.rs) + registers.read(instruction.rt)
                )
            elif opcode is Opcode.ADDI:
                value = registers.write(
                    instruction.rd, registers.read(instruction.rs) + instruction.imm
                )
            elif opcode is Opcode.SUB:
                value = registers.write(
                    instruction.rd, registers.read(instruction.rs) - registers.read(instruction.rt)
                )
            elif opcode is Opcode.SUBI:
                value = registers.write(
                    instruction.rd, registers.read(instruction.rs) - instruction.imm
                )
            elif opcode is Opcode.LW:
                address = registers.read(instruction.rs) + instruction.imm
                value = registers.write(instruction.rd, memory.load_word(address))
            elif opcode is Opcode.LB:
                address = registers.read(instruction.rs) + instruction.imm
                value = registers.write(instruction.rd, memory.load_byte(address))
            elif opcode is Opcode.SW:
                address = registers.read(instruction.rs) + instruction.imm
                memory.store_word(address, registers.read(instruction.rt))
            elif opcode is Opcode.SB:
                address = registers.read(instruction.rs) + instruction.imm
                memory.store_byte(address, registers.read(instruction.rt))
            elif opcode is Opcode.AND:
                value = registers.write(
                    instruction.rd,
                    to_unsigned(registers.read(instruction.rs))
                    & to_unsigned(registers.read(instruction.rt)),
                )
            elif opcode is Opcode.ANDI:
                value = registers.write(
                    instruction.rd,
                    to_unsigned(registers.read(instruction.rs)) & to_unsigned(instruction.imm),
                )
            elif opcode is Opcode.OR:
                value = registers.write(
                    instruction.rd,
                    to_unsigned(registers.read(instruction.rs))
                    | to_unsigned(registers.read(instruction.rt)),
                )
            elif opcode is Opcode.ORI:
                value = registers.write(
                    instruction.rd,
                    to_unsigned(registers.read(instruction.rs)) | to_unsigned(instruction.imm),
                )
            elif opcode is Opcode.XOR:
                value = registers.write(
                    instruction.rd,
                    to_unsigned(registers.read(instruction.rs))
                    ^ to_unsigned(registers.read(instruction.rt)),
                )
            elif opcode is Opcode.XORI:
                value = registers.write(
                    instruction.rd,
                    to_unsigned(registers.read(instruction.rs)) ^ to_unsigned(instruction.imm),
                )
            elif opcode is Opcode.NOR:
                value = registers.write(
                    instruction.rd,
                    ~(
                        to_unsigned(registers.read(instruction.rs))
                        | to_unsigned(registers.read(instruction.rt))
                    ),
                )
            elif opcode is Opcode.SLL:
                value = registers.write(
                    instruction.rd, registers.read(instruction.rs) << (instruction.imm & 63)
                )
            elif opcode is Opcode.SRL:
                value = registers.write(
                    instruction.rd,
                    to_unsigned(registers.read(instruction.rs)) >> (instruction.imm & 63),
                )
            elif opcode is Opcode.SRA:
                value = registers.write(
                    instruction.rd, registers.read(instruction.rs) >> (instruction.imm & 63)
                )
            elif opcode is Opcode.SLLV:
                value = registers.write(
                    instruction.rd,
                    registers.read(instruction.rs) << (registers.read(instruction.rt) & 63),
                )
            elif opcode is Opcode.SRLV:
                value = registers.write(
                    instruction.rd,
                    to_unsigned(registers.read(instruction.rs))
                    >> (registers.read(instruction.rt) & 63),
                )
            elif opcode is Opcode.SLT:
                value = registers.write(
                    instruction.rd,
                    1 if registers.read(instruction.rs) < registers.read(instruction.rt) else 0,
                )
            elif opcode is Opcode.SLTI:
                value = registers.write(
                    instruction.rd, 1 if registers.read(instruction.rs) < instruction.imm else 0
                )
            elif opcode is Opcode.SLTU:
                value = registers.write(
                    instruction.rd,
                    1
                    if to_unsigned(registers.read(instruction.rs))
                    < to_unsigned(registers.read(instruction.rt))
                    else 0,
                )
            elif opcode is Opcode.SEQ:
                value = registers.write(
                    instruction.rd,
                    1 if registers.read(instruction.rs) == registers.read(instruction.rt) else 0,
                )
            elif opcode is Opcode.SNE:
                value = registers.write(
                    instruction.rd,
                    1 if registers.read(instruction.rs) != registers.read(instruction.rt) else 0,
                )
            elif opcode is Opcode.MULT:
                value = registers.write(
                    instruction.rd, registers.read(instruction.rs) * registers.read(instruction.rt)
                )
            elif opcode is Opcode.DIV:
                divisor = registers.read(instruction.rt)
                dividend = registers.read(instruction.rs)
                value = registers.write(
                    instruction.rd, 0 if divisor == 0 else int(dividend / divisor)
                )
            elif opcode is Opcode.REM:
                divisor = registers.read(instruction.rt)
                dividend = registers.read(instruction.rs)
                value = registers.write(
                    instruction.rd,
                    0 if divisor == 0 else dividend - int(dividend / divisor) * divisor,
                )
            elif opcode is Opcode.LUI:
                value = registers.write(instruction.rd, wrap_value(instruction.imm << 16))
            elif opcode is Opcode.MOV:
                value = registers.write(instruction.rd, registers.read(instruction.rs))
            elif opcode is Opcode.LI:
                value = registers.write(instruction.rd, instruction.imm)
            elif opcode is Opcode.JAL:
                value = registers.write(instruction.rd, (index + 1) * INSTRUCTION_SIZE)
                next_index = labels[instruction.target]
            elif opcode is Opcode.BEQ:
                if registers.read(instruction.rs) == registers.read(instruction.rt):
                    next_index = labels[instruction.target]
            elif opcode is Opcode.BNE:
                if registers.read(instruction.rs) != registers.read(instruction.rt):
                    next_index = labels[instruction.target]
            elif opcode is Opcode.BLT:
                if registers.read(instruction.rs) < registers.read(instruction.rt):
                    next_index = labels[instruction.target]
            elif opcode is Opcode.BGE:
                if registers.read(instruction.rs) >= registers.read(instruction.rt):
                    next_index = labels[instruction.target]
            elif opcode is Opcode.BLE:
                if registers.read(instruction.rs) <= registers.read(instruction.rt):
                    next_index = labels[instruction.target]
            elif opcode is Opcode.BGT:
                if registers.read(instruction.rs) > registers.read(instruction.rt):
                    next_index = labels[instruction.target]
            elif opcode is Opcode.J:
                next_index = labels[instruction.target]
            elif opcode is Opcode.JR:
                next_index = registers.read(instruction.rs) // INSTRUCTION_SIZE
            elif opcode is Opcode.NOP:
                pass
            else:  # pragma: no cover - all opcodes handled above
                raise InvalidInstructionError(f"unhandled opcode {opcode}")

            category = instruction.category
            category_counts[category] = category_counts.get(category, 0) + 1
            retired += 1
            if value is not None:
                result.register_writes += 1
            if observers:
                event = RetiredInstruction(
                    serial=self._serial,
                    pc=index * INSTRUCTION_SIZE,
                    opcode=opcode,
                    category=category,
                    value=value,
                    annotation=instruction.annotation,
                )
                for observer in observers:
                    observer(event, instruction)
            self._serial += 1
            index = next_index

        result.retired_instructions = retired
        return result


def run_program(
    program: Program,
    observers: Iterable[RetirementObserver] = (),
    memory: SparseMemory | None = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> ExecutionResult:
    """Convenience wrapper: build a machine, attach observers, run it."""
    machine = Machine(program, memory=memory, max_instructions=max_instructions)
    for observer in observers:
        machine.add_observer(observer)
    return machine.run()
