"""MIPS-like instruction-set substrate (SimpleScalar substitute).

The paper's evaluation is trace driven: SimpleScalar executes SPEC95
binaries and feeds the result value of every register-writing instruction to
the predictors.  This package provides the equivalent substrate in pure
Python: a small general-purpose-register ISA, a sparse memory, a program
builder with symbolic labels, and an interpreter (:class:`Machine`) that
retires instructions and reports each result value to an observer.

The instruction categories exactly mirror Table 3 of the paper
(AddSub, Loads, Logic, Shift, Set, MultDiv, Lui, Other), plus the
non-predicted control/store instructions.
"""

from repro.isa.opcodes import Opcode, Category, category_of, is_predicted_opcode
from repro.isa.instructions import Instruction
from repro.isa.registers import RegisterFile, NUM_REGISTERS
from repro.isa.memory import SparseMemory
from repro.isa.program import Program, ProgramBuilder
from repro.isa.machine import Machine, RetiredInstruction, ExecutionResult

__all__ = [
    "Opcode",
    "Category",
    "category_of",
    "is_predicted_opcode",
    "Instruction",
    "RegisterFile",
    "NUM_REGISTERS",
    "SparseMemory",
    "Program",
    "ProgramBuilder",
    "Machine",
    "RetiredInstruction",
    "ExecutionResult",
]
