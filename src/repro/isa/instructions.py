"""Instruction representation for the MIPS-like ISA.

An :class:`Instruction` is a frozen dataclass; programs are simply tuples of
instructions with PCs assigned by their position (``pc = index * 4`` to mimic
a word-addressed instruction memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidInstructionError
from repro.isa.opcodes import (
    BRANCH_OPCODES,
    IMMEDIATE_OPCODES,
    Category,
    Opcode,
    category_of,
    is_predicted_opcode,
)

#: Byte distance between consecutive instructions (MIPS-style word addressing).
INSTRUCTION_SIZE = 4


@dataclass(frozen=True)
class Instruction:
    """A single decoded instruction.

    Parameters
    ----------
    opcode:
        The operation to perform.
    rd:
        Destination register index (``None`` for instructions without one).
    rs:
        First source register index.
    rt:
        Second source register index.
    imm:
        Immediate operand (shift amounts, address offsets, constants).
    target:
        Symbolic label for branches/jumps; resolved to an instruction index
        by :class:`repro.isa.program.Program`.
    annotation:
        Optional free-form tag used by workloads to label the role of the
        instruction (useful when debugging synthetic kernels).
    """

    opcode: Opcode
    rd: int | None = None
    rs: int | None = None
    rt: int | None = None
    imm: int = 0
    target: str | None = None
    annotation: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        for name, reg in (("rd", self.rd), ("rs", self.rs), ("rt", self.rt)):
            if reg is not None and not 0 <= reg < 32:
                raise InvalidInstructionError(
                    f"{self.opcode}: register operand {name}={reg} out of range [0, 32)"
                )
        if self.opcode in BRANCH_OPCODES and self.target is None:
            raise InvalidInstructionError(f"{self.opcode}: branch requires a target label")
        if self.opcode in (Opcode.J, Opcode.JAL) and self.target is None:
            raise InvalidInstructionError(f"{self.opcode}: jump requires a target label")
        if self.opcode is Opcode.JR and self.rs is None:
            raise InvalidInstructionError("jr requires a source register")

    @property
    def category(self) -> Category:
        """Reporting category of this instruction (Table 3 mapping)."""
        return category_of(self.opcode)

    @property
    def writes_register(self) -> bool:
        """``True`` if the instruction writes a general purpose register."""
        return is_predicted_opcode(self.opcode) and self.rd is not None

    @property
    def uses_immediate(self) -> bool:
        """``True`` if the second operand is an immediate rather than ``rt``."""
        return self.opcode in IMMEDIATE_OPCODES

    def __str__(self) -> str:
        parts = [self.opcode.value]
        if self.rd is not None:
            parts.append(f"r{self.rd}")
        if self.rs is not None:
            parts.append(f"r{self.rs}")
        if self.rt is not None:
            parts.append(f"r{self.rt}")
        if self.uses_immediate or self.imm:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(self.target)
        return " ".join(parts)
