"""Sparse word-addressable data memory.

The synthetic workloads manipulate arrays, hash tables, linked structures and
strings; a sparse dictionary keyed by word address is sufficient and keeps the
interpreter simple and fast.  Addresses are byte addresses but storage is per
64-bit word (the ``lb``/``sb`` byte forms operate on the low byte of the
addressed word), which is a deliberate simplification: the predictors only
see result *values*, so sub-word packing does not affect any experiment.
"""

from __future__ import annotations

from repro.errors import MemoryError_
from repro.isa.registers import wrap_value

#: Number of bytes per memory word.
WORD_SIZE = 8


class SparseMemory:
    """A sparse, lazily-allocated data memory.

    Uninitialised locations read as zero, which mirrors the zero-filled BSS
    segments the original benchmarks rely on.
    """

    __slots__ = ("_words",)

    def __init__(self, initial: dict[int, int] | None = None) -> None:
        self._words: dict[int, int] = {}
        if initial:
            for address, value in initial.items():
                self.store_word(address, value)

    @staticmethod
    def _word_index(address: int) -> int:
        if not isinstance(address, int) or address < 0:
            raise MemoryError_(f"invalid memory address {address!r}")
        return address // WORD_SIZE

    def load_word(self, address: int) -> int:
        """Return the signed 64-bit word containing byte ``address``."""
        return self._words.get(self._word_index(address), 0)

    def store_word(self, address: int, value: int) -> int:
        """Store ``value`` (wrapped to 64 bits) at byte ``address``'s word."""
        wrapped = wrap_value(value)
        self._words[self._word_index(address)] = wrapped
        return wrapped

    def load_byte(self, address: int) -> int:
        """Return the low byte (0..255) of the word containing ``address``."""
        return self.load_word(address) & 0xFF

    def store_byte(self, address: int, value: int) -> int:
        """Store ``value & 0xFF`` into the low byte of the addressed word."""
        index = self._word_index(address)
        word = self._words.get(index, 0)
        new_word = wrap_value((word & ~0xFF) | (value & 0xFF))
        self._words[index] = new_word
        return new_word & 0xFF

    def footprint(self) -> int:
        """Return the number of distinct words ever written."""
        return len(self._words)

    def clear(self) -> None:
        """Discard all memory contents."""
        self._words.clear()

    def __contains__(self, address: int) -> bool:
        return self._word_index(address) in self._words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SparseMemory(words={len(self._words)})"
