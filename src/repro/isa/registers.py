"""Architectural register file.

The ISA has 32 general purpose registers of 64 bits each.  Register 0 is
hard-wired to zero, as on MIPS.  Values are stored as Python integers in
two's-complement signed range ``[-2**63, 2**63)``; all writes are wrapped to
that range so arithmetic behaves like fixed-width hardware.
"""

from __future__ import annotations

from repro.errors import InvalidRegisterError

#: Number of architectural general purpose registers.
NUM_REGISTERS = 32

#: Width of a register in bits.
REGISTER_WIDTH = 64

_MASK = (1 << REGISTER_WIDTH) - 1
_SIGN_BIT = 1 << (REGISTER_WIDTH - 1)


def wrap_value(value: int) -> int:
    """Wrap ``value`` into signed two's-complement ``REGISTER_WIDTH`` range."""
    value &= _MASK
    if value & _SIGN_BIT:
        value -= 1 << REGISTER_WIDTH
    return value


def to_unsigned(value: int) -> int:
    """Return the unsigned interpretation of a wrapped register value."""
    return value & _MASK


class RegisterFile:
    """A 32-entry general purpose register file with ``r0`` fixed at zero."""

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs: list[int] = [0] * NUM_REGISTERS

    def read(self, index: int) -> int:
        """Return the signed value stored in register ``index``."""
        self._check(index)
        return self._regs[index]

    def write(self, index: int, value: int) -> int:
        """Write ``value`` (wrapped to 64 bits) to register ``index``.

        Returns the value actually stored.  Writes to register 0 are ignored
        and return 0, matching the MIPS convention.
        """
        self._check(index)
        if index == 0:
            return 0
        wrapped = wrap_value(value)
        self._regs[index] = wrapped
        return wrapped

    def snapshot(self) -> tuple[int, ...]:
        """Return an immutable copy of all register values."""
        return tuple(self._regs)

    def reset(self) -> None:
        """Clear every register back to zero."""
        for i in range(NUM_REGISTERS):
            self._regs[i] = 0

    def _check(self, index: int) -> None:
        if not isinstance(index, int) or not 0 <= index < NUM_REGISTERS:
            raise InvalidRegisterError(f"register index {index!r} out of range [0, {NUM_REGISTERS})")

    def __getitem__(self, index: int) -> int:
        return self.read(index)

    def __setitem__(self, index: int, value: int) -> None:
        self.write(index, value)

    def __len__(self) -> int:
        return NUM_REGISTERS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {i: v for i, v in enumerate(self._regs) if v}
        return f"RegisterFile({nonzero})"
