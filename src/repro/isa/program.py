"""Program representation and a builder with symbolic labels.

Workloads construct programs through :class:`ProgramBuilder`, which offers
one emitter method per opcode plus label management.  :class:`Program`
resolves labels into instruction indices and is what the
:class:`repro.isa.machine.Machine` executes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProgramError
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.isa.opcodes import BRANCH_OPCODES, Opcode


@dataclass(frozen=True)
class Program:
    """An immutable, label-resolved program.

    Attributes
    ----------
    name:
        Human-readable program name (usually the workload name).
    instructions:
        The instruction sequence; the instruction at index ``i`` has
        ``pc = i * INSTRUCTION_SIZE``.
    labels:
        Mapping from label name to instruction index.
    """

    name: str
    instructions: tuple[Instruction, ...]
    labels: dict[str, int]

    def __post_init__(self) -> None:
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise ProgramError(f"label {label!r} resolves outside the program")
        for position, instruction in enumerate(self.instructions):
            if instruction.target is not None and instruction.opcode is not Opcode.JR:
                if instruction.target not in self.labels:
                    raise ProgramError(
                        f"instruction {position} ({instruction}) references unknown label "
                        f"{instruction.target!r}"
                    )

    def __len__(self) -> int:
        return len(self.instructions)

    def pc_of_index(self, index: int) -> int:
        """Return the program counter value of the instruction at ``index``."""
        return index * INSTRUCTION_SIZE

    def index_of_label(self, label: str) -> int:
        """Return the instruction index a label refers to."""
        try:
            return self.labels[label]
        except KeyError as exc:
            raise ProgramError(f"unknown label {label!r}") from exc

    def static_pcs(self) -> tuple[int, ...]:
        """Return the PCs of all static instructions in program order."""
        return tuple(i * INSTRUCTION_SIZE for i in range(len(self.instructions)))


class ProgramBuilder:
    """Incrementally build a :class:`Program` with symbolic labels.

    Register allocation is left to the caller (workloads use small helper
    conventions); the builder is purely about assembling the instruction
    stream and resolving labels.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._label_counter = 0

    # ------------------------------------------------------------------ #
    # Label management
    # ------------------------------------------------------------------ #
    def label(self, name: str) -> str:
        """Bind ``name`` to the next emitted instruction and return it."""
        if name in self._labels:
            raise ProgramError(f"label {name!r} defined twice in program {self.name!r}")
        self._labels[name] = len(self._instructions)
        return name

    def fresh_label(self, stem: str = "L") -> str:
        """Return a unique label name (not yet bound to a position)."""
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    @property
    def next_index(self) -> int:
        """Index that the next emitted instruction will occupy."""
        return len(self._instructions)

    # ------------------------------------------------------------------ #
    # Raw emission
    # ------------------------------------------------------------------ #
    def emit(self, instruction: Instruction) -> Instruction:
        """Append a pre-built instruction."""
        self._instructions.append(instruction)
        return instruction

    def _op(self, opcode: Opcode, **kwargs) -> Instruction:
        return self.emit(Instruction(opcode, **kwargs))

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def add(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.ADD, rd=rd, rs=rs, rt=rt, annotation=annotation)

    def addi(self, rd: int, rs: int, imm: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.ADDI, rd=rd, rs=rs, imm=imm, annotation=annotation)

    def sub(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.SUB, rd=rd, rs=rs, rt=rt, annotation=annotation)

    def subi(self, rd: int, rs: int, imm: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.SUBI, rd=rd, rs=rs, imm=imm, annotation=annotation)

    # ------------------------------------------------------------------ #
    # Memory
    # ------------------------------------------------------------------ #
    def lw(self, rd: int, rs: int, imm: int = 0, annotation: str = "") -> Instruction:
        return self._op(Opcode.LW, rd=rd, rs=rs, imm=imm, annotation=annotation)

    def lb(self, rd: int, rs: int, imm: int = 0, annotation: str = "") -> Instruction:
        return self._op(Opcode.LB, rd=rd, rs=rs, imm=imm, annotation=annotation)

    def sw(self, rt: int, rs: int, imm: int = 0, annotation: str = "") -> Instruction:
        return self._op(Opcode.SW, rt=rt, rs=rs, imm=imm, annotation=annotation)

    def sb(self, rt: int, rs: int, imm: int = 0, annotation: str = "") -> Instruction:
        return self._op(Opcode.SB, rt=rt, rs=rs, imm=imm, annotation=annotation)

    # ------------------------------------------------------------------ #
    # Logic
    # ------------------------------------------------------------------ #
    def and_(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.AND, rd=rd, rs=rs, rt=rt, annotation=annotation)

    def andi(self, rd: int, rs: int, imm: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.ANDI, rd=rd, rs=rs, imm=imm, annotation=annotation)

    def or_(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.OR, rd=rd, rs=rs, rt=rt, annotation=annotation)

    def ori(self, rd: int, rs: int, imm: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.ORI, rd=rd, rs=rs, imm=imm, annotation=annotation)

    def xor(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.XOR, rd=rd, rs=rs, rt=rt, annotation=annotation)

    def xori(self, rd: int, rs: int, imm: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.XORI, rd=rd, rs=rs, imm=imm, annotation=annotation)

    def nor(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.NOR, rd=rd, rs=rs, rt=rt, annotation=annotation)

    # ------------------------------------------------------------------ #
    # Shifts
    # ------------------------------------------------------------------ #
    def sll(self, rd: int, rs: int, imm: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.SLL, rd=rd, rs=rs, imm=imm, annotation=annotation)

    def srl(self, rd: int, rs: int, imm: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.SRL, rd=rd, rs=rs, imm=imm, annotation=annotation)

    def sra(self, rd: int, rs: int, imm: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.SRA, rd=rd, rs=rs, imm=imm, annotation=annotation)

    def sllv(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.SLLV, rd=rd, rs=rs, rt=rt, annotation=annotation)

    def srlv(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.SRLV, rd=rd, rs=rs, rt=rt, annotation=annotation)

    # ------------------------------------------------------------------ #
    # Compare-and-set
    # ------------------------------------------------------------------ #
    def slt(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.SLT, rd=rd, rs=rs, rt=rt, annotation=annotation)

    def slti(self, rd: int, rs: int, imm: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.SLTI, rd=rd, rs=rs, imm=imm, annotation=annotation)

    def sltu(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.SLTU, rd=rd, rs=rs, rt=rt, annotation=annotation)

    def seq(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.SEQ, rd=rd, rs=rs, rt=rt, annotation=annotation)

    def sne(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.SNE, rd=rd, rs=rs, rt=rt, annotation=annotation)

    # ------------------------------------------------------------------ #
    # Multiply / divide / LUI / moves
    # ------------------------------------------------------------------ #
    def mult(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.MULT, rd=rd, rs=rs, rt=rt, annotation=annotation)

    def div(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.DIV, rd=rd, rs=rs, rt=rt, annotation=annotation)

    def rem(self, rd: int, rs: int, rt: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.REM, rd=rd, rs=rs, rt=rt, annotation=annotation)

    def lui(self, rd: int, imm: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.LUI, rd=rd, imm=imm, annotation=annotation)

    def mov(self, rd: int, rs: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.MOV, rd=rd, rs=rs, annotation=annotation)

    def li(self, rd: int, imm: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.LI, rd=rd, imm=imm, annotation=annotation)

    # ------------------------------------------------------------------ #
    # Control flow
    # ------------------------------------------------------------------ #
    def beq(self, rs: int, rt: int, target: str, annotation: str = "") -> Instruction:
        return self._op(Opcode.BEQ, rs=rs, rt=rt, target=target, annotation=annotation)

    def bne(self, rs: int, rt: int, target: str, annotation: str = "") -> Instruction:
        return self._op(Opcode.BNE, rs=rs, rt=rt, target=target, annotation=annotation)

    def blt(self, rs: int, rt: int, target: str, annotation: str = "") -> Instruction:
        return self._op(Opcode.BLT, rs=rs, rt=rt, target=target, annotation=annotation)

    def bge(self, rs: int, rt: int, target: str, annotation: str = "") -> Instruction:
        return self._op(Opcode.BGE, rs=rs, rt=rt, target=target, annotation=annotation)

    def ble(self, rs: int, rt: int, target: str, annotation: str = "") -> Instruction:
        return self._op(Opcode.BLE, rs=rs, rt=rt, target=target, annotation=annotation)

    def bgt(self, rs: int, rt: int, target: str, annotation: str = "") -> Instruction:
        return self._op(Opcode.BGT, rs=rs, rt=rt, target=target, annotation=annotation)

    def j(self, target: str, annotation: str = "") -> Instruction:
        return self._op(Opcode.J, target=target, annotation=annotation)

    def jal(self, rd: int, target: str, annotation: str = "") -> Instruction:
        return self._op(Opcode.JAL, rd=rd, target=target, annotation=annotation)

    def jr(self, rs: int, annotation: str = "") -> Instruction:
        return self._op(Opcode.JR, rs=rs, annotation=annotation)

    def nop(self, annotation: str = "") -> Instruction:
        return self._op(Opcode.NOP, annotation=annotation)

    def halt(self, annotation: str = "") -> Instruction:
        return self._op(Opcode.HALT, annotation=annotation)

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #
    def build(self) -> Program:
        """Resolve labels and return the finished :class:`Program`."""
        if not self._instructions:
            raise ProgramError(f"program {self.name!r} has no instructions")
        if self._instructions[-1].opcode is not Opcode.HALT:
            self.halt()
        self._validate_targets()
        return Program(
            name=self.name,
            instructions=tuple(self._instructions),
            labels=dict(self._labels),
        )

    def _validate_targets(self) -> None:
        for position, instruction in enumerate(self._instructions):
            needs_label = instruction.opcode in BRANCH_OPCODES or instruction.opcode in (
                Opcode.J,
                Opcode.JAL,
            )
            if needs_label and instruction.target not in self._labels:
                raise ProgramError(
                    f"{self.name!r}: instruction {position} ({instruction}) targets "
                    f"undefined label {instruction.target!r}"
                )
