"""Synthetic ``124.m88ksim`` workload: a CPU simulator's dispatch loop.

m88ksim simulates a Motorola 88100 processor: it repeatedly fetches a target
instruction word, decodes its fields with shifts and masks, dispatches on the
opcode, and updates the simulated register file held in memory.  Because the
simulated target program is a small loop, the fetch/decode/execute values
repeat with a short period — exactly the behaviour that makes m88ksim the
most value-predictable SPEC95int benchmark in the paper.

The synthetic version embeds a small target program (encoded instruction
words in memory) and interprets it for a configurable number of steps.
"""

from __future__ import annotations

from repro.isa.memory import SparseMemory
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.base import Workload

TARGET_TEXT_BASE = 0x1_0000
TARGET_REGS_BASE = 0x2_0000
TARGET_DATA_BASE = 0x3_0000
STATS_BASE = 0x4_0000

#: Target-machine opcodes (encoded in the high byte of the instruction word).
OP_ADD, OP_ADDI, OP_LOAD, OP_STORE, OP_SHIFT, OP_BRANCH = 0, 1, 2, 3, 4, 5

#: Number of simulated target registers.
TARGET_REGISTERS = 16


def encode(op: int, rd: int, rs: int, imm: int) -> int:
    """Encode one target instruction word (op:8 | rd:8 | rs:8 | imm:16)."""
    return (op << 24) | ((rd & 0xFF) << 16) | ((rs & 0xFF) << 8) | (imm & 0xFF)


#: The simulated target program: a counted loop that sums an array, shifts an
#: accumulator and stores partial results — 12 instructions, so the host
#: simulator's fetch/decode values repeat with period 12.
TARGET_PROGRAM: tuple[int, ...] = (
    encode(OP_ADDI, 1, 1, 1),       # r1 += 1 (induction variable)
    encode(OP_LOAD, 2, 1, 0),       # r2 = data[r1]
    encode(OP_ADD, 3, 2, 3),        # r3 += r2 (running sum; rs doubles as addend)
    encode(OP_SHIFT, 4, 3, 2),      # r4 = r3 << 2
    encode(OP_ADDI, 5, 5, 4),       # r5 += 4 (address stride)
    encode(OP_STORE, 4, 5, 0),      # data[r5] = r4
    encode(OP_ADD, 6, 6, 1),        # r6 += 1 (iteration count mirror)
    encode(OP_ADDI, 7, 7, 3),       # r7 += 3
    encode(OP_SHIFT, 8, 7, 1),      # r8 = r7 << 1
    encode(OP_ADD, 9, 8, 2),        # r9 = r8 + r2
    encode(OP_ADDI, 10, 10, 0),     # r10 += 0 (constant result)
    encode(OP_BRANCH, 0, 1, 0),     # wrap back to the top
)


class M88ksimWorkload(Workload):
    """Fetch/decode/execute interpretation of a small embedded target loop."""

    name = "m88ksim"
    description = "CPU-simulator fetch/decode/execute dispatch loop"
    input_sets = ("ctl.raw", "dcrand")
    flag_sets = ("ref",)
    base_dynamic_instructions = 68_000

    #: Simulated target steps at scale = 1.0.
    _STEPS = {"ctl.raw": 1500, "dcrand": 700}

    def build(self, scale: float, input_name: str, flags: str) -> tuple[Program, SparseMemory]:
        steps = self.scaled(self._STEPS[input_name], scale, minimum=48)
        memory = self._build_memory(input_name)
        program = self._build_program(steps)
        return program, memory

    def _build_memory(self, input_name: str) -> SparseMemory:
        memory = SparseMemory()
        rng = self.rng(seed=0x88 + len(input_name))
        for index, word in enumerate(TARGET_PROGRAM):
            memory.store_word(TARGET_TEXT_BASE + index * 8, word)
        # Target data segment the simulated loads read from.
        for index in range(256):
            memory.store_word(TARGET_DATA_BASE + index * 8, rng.randrange(0, 64))
        return memory

    def _build_program(self, steps: int) -> Program:
        b = ProgramBuilder(self.name)
        r_step, r_steps, r_simpc, r_insn = 1, 2, 3, 4
        r_op, r_rd, r_rs, r_imm = 5, 6, 7, 8
        r_addr, r_val, r_src, r_cond = 9, 10, 11, 12
        r_tmp, r_proglen, r_retired = 13, 14, 15

        b.li(r_step, 0, "host step counter")
        b.li(r_steps, steps, "simulated step budget")
        b.li(r_simpc, 0, "simulated PC (instruction index)")
        b.li(r_proglen, len(TARGET_PROGRAM), "target program length")
        b.li(r_retired, 0, "simulated retired instructions")

        step_loop = b.label("step_loop")
        step_done = b.fresh_label("step_done")
        b.slt(r_cond, r_step, r_steps, "steps left?")
        b.beq(r_cond, 0, step_done)

        # --- fetch ---------------------------------------------------------
        b.sll(r_addr, r_simpc, 3, "text offset")
        b.addi(r_addr, r_addr, TARGET_TEXT_BASE, "text address")
        b.lw(r_insn, r_addr, 0, "fetch target instruction")

        # --- decode --------------------------------------------------------
        b.srl(r_op, r_insn, 24, "opcode field")
        b.srl(r_rd, r_insn, 16, "rd field (raw)")
        b.andi(r_rd, r_rd, 0xFF, "rd field")
        b.srl(r_rs, r_insn, 8, "rs field (raw)")
        b.andi(r_rs, r_rs, 0xFF, "rs field")
        b.andi(r_imm, r_insn, 0xFF, "immediate field")

        # --- read the simulated source register -----------------------------
        b.sll(r_addr, r_rs, 3, "source register offset")
        b.addi(r_addr, r_addr, TARGET_REGS_BASE, "source register address")
        b.lw(r_src, r_addr, 0, "simulated source value")

        # --- dispatch --------------------------------------------------------
        do_add, do_addi, do_load = b.fresh_label("do_add"), b.fresh_label("do_addi"), b.fresh_label("do_load")
        do_store, do_shift, do_branch = b.fresh_label("do_store"), b.fresh_label("do_shift"), b.fresh_label("do_branch")
        writeback = b.fresh_label("writeback")
        advance = b.fresh_label("advance")

        b.li(r_tmp, OP_ADD, "ADD opcode")
        b.seq(r_cond, r_op, r_tmp, "is add?")
        b.bne(r_cond, 0, do_add)
        b.li(r_tmp, OP_ADDI, "ADDI opcode")
        b.seq(r_cond, r_op, r_tmp, "is addi?")
        b.bne(r_cond, 0, do_addi)
        b.li(r_tmp, OP_LOAD, "LOAD opcode")
        b.seq(r_cond, r_op, r_tmp, "is load?")
        b.bne(r_cond, 0, do_load)
        b.li(r_tmp, OP_STORE, "STORE opcode")
        b.seq(r_cond, r_op, r_tmp, "is store?")
        b.bne(r_cond, 0, do_store)
        b.li(r_tmp, OP_SHIFT, "SHIFT opcode")
        b.seq(r_cond, r_op, r_tmp, "is shift?")
        b.bne(r_cond, 0, do_shift)
        b.j(do_branch)

        b.label(do_add)
        b.sll(r_addr, r_rd, 3, "dest register offset")
        b.addi(r_addr, r_addr, TARGET_REGS_BASE, "dest register address")
        b.lw(r_val, r_addr, 0, "current dest value")
        b.add(r_val, r_val, r_src, "dest += src")
        b.j(writeback)

        b.label(do_addi)
        b.add(r_val, r_src, r_imm, "src + imm")
        b.j(writeback)

        b.label(do_load)
        b.andi(r_tmp, r_src, 0xFF, "wrap data index")
        b.sll(r_addr, r_tmp, 3, "data offset")
        b.addi(r_addr, r_addr, TARGET_DATA_BASE, "data address")
        b.lw(r_val, r_addr, 0, "simulated load")
        b.j(writeback)

        b.label(do_store)
        b.andi(r_tmp, r_src, 0xFF, "wrap data index")
        b.sll(r_addr, r_tmp, 3, "data offset")
        b.addi(r_addr, r_addr, TARGET_DATA_BASE, "data address")
        b.sw(r_rd, r_addr, 0, "simulated store (rd used as value index)")
        b.j(advance)

        b.label(do_shift)
        b.andi(r_tmp, r_imm, 7, "bounded shift amount")
        b.sllv(r_val, r_src, r_tmp, "src << imm")
        b.j(writeback)

        b.label(do_branch)
        b.li(r_simpc, -1, "branch: restart the target loop")
        b.j(advance)

        # --- write back to the simulated register file -----------------------
        b.label(writeback)
        b.sll(r_addr, r_rd, 3, "dest register offset")
        b.addi(r_addr, r_addr, TARGET_REGS_BASE, "dest register address")
        b.sw(r_val, r_addr, 0, "write simulated register")

        b.label(advance)
        b.addi(r_retired, r_retired, 1, "count retired target instruction")
        b.addi(r_simpc, r_simpc, 1, "advance simulated PC")
        b.slt(r_cond, r_simpc, r_proglen, "wrap target PC?")
        b.bne(r_cond, 0, _no_wrap := b.fresh_label("no_wrap"))
        b.li(r_simpc, 0, "wrap to target loop start")
        b.label(_no_wrap)
        b.addi(r_step, r_step, 1, "next host step")
        b.j(step_loop)

        b.label(step_done)
        b.sw(r_retired, 0, STATS_BASE, "store retired count")
        b.halt()
        return b.build()
