"""Synthetic ``132.ijpeg`` workload: block transform and quantisation kernels.

ijpeg spends its time in highly structured nested loops over 8x8 pixel
blocks: forward DCT butterflies, quantisation, and zig-zag reordering.  The
address streams are strides and the loop bookkeeping is extremely regular,
which is why the paper observes comparatively high computational-predictor
accuracy for ijpeg.  The synthetic version walks an image block by block and
applies a butterfly transform, a divide-based quantisation step and an
accumulation pass per block.
"""

from __future__ import annotations

from repro.isa.memory import SparseMemory
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.base import Workload

IMAGE_BASE = 0x1_0000
COEFF_BASE = 0x20_0000
QUANT_BASE = 0x30_0000
OUTPUT_BASE = 0x40_0000

#: Square block edge (JPEG uses 8).
BLOCK = 8
BLOCK_PIXELS = BLOCK * BLOCK


class IjpegWorkload(Workload):
    """8x8 block transforms, quantisation and entropy-style accumulation."""

    name = "ijpeg"
    description = "blocked image transform, quantisation and accumulation"
    input_sets = ("specmun", "vigo", "penguin")
    flag_sets = ("ref",)
    base_dynamic_instructions = 48_000

    #: Image dimension in blocks per input set (image is square).
    _BLOCKS = {"specmun": 4, "vigo": 3, "penguin": 5}
    #: Quality settings the image is compressed at.  The SPEC reference run
    #: compresses the same image at several quality/smoothing settings, which
    #: is exactly what makes its kernels revisit the same pixel data.
    _QUALITY_PASSES = 2

    def build(self, scale: float, input_name: str, flags: str) -> tuple[Program, SparseMemory]:
        blocks_per_side = self._BLOCKS[input_name]
        total_blocks = self.scaled(blocks_per_side * blocks_per_side, scale, minimum=4)
        memory = self._build_memory(total_blocks, input_name)
        program = self._build_program(total_blocks, self._QUALITY_PASSES)
        return program, memory

    def _build_memory(self, total_blocks: int, input_name: str) -> SparseMemory:
        memory = SparseMemory()
        rng = self.rng(seed=0x1D + len(input_name))
        # Pixel data: smooth gradients plus noise, as in natural images.
        for block in range(total_blocks):
            base = IMAGE_BASE + block * BLOCK_PIXELS * 8
            dc = rng.randrange(40, 200)
            for pixel in range(BLOCK_PIXELS):
                row, col = divmod(pixel, BLOCK)
                value = dc + row * 2 + col + rng.randrange(-4, 5)
                memory.store_word(base + pixel * 8, max(0, min(255, value)))
        # Quantisation table: the standard luminance-style increasing steps.
        for pixel in range(BLOCK_PIXELS):
            row, col = divmod(pixel, BLOCK)
            memory.store_word(QUANT_BASE + pixel * 8, 4 + row + col)
        return memory

    def _build_program(self, total_blocks: int, quality_passes: int) -> Program:
        b = ProgramBuilder(self.name)
        r_block, r_blocks, r_pixel, r_addr = 1, 2, 3, 4
        r_value, r_pair, r_sum, r_diff = 5, 6, 7, 8
        r_quant, r_coeff, r_cond, r_tmp = 9, 10, 11, 12
        r_base, r_outbase, r_acc, r_nonzero = 13, 14, 15, 16
        r_row, r_col, r_quality, r_passes = 17, 18, 19, 20

        b.li(r_blocks, total_blocks, "total blocks")
        b.li(r_quality, 0, "quality pass")
        b.li(r_passes, quality_passes, "quality passes")

        quality_loop = b.label("quality_loop")
        quality_done = b.fresh_label("quality_done")
        b.slt(r_cond, r_quality, r_passes, "quality passes left?")
        b.beq(r_cond, 0, quality_done)
        b.li(r_block, 0, "block counter")

        block_loop = b.fresh_label("block_loop")
        block_done = b.fresh_label("block_done")
        b.label(block_loop)
        b.slt(r_cond, r_block, r_blocks, "blocks left?")
        b.beq(r_cond, 0, block_done)
        b.li(r_tmp, BLOCK_PIXELS * 8, "block stride in bytes")
        b.mult(r_base, r_block, r_tmp, "block offset")
        b.addi(r_base, r_base, IMAGE_BASE, "block base address")
        b.mult(r_outbase, r_block, r_tmp, "output block offset")
        b.addi(r_outbase, r_outbase, COEFF_BASE, "coefficient base address")

        # --- butterfly pass: combine pixel pairs across the block ------------
        b.li(r_pixel, 0, "pixel index")
        b.li(r_tmp, BLOCK_PIXELS // 2, "pairs per block")
        bfly_loop = b.fresh_label("bfly_loop")
        bfly_done = b.fresh_label("bfly_done")
        b.label(bfly_loop)
        b.slt(r_cond, r_pixel, r_tmp, "pairs left?")
        b.beq(r_cond, 0, bfly_done)
        b.sll(r_addr, r_pixel, 3, "pixel offset")
        b.add(r_addr, r_addr, r_base, "pixel address")
        b.lw(r_value, r_addr, 0, "pixel p")
        b.lw(r_pair, r_addr, (BLOCK_PIXELS // 2) * 8, "mirror pixel q")
        b.add(r_sum, r_value, r_pair, "p + q")
        b.sub(r_diff, r_value, r_pair, "p - q")
        b.sra(r_sum, r_sum, 1, "(p + q) >> 1")
        b.sll(r_addr, r_pixel, 3, "coefficient offset")
        b.add(r_addr, r_addr, r_outbase, "coefficient address")
        b.sw(r_sum, r_addr, 0, "low-band coefficient")
        b.sw(r_diff, r_addr, (BLOCK_PIXELS // 2) * 8, "high-band coefficient")
        b.addi(r_pixel, r_pixel, 1, "next pair")
        b.j(bfly_loop)
        b.label(bfly_done)

        # --- quantisation pass -------------------------------------------------
        b.li(r_pixel, 0, "coefficient index")
        b.li(r_tmp, BLOCK_PIXELS, "coefficients per block")
        b.li(r_acc, 0, "block energy accumulator")
        b.li(r_nonzero, 0, "non-zero coefficient count")
        quant_loop = b.fresh_label("quant_loop")
        quant_done = b.fresh_label("quant_done")
        b.label(quant_loop)
        b.slt(r_cond, r_pixel, r_tmp, "coefficients left?")
        b.beq(r_cond, 0, quant_done)
        b.sll(r_addr, r_pixel, 3, "coefficient offset")
        b.add(r_addr, r_addr, r_outbase, "coefficient address")
        b.lw(r_coeff, r_addr, 0, "coefficient")
        b.sll(r_row, r_pixel, 3, "quant offset")
        b.addi(r_row, r_row, QUANT_BASE, "quant address")
        b.lw(r_quant, r_row, 0, "quant step")
        b.add(r_quant, r_quant, r_quality, "scale step by quality pass")
        b.div(r_coeff, r_coeff, r_quant, "quantise")
        b.sw(r_coeff, r_addr, 0, "write quantised coefficient")
        b.sne(r_cond, r_coeff, 0, "non-zero?")
        b.add(r_nonzero, r_nonzero, r_cond, "count non-zero coefficients")
        b.mult(r_col, r_coeff, r_coeff, "coefficient energy")
        b.add(r_acc, r_acc, r_col, "accumulate energy")
        b.addi(r_pixel, r_pixel, 1, "next coefficient")
        b.j(quant_loop)
        b.label(quant_done)

        # --- per-block summary (entropy-coder stand-in) -------------------------
        b.sll(r_addr, r_block, 3, "summary offset")
        b.addi(r_addr, r_addr, OUTPUT_BASE, "summary address")
        b.sll(r_tmp, r_nonzero, 16, "pack count")
        b.or_(r_tmp, r_tmp, r_acc, "pack energy")
        b.sw(r_tmp, r_addr, 0, "store block summary")
        b.addi(r_block, r_block, 1, "next block")
        b.j(block_loop)
        b.label(block_done)
        b.addi(r_quality, r_quality, 1, "next quality pass")
        b.j(quality_loop)
        b.label(quality_done)
        b.halt()
        return b.build()
